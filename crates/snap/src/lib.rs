//! Checkpointed **fast-forward fault injection**.
//!
//! Every injection run in a classic campaign re-simulates the fault-free
//! prefix `[0, inject_cycle)` from scratch — on average half the fault-free
//! execution time `T_ff` of pure overhead per run, and a *masked* run then
//! also simulates the whole suffix even though it is cycle-identical to the
//! golden run. This crate removes both costs:
//!
//! 1. **Snapshot store.** One extra golden run records complete, bit-exact
//!    checkpoints ([`mbu_cpu::SimSnapshot`]) every `interval` cycles —
//!    pipeline (register file with rename state, ROB, issue/decode queues,
//!    in-flight completions, fetch state), all SRAM arrays (cache data +
//!    tag + LRU, TLBs), copy-on-write DRAM pages, syscall output and the
//!    cycle/retire counters.
//! 2. **Fast-forward.** An injection run restores the nearest checkpoint at
//!    or before its injection cycle instead of re-simulating the prefix.
//! 3. **Reconvergence.** After the flip, the run pauses at each subsequent
//!    golden checkpoint and compares *reachable* state
//!    ([`mbu_cpu::Simulator::converged_with`]). The simulator is
//!    deterministic, so equality of all reachable state at cycle `c` proves
//!    every later cycle is identical to the golden run: the run is `Masked`
//!    with exactly the golden cycle count, and can stop immediately.
//!    A run heading for SDC/Crash/Timeout/Assert never compares equal, so
//!    those classes are untouched.
//!
//! Memory is accounted per checkpoint with copy-on-write sharing (DRAM pages
//! unchanged between checkpoints are charged once); a configurable hard cap
//! degrades gracefully by *thinning* — dropping every other checkpoint and
//! doubling the interval until the store fits.
//!
//! [`GoldenArtifacts`] bundles the golden run's output/counters with the
//! recorded store so a sweep can pay the golden-run cost once per
//! `(core, program)` pair and share the result — `Arc`-wrapped and read-only
//! — across every campaign targeting that workload.

#![forbid(unsafe_code)]

use std::sync::Arc;

use mbu_cpu::{CoreConfig, RunEnd, SimSnapshot, Simulator};
use mbu_isa::Program;
use mbu_sram::Snapshot;

/// How a [`SnapshotStore`] is recorded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SnapshotSpec {
    /// Checkpoint interval in cycles; `None` auto-tunes from the fault-free
    /// execution time (`max(T_ff / 64, 256)` — ~64 checkpoints per golden
    /// run, never denser than 256 cycles).
    pub interval: Option<u64>,
    /// Hard cap on retained checkpoint bytes; when recording would exceed
    /// it the store thins itself (drops every other checkpoint, doubling
    /// the effective interval) until it fits. `None` leaves the store
    /// bounded only by the checkpoint count.
    pub mem_cap_bytes: Option<u64>,
}

impl SnapshotSpec {
    /// The auto-tuned interval for a given fault-free execution time.
    pub fn auto_interval(fault_free_cycles: u64) -> u64 {
        (fault_free_cycles / 64).max(256)
    }

    /// The effective recording interval for this spec.
    pub fn effective_interval(&self, fault_free_cycles: u64) -> u64 {
        self.interval
            .unwrap_or_else(|| Self::auto_interval(fault_free_cycles))
            .max(1)
    }
}

/// Bookkeeping of a snapshot store, surfaced in campaign results and
/// reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SnapshotStats {
    /// Number of retained checkpoints.
    pub snapshots: u64,
    /// Effective checkpoint interval in cycles (after any thinning).
    pub interval: u64,
    /// Retained heap bytes, with copy-on-write DRAM pages shared between
    /// consecutive checkpoints charged once.
    pub retained_bytes: u64,
    /// How many times the memory cap forced the store to halve its density.
    pub thinned: u32,
    /// Injection runs that fast-forwarded from a checkpoint (campaign-level;
    /// zero in a freshly recorded store).
    pub restores: u64,
    /// Injection runs classified `Masked` early by a reconvergence check
    /// (campaign-level; zero in a freshly recorded store).
    pub early_masked: u64,
}

/// An in-memory store of golden-run checkpoints, ordered by cycle. The
/// first checkpoint is always cycle 0, so
/// [`SnapshotStore::nearest_at_or_before`] is total.
#[derive(Debug, Clone)]
pub struct SnapshotStore {
    snapshots: Vec<SimSnapshot>,
    interval: u64,
    retained_bytes: u64,
    thinned: u32,
    fault_free_cycles: u64,
}

impl SnapshotStore {
    /// Records a store by re-running the golden (fault-free) execution and
    /// checkpointing every `interval` cycles up to (exclusive)
    /// `fault_free_cycles`. The caller supplies `fault_free_cycles` from an
    /// already-executed golden run; the simulator is deterministic, so the
    /// recording run retraces it exactly.
    pub fn record_golden(
        core: CoreConfig,
        program: &Program,
        fault_free_cycles: u64,
        spec: SnapshotSpec,
    ) -> Self {
        let interval = spec.effective_interval(fault_free_cycles);
        let mut sim = Simulator::new(core, program);
        let mut snapshots = vec![sim.snapshot()];
        let mut at = interval;
        while at < fault_free_cycles {
            if sim.run_until_cycle(at).is_some() {
                break;
            }
            snapshots.push(sim.snapshot());
            at += interval;
        }
        let mut store = Self {
            snapshots,
            interval,
            retained_bytes: 0,
            thinned: 0,
            fault_free_cycles,
        };
        store.retained_bytes = store.recompute_retained();
        if let Some(cap) = spec.mem_cap_bytes {
            store.enforce_cap(cap);
        }
        store
    }

    fn recompute_retained(&self) -> u64 {
        let mut prev: Option<&SimSnapshot> = None;
        let mut total = 0u64;
        for s in &self.snapshots {
            total += s.retained_bytes(prev) as u64;
            prev = Some(s);
        }
        total
    }

    /// Thins the store (drop every other checkpoint, keeping cycle 0)
    /// until it fits under `cap` or only the cycle-0 checkpoint remains.
    fn enforce_cap(&mut self, cap: u64) {
        while self.retained_bytes > cap && self.snapshots.len() > 1 {
            let mut keep = true;
            self.snapshots.retain(|_| {
                let k = keep;
                keep = !keep;
                k
            });
            self.interval = self.interval.saturating_mul(2);
            self.thinned += 1;
            self.retained_bytes = self.recompute_retained();
        }
    }

    /// Number of retained checkpoints (always ≥ 1: cycle 0).
    pub fn len(&self) -> usize {
        self.snapshots.len()
    }

    /// Whether the store holds no checkpoints (never true for a recorded
    /// store; present for API completeness with `len`).
    pub fn is_empty(&self) -> bool {
        self.snapshots.is_empty()
    }

    /// The effective checkpoint interval (after any thinning).
    pub fn interval(&self) -> u64 {
        self.interval
    }

    /// The fault-free execution time the store was recorded against.
    pub fn fault_free_cycles(&self) -> u64 {
        self.fault_free_cycles
    }

    /// Retained heap bytes (copy-on-write pages charged once).
    pub fn retained_bytes(&self) -> u64 {
        self.retained_bytes
    }

    /// Store-level statistics (campaign-level counters zeroed).
    pub fn stats(&self) -> SnapshotStats {
        SnapshotStats {
            snapshots: self.snapshots.len() as u64,
            interval: self.interval,
            retained_bytes: self.retained_bytes,
            thinned: self.thinned,
            restores: 0,
            early_masked: 0,
        }
    }

    /// The latest checkpoint at or before `cycle` (total: cycle 0 always
    /// exists).
    pub fn nearest_at_or_before(&self, cycle: u64) -> &SimSnapshot {
        let idx = self
            .snapshots
            .partition_point(|s| s.cycle() <= cycle)
            .saturating_sub(1);
        &self.snapshots[idx]
    }

    /// The exact golden checkpoint at `cycle`, if one was recorded there.
    pub fn golden_at(&self, cycle: u64) -> Option<&SimSnapshot> {
        let idx = self.snapshots.partition_point(|s| s.cycle() < cycle);
        self.snapshots.get(idx).filter(|s| s.cycle() == cycle)
    }

    /// The first checkpoint cycle strictly after `cycle` — the next
    /// reconvergence-check point for a run currently at `cycle`.
    pub fn next_check_after(&self, cycle: u64) -> Option<u64> {
        let idx = self.snapshots.partition_point(|s| s.cycle() <= cycle);
        self.snapshots.get(idx).map(|s| s.cycle())
    }

    /// The latest checkpoint cycle inside `[start, end]`, if any — the
    /// cheapest fault-equivalence class member to simulate: injecting at a
    /// checkpoint cycle makes the restore land exactly on the injection
    /// point, so the run costs only the post-injection suffix.
    pub fn nearest_cycle_in(&self, start: u64, end: u64) -> Option<u64> {
        let idx = self
            .snapshots
            .partition_point(|s| s.cycle() <= end)
            .checked_sub(1)?;
        let cycle = self.snapshots[idx].cycle();
        (cycle >= start).then_some(cycle)
    }
}

/// Everything a campaign derives from the fault-free execution of one
/// `(core, program)` pair: the golden output and counters, plus (optionally)
/// a recorded [`SnapshotStore`] for fast-forward injection.
///
/// Building the artifacts costs one golden run (two when a snapshot store is
/// requested — recording retraces the execution). A sweep that targets the
/// same workload with many components and fault multiplicities can build the
/// artifacts **once**, wrap them in an [`Arc`], and hand the same read-only
/// value to every campaign — collapsing O(components × fault-sizes) golden
/// runs per workload to O(1). The store inside is already `Arc`-shared, so
/// cloning the artifacts never copies a checkpoint.
#[derive(Debug, Clone)]
pub struct GoldenArtifacts {
    core: CoreConfig,
    program: Program,
    output: Vec<u8>,
    exit_code: u32,
    cycles: u64,
    instructions: u64,
    snapshots: Option<Arc<SnapshotStore>>,
    spec: Option<SnapshotSpec>,
}

impl GoldenArtifacts {
    /// Runs the fault-free execution of `program` under `core` and captures
    /// its artifacts. When `spec` is given, also records a snapshot store
    /// (one extra deterministic retrace of the run).
    ///
    /// Returns the run's [`RunEnd`] as the error when the golden run does
    /// not exit cleanly — the caller decides how to report that (this crate
    /// does not know about workloads or campaign errors).
    pub fn build(
        core: CoreConfig,
        program: &Program,
        spec: Option<SnapshotSpec>,
    ) -> Result<Self, RunEnd> {
        let r = Simulator::new(core, program).run(u64::MAX / 8);
        let exit_code = match r.end {
            RunEnd::Exited { code } => code,
            end => return Err(end),
        };
        let snapshots =
            spec.map(|s| Arc::new(SnapshotStore::record_golden(core, program, r.cycles, s)));
        Ok(Self {
            core,
            program: program.clone(),
            output: r.output,
            exit_code,
            cycles: r.cycles,
            instructions: r.instructions,
            snapshots,
            spec,
        })
    }

    /// The core configuration the golden run executed under.
    pub fn core(&self) -> &CoreConfig {
        &self.core
    }

    /// The program the golden run executed.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The fault-free output bytes.
    pub fn output(&self) -> &[u8] {
        &self.output
    }

    /// The fault-free exit code.
    pub fn exit_code(&self) -> u32 {
        self.exit_code
    }

    /// The fault-free execution time in cycles (`T_ff`).
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Instructions committed by the fault-free run.
    pub fn instructions(&self) -> u64 {
        self.instructions
    }

    /// The recorded snapshot store, if one was requested at build time.
    pub fn snapshot_store(&self) -> Option<&Arc<SnapshotStore>> {
        self.snapshots.as_ref()
    }

    /// The spec the snapshot store was recorded with, if any.
    pub fn snapshot_spec(&self) -> Option<SnapshotSpec> {
        self.spec
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbu_cpu::RunEnd;
    use mbu_sram::Restorable;
    use mbu_workloads::Workload;

    fn golden(core: CoreConfig, program: &Program) -> (u64, mbu_cpu::RunResult) {
        let r = Simulator::new(core, program).run(u64::MAX / 8);
        assert_eq!(r.end, RunEnd::Exited { code: 0 });
        (r.cycles, r)
    }

    #[test]
    fn store_brackets_every_injection_cycle() {
        let core = CoreConfig::cortex_a9_like();
        let p = Workload::Stringsearch.program();
        let (t_ff, _) = golden(core, &p);
        let store = SnapshotStore::record_golden(
            core,
            &p,
            t_ff,
            SnapshotSpec {
                interval: Some(1000),
                mem_cap_bytes: None,
            },
        );
        assert!(store.len() >= 2, "t_ff {t_ff} must span several intervals");
        assert_eq!(store.nearest_at_or_before(0).cycle(), 0);
        assert_eq!(store.nearest_at_or_before(999).cycle(), 0);
        assert_eq!(store.nearest_at_or_before(1000).cycle(), 1000);
        assert_eq!(store.nearest_at_or_before(t_ff * 10).cycle() % 1000, 0);
        assert_eq!(store.next_check_after(0), Some(1000));
        assert_eq!(store.next_check_after(1000), Some(2000));
        assert!(store.golden_at(1000).is_some());
        assert!(store.golden_at(999).is_none());
        assert!(store.retained_bytes() > 0);
        // Range lookup: the latest checkpoint inside a class's cycle span.
        assert_eq!(store.nearest_cycle_in(0, 999), Some(0));
        assert_eq!(store.nearest_cycle_in(500, 1500), Some(1000));
        assert_eq!(store.nearest_cycle_in(900, 2500), Some(2000));
        assert_eq!(
            store.nearest_cycle_in(1001, 1999),
            None,
            "no checkpoint strictly inside the span"
        );
    }

    #[test]
    fn restored_checkpoint_replays_to_identical_result() {
        let core = CoreConfig::cortex_a9_like();
        let p = Workload::Qsort.program();
        let (t_ff, full) = golden(core, &p);
        let store = SnapshotStore::record_golden(core, &p, t_ff, SnapshotSpec::default());
        let mid = store.nearest_at_or_before(t_ff / 2);
        assert!(mid.cycle() > 0, "auto interval must checkpoint mid-run");
        let mut sim = Simulator::new(core, &p);
        sim.restore(mid);
        let replay = sim.run(u64::MAX / 8);
        assert_eq!(replay, full, "fast-forwarded replay must be bit-identical");
    }

    #[test]
    fn memory_cap_thins_gracefully() {
        let core = CoreConfig::cortex_a9_like();
        let p = Workload::Stringsearch.program();
        let (t_ff, _) = golden(core, &p);
        let spec = SnapshotSpec {
            interval: Some(512),
            mem_cap_bytes: None,
        };
        let unbounded = SnapshotStore::record_golden(core, &p, t_ff, spec);
        let cap = unbounded.retained_bytes() / 3;
        let capped = SnapshotStore::record_golden(
            core,
            &p,
            t_ff,
            SnapshotSpec {
                mem_cap_bytes: Some(cap),
                ..spec
            },
        );
        assert!(capped.retained_bytes() <= cap || capped.len() == 1);
        assert!(capped.stats().thinned >= 1, "cap must force thinning");
        assert!(capped.interval() > unbounded.interval());
        // Cycle 0 is always retained, and checkpoints stay on the doubled grid.
        assert_eq!(capped.nearest_at_or_before(0).cycle(), 0);
        assert!(capped
            .golden_at(capped.next_check_after(0).unwrap())
            .is_some());
    }

    #[test]
    fn artifacts_match_a_direct_golden_run() {
        let core = CoreConfig::cortex_a9_like();
        let p = Workload::Qsort.program();
        let (t_ff, full) = golden(core, &p);
        let spec = SnapshotSpec::default();
        let a = GoldenArtifacts::build(core, &p, Some(spec)).unwrap();
        assert_eq!(a.cycles(), t_ff);
        assert_eq!(a.output(), &full.output[..]);
        assert_eq!(a.exit_code(), 0);
        assert_eq!(a.instructions(), full.instructions);
        assert_eq!(a.program(), &p);
        assert_eq!(a.snapshot_spec(), Some(spec));
        let store = a.snapshot_store().expect("spec requested a store");
        assert_eq!(store.fault_free_cycles(), t_ff);
        let direct = SnapshotStore::record_golden(core, &p, t_ff, spec);
        assert_eq!(store.len(), direct.len());
        assert_eq!(store.interval(), direct.interval());
        // Cloning the artifacts shares (not copies) the checkpoint store.
        let b = a.clone();
        assert!(Arc::ptr_eq(
            a.snapshot_store().unwrap(),
            b.snapshot_store().unwrap()
        ));
    }

    #[test]
    fn artifacts_without_spec_skip_the_store() {
        let core = CoreConfig::cortex_a9_like();
        let p = Workload::Qsort.program();
        let a = GoldenArtifacts::build(core, &p, None).unwrap();
        assert!(a.snapshot_store().is_none());
        assert!(a.snapshot_spec().is_none());
        assert!(a.cycles() > 0);
    }

    #[test]
    fn auto_interval_scales_with_t_ff() {
        assert_eq!(SnapshotSpec::auto_interval(64_000), 1000);
        assert_eq!(SnapshotSpec::auto_interval(100), 256);
        let spec = SnapshotSpec {
            interval: Some(42),
            mem_cap_bytes: None,
        };
        assert_eq!(spec.effective_interval(1_000_000), 42);
    }
}
