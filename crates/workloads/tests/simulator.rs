//! Differential test: every workload, run on the cycle-level out-of-order
//! simulator, must produce exactly the output of the Rust reference (and of
//! the architectural interpreter, by transitivity).

use mbu_cpu::{CoreConfig, RunEnd, Simulator};
use mbu_workloads::{DataSet, Workload};

#[test]
fn all_workloads_match_reference_on_ooo_simulator() {
    for w in Workload::ALL {
        let p = w.program();
        let r = Simulator::new(CoreConfig::cortex_a9_like(), &p).run(500_000_000);
        assert_eq!(
            r.end,
            RunEnd::Exited { code: 0 },
            "{w} must exit cleanly, got {:?}",
            r.end
        );
        assert_eq!(
            r.output,
            w.reference_output(),
            "{w} output mismatch on OoO core"
        );
        assert!(
            r.cycles > 1_000,
            "{w} suspiciously short ({} cycles)",
            r.cycles
        );
    }
}

#[test]
fn all_workloads_match_reference_with_speculation() {
    // The branch-prediction extension must be architecturally transparent
    // on every real workload (heavy branching, loops, function calls).
    for w in Workload::ALL {
        let p = w.program();
        let r = Simulator::new(CoreConfig::speculative_a9(), &p).run(500_000_000);
        assert_eq!(
            r.end,
            RunEnd::Exited { code: 0 },
            "{w} must exit cleanly, got {:?}",
            r.end
        );
        assert_eq!(
            r.output,
            w.reference_output(),
            "{w} output mismatch under speculation"
        );
    }
}

#[test]
fn speculation_never_slows_down_overall() {
    // Aggregate cycles across the suite must improve with prediction.
    let mut base = 0u64;
    let mut spec = 0u64;
    for w in Workload::ALL {
        let p = w.program();
        base += Simulator::new(CoreConfig::cortex_a9_like(), &p)
            .run(500_000_000)
            .cycles;
        spec += Simulator::new(CoreConfig::speculative_a9(), &p)
            .run(500_000_000)
            .cycles;
    }
    assert!(spec < base, "speculative {spec} vs baseline {base}");
}

#[test]
fn large_dataset_spot_checks_on_ooo_core() {
    for w in [Workload::Sha, Workload::Dijkstra, Workload::SusanS] {
        let p = w.program_with(DataSet::Large);
        let r = Simulator::new(CoreConfig::cortex_a9_like(), &p).run(2_000_000_000);
        assert_eq!(r.end, RunEnd::Exited { code: 0 }, "{w} large must exit");
        assert_eq!(
            r.output,
            w.reference_with(DataSet::Large),
            "{w} large output"
        );
    }
}

#[test]
fn fault_free_runs_are_cycle_deterministic() {
    for w in [Workload::Stringsearch, Workload::SusanC] {
        let p = w.program();
        let a = Simulator::new(CoreConfig::cortex_a9_like(), &p).run(500_000_000);
        let b = Simulator::new(CoreConfig::cortex_a9_like(), &p).run(500_000_000);
        assert_eq!(a.cycles, b.cycles, "{w} must be deterministic");
        assert_eq!(a.output, b.output);
    }
}
