//! Developer utility: run one workload on the architectural interpreter and
//! compare its output with the independent Rust reference.
//!
//! ```text
//! cargo run --release -p mbu-workloads --example check_one -- sha [large]
//! ```

use mbu_isa::interp::{ArchInterpreter, StopReason};
use mbu_workloads::{DataSet, Workload};

fn main() {
    let mut args = std::env::args().skip(1);
    let name = args.next().unwrap_or_else(|| "sha".into());
    let w: Workload = name.parse().expect("unknown workload name");
    let ds = match args.next().as_deref() {
        Some("large") => DataSet::Large,
        _ => DataSet::Small,
    };
    let p = w.program_with(ds);
    match ArchInterpreter::new(&p).run(2_000_000_000) {
        Ok(r) => {
            println!(
                "{w} ({ds}): stop={:?} instructions={} output_bytes={}",
                r.stop,
                r.instructions,
                r.output.len()
            );
            if r.stop != (StopReason::Exited { code: 0 }) {
                eprintln!("DID NOT EXIT CLEANLY");
                std::process::exit(1);
            }
            if r.output == w.reference_with(ds) {
                println!("MATCH");
            } else {
                eprintln!(
                    "MISMATCH\n sim: {:02x?}\n ref: {:02x?}",
                    r.output,
                    w.reference_with(ds)
                );
                std::process::exit(1);
            }
        }
        Err(t) => {
            eprintln!("TRAP: {t}");
            std::process::exit(1);
        }
    }
}
