//! dijkstra (network): single-source shortest paths over a dense 48-node
//! (small) / 96-node (large) weighted graph (adjacency matrix, O(N²) scan),
//! from three sources.

use crate::gen::{checksum_words, words, Xorshift32};
use crate::{DataSet, EXIT0};
use mbu_isa::asm::assemble;
use mbu_isa::Program;

const INF: u32 = 0x0FFF_FFFF;
const SOURCES: [usize; 3] = [0, 7, 23];

fn nodes(ds: DataSet) -> usize {
    match ds {
        DataSet::Small => 48,
        DataSet::Large => 96,
    }
}

/// Adjacency matrix: ~35 % density, weights 1..100, `INF` elsewhere.
fn matrix(ds: DataSet) -> Vec<u32> {
    let n = nodes(ds);
    let mut rng = Xorshift32::new(0xD1_4C57);
    let mut m = vec![INF; n * n];
    for i in 0..n {
        m[i * n + i] = 0;
        for j in 0..n {
            if i != j && rng.below(100) < 35 {
                m[i * n + j] = 1 + rng.below(100);
            }
        }
    }
    m
}

fn dijkstra(m: &[u32], src: usize, n: usize) -> Vec<u32> {
    let mut dist = vec![INF; n];
    let mut visited = vec![false; n];
    dist[src] = 0;
    for _ in 0..n {
        // Pick the unvisited node with the smallest distance.
        let mut best = usize::MAX;
        let mut best_d = INF;
        for v in 0..n {
            if !visited[v] && dist[v] < best_d {
                best_d = dist[v];
                best = v;
            }
        }
        if best == usize::MAX {
            break;
        }
        visited[best] = true;
        for v in 0..n {
            let w = m[best * n + v];
            if w != INF && dist[best] + w < dist[v] {
                dist[v] = dist[best] + w;
            }
        }
    }
    dist
}

/// Reference: per source, checksum of the distance vector.
pub fn reference(ds: DataSet) -> Vec<u8> {
    let m = matrix(ds);
    SOURCES
        .iter()
        .flat_map(|&s| checksum_words(dijkstra(&m, s, nodes(ds))).to_le_bytes())
        .collect()
}

/// The assembled Dijkstra program.
pub fn program(ds: DataSet) -> Program {
    let n = nodes(ds);
    // Registers: r1 = matrix, r4 = outer counter, r5 = v, r6 = best,
    // r7 = best_d, r8..r11 temps, r12 = dist base, r13 = visited base.
    // The source list is iterated by the outermost loop with r3.
    let src_list = SOURCES.map(|s| s as u32);
    let src = format!(
        r#"
.text
main:
    la   r1, mat
    li   r3, 0               # source index
src_loop:
    # ---- init dist=INF, visited=0
    la   r12, dist
    la   r13, visited
    li   r5, {n}
    li   r8, {inf}
init:
    sw   r8, 0(r12)
    sw   zero, 0(r13)
    addi r12, r12, 4
    addi r13, r13, 4
    addi r5, r5, -1
    bnez r5, init
    # dist[src] = 0
    la   r9, srcs
    slli r10, r3, 2
    add  r9, r9, r10
    lw   r9, 0(r9)           # src node
    la   r12, dist
    slli r10, r9, 2
    add  r10, r12, r10
    sw   zero, 0(r10)
    # ---- main loop: N iterations
    li   r4, {n}
outer:
    # pick unvisited min
    li   r6, -1              # best
    li   r7, {inf}           # best_d
    li   r5, 0
pick:
    la   r13, visited
    slli r8, r5, 2
    add  r9, r13, r8
    lw   r9, 0(r9)
    bnez r9, pick_next
    la   r12, dist
    add  r9, r12, r8
    lw   r9, 0(r9)
    bgeu r9, r7, pick_next
    mv   r7, r9
    mv   r6, r5
pick_next:
    addi r5, r5, 1
    li   r8, {n}
    blt  r5, r8, pick
    li   r8, -1
    beq  r6, r8, relax_done  # no reachable unvisited node
    # visited[best] = 1
    la   r13, visited
    slli r8, r6, 2
    add  r9, r13, r8
    li   r10, 1
    sw   r10, 0(r9)
    # relax neighbours: row base = mat + best*N*4
    li   r8, {row_bytes}
    mul  r8, r6, r8
    add  r8, r1, r8          # row ptr
    la   r12, dist
    slli r9, r6, 2
    add  r9, r12, r9
    lw   r7, 0(r9)           # dist[best]
    li   r5, 0
relax:
    slli r9, r5, 2
    add  r10, r8, r9
    lw   r10, 0(r10)         # w
    li   r11, {inf}
    beq  r10, r11, relax_next
    add  r10, r10, r7        # cand = dist[best] + w
    add  r11, r12, r9
    lw   r9, 0(r11)          # dist[v]
    bgeu r10, r9, relax_next
    sw   r10, 0(r11)
relax_next:
    addi r5, r5, 1
    li   r9, {n}
    blt  r5, r9, relax
    addi r4, r4, -1
    bnez r4, outer
relax_done:
    # ---- checksum dist vector
    la   r12, dist
    li   r5, {n}
    li   r7, 0
cksum:
    lw   r8, 0(r12)
    li   r9, 31
    mul  r7, r7, r9
    add  r7, r7, r8
    addi r12, r12, 4
    addi r5, r5, -1
    bnez r5, cksum
    li   r2, 2
    # preserve r3 across syscall: r3 is the argument register, so spill
    mv   r9, r3
    mv   r3, r7
    syscall
    mv   r3, r9
    addi r3, r3, 1
    li   r8, {nsrc}
    blt  r3, r8, src_loop
{EXIT0}
.data
srcs:
{srcs}
mat:
{mat}
dist:
    .space {dist_bytes}
visited:
    .space {dist_bytes}
"#,
        n = n,
        inf = INF,
        row_bytes = n * 4,
        nsrc = SOURCES.len(),
        dist_bytes = n * 4,
        srcs = words(&src_list),
        mat = words(&matrix(ds)),
    );
    assemble(&src).expect("dijkstra workload must assemble")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distances_satisfy_triangle_property() {
        for ds in [DataSet::Small, DataSet::Large] {
            let n = nodes(ds);
            let m = matrix(ds);
            let d = dijkstra(&m, 0, n);
            assert_eq!(d[0], 0);
            // Every edge must be relaxed: d[v] <= d[u] + w(u,v).
            for u in 0..n {
                for v in 0..n {
                    let w = m[u * n + v];
                    if w != INF && d[u] != INF {
                        assert!(d[v] <= d[u] + w, "edge ({u},{v}) not relaxed");
                    }
                }
            }
        }
    }

    #[test]
    fn reference_has_three_checksums() {
        assert_eq!(reference(DataSet::Small).len(), 12);
        assert_eq!(reference(DataSet::Large).len(), 12);
    }
}
