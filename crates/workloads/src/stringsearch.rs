//! stringsearch (office): Boyer–Moore–Horspool search of several patterns
//! in a 1 KB (small) / 4 KB (large) text. The shortest workload, as in the
//! paper's Table III.

use crate::gen::{bytes, Xorshift32};
use crate::{DataSet, EXIT0};
use mbu_isa::asm::assemble;
use mbu_isa::Program;

const PAT_LEN: usize = 6;

fn text_len(ds: DataSet) -> usize {
    match ds {
        DataSet::Small => 1024,
        DataSet::Large => 4096,
    }
}

fn text(ds: DataSet) -> Vec<u8> {
    let mut rng = Xorshift32::new(0x57A7_0003);
    (0..text_len(ds))
        .map(|_| b'a' + (rng.below(26)) as u8)
        .collect()
}

/// Present patterns (copied out of the text) and two absent ones.
fn patterns(ds: DataSet) -> Vec<[u8; PAT_LEN]> {
    let t = text(ds);
    let offsets: &[usize] = match ds {
        DataSet::Small => &[100, 700],
        DataSet::Large => &[100, 700, 2000, 3900],
    };
    let mut pats = Vec::new();
    for &off in offsets {
        let mut p = [0u8; PAT_LEN];
        p.copy_from_slice(&t[off..off + PAT_LEN]);
        pats.push(p);
    }
    pats.push(*b"zqzqzq");
    pats.push(*b"xxyyzz");
    pats
}

fn bmh_search(text: &[u8], pat: &[u8]) -> i32 {
    let m = pat.len();
    if m > text.len() {
        return -1;
    }
    let mut skip = [m as u32; 256];
    for (i, &c) in pat.iter().take(m - 1).enumerate() {
        skip[c as usize] = (m - 1 - i) as u32;
    }
    let mut pos = 0usize;
    while pos + m <= text.len() {
        let mut j = m;
        while j > 0 && text[pos + j - 1] == pat[j - 1] {
            j -= 1;
        }
        if j == 0 {
            return pos as i32;
        }
        pos += skip[text[pos + m - 1] as usize] as usize;
    }
    -1
}

/// Reference: first match index (or −1) per pattern.
pub fn reference(ds: DataSet) -> Vec<u8> {
    let t = text(ds);
    patterns(ds)
        .iter()
        .flat_map(|p| (bmh_search(&t, p) as u32).to_le_bytes())
        .collect()
}

/// The assembled string-search program.
pub fn program(ds: DataSet) -> Program {
    let pats: Vec<u8> = patterns(ds)
        .iter()
        .flat_map(|p| p.iter().copied())
        .collect();
    // Registers: r1 = text, r4 = pattern ptr, r5 = pattern counter,
    // r6 = pos, r7 = j, r8/r9/r10/r11 = temps, r12 = skip table, r13 = result.
    let src = format!(
        r#"
.text
main:
    la   r4, pats
    li   r5, {npat}
pat_loop:
    # ---- build skip table: all = m
    la   r12, skip
    li   r6, 256
    li   r7, {m}
fill_skip:
    sw   r7, 0(r12)
    addi r12, r12, 4
    addi r6, r6, -1
    bnez r6, fill_skip
    # skip[pat[i]] = m-1-i for i in 0..m-1
    li   r6, 0
    li   r10, {m_minus_1}
build_skip:
    add  r8, r4, r6
    lbu  r8, 0(r8)           # pat[i]
    slli r8, r8, 2
    la   r12, skip
    add  r8, r12, r8
    sub  r9, r10, r6         # m-1-i
    sw   r9, 0(r8)
    addi r6, r6, 1
    blt  r6, r10, build_skip
    # ---- search
    la   r1, text
    li   r6, 0               # pos
    li   r13, -1             # result
search_loop:
    li   r8, {limit}
    bgt  r6, r8, search_done # pos > TEXT_LEN - m
    li   r7, {m}
cmp_loop:
    beqz r7, found
    add  r8, r1, r6
    add  r8, r8, r7
    lbu  r9, -1(r8)          # text[pos+j-1]
    add  r8, r4, r7
    lbu  r10, -1(r8)         # pat[j-1]
    bne  r9, r10, advance
    addi r7, r7, -1
    b    cmp_loop
found:
    mv   r13, r6
    b    search_done
advance:
    add  r8, r1, r6
    lbu  r9, {m_minus_1}(r8) # text[pos+m-1]
    slli r9, r9, 2
    la   r12, skip
    add  r9, r12, r9
    lw   r9, 0(r9)
    add  r6, r6, r9
    b    search_loop
search_done:
    li   r2, 2
    mv   r3, r13
    syscall
    addi r4, r4, {m}
    addi r5, r5, -1
    bnez r5, pat_loop
{EXIT0}
.data
text:
{text}
pats:
{pats}
skip:
    .space 1024
"#,
        npat = patterns(ds).len(),
        m = PAT_LEN,
        m_minus_1 = PAT_LEN - 1,
        limit = text_len(ds) - PAT_LEN,
        text = bytes(&text(ds)),
        pats = bytes(&pats),
    );
    assemble(&src).expect("stringsearch workload must assemble")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn present_patterns_found_absent_not() {
        for ds in [DataSet::Small, DataSet::Large] {
            let out = reference(ds);
            let vals: Vec<i32> = out
                .chunks(4)
                .map(|c| i32::from_le_bytes([c[0], c[1], c[2], c[3]]))
                .collect();
            let npat = patterns(ds).len();
            assert!(
                vals[0] >= 0 && vals[0] <= 100,
                "pattern 0 copied from offset 100"
            );
            assert!(
                vals[..npat - 2].iter().all(|&v| v >= 0),
                "{ds}: present patterns"
            );
            assert_eq!(vals[npat - 2], -1);
            assert_eq!(vals[npat - 1], -1);
        }
    }

    #[test]
    fn bmh_agrees_with_naive_search() {
        for ds in [DataSet::Small, DataSet::Large] {
            let t = text(ds);
            for p in patterns(ds) {
                let naive = t
                    .windows(PAT_LEN)
                    .position(|w| w == p)
                    .map(|i| i as i32)
                    .unwrap_or(-1);
                assert_eq!(bmh_search(&t, &p), naive);
            }
        }
    }
}
