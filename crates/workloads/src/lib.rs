//! The 15 MiBench-like workloads of the reproduction (paper Table III).
//!
//! The paper runs 15 MiBench programs as ARM binaries under Linux on gem5.
//! This crate re-implements the same 15 algorithms as programs for the
//! `mbu-isa` architecture, with deterministic synthetic inputs scaled so a
//! fault-free run takes 10⁴–10⁶ cycles (the paper's runs are 10⁶–10⁸; the
//! scaling preserves workload *diversity* — memory footprint, compute mix,
//! output volume — which is what drives per-workload AVF differences).
//!
//! Every workload comes in two forms:
//!
//! * an **assembly program** ([`Workload::program`]) executed by the
//!   simulators, and
//! * a **Rust reference implementation** ([`Workload::reference_output`])
//!   that computes the expected output independently.
//!
//! The test suite checks `interpreter(program) == reference` and
//! `out-of-order simulator(program) == reference` for all 15 workloads,
//! which validates the assembler, both simulators and the workloads against
//! each other.
//!
//! # Example
//!
//! ```
//! use mbu_workloads::Workload;
//! use mbu_isa::interp::ArchInterpreter;
//!
//! let w = Workload::Sha;
//! let run = ArchInterpreter::new(&w.program()).run(50_000_000)?;
//! assert_eq!(run.output, w.reference_output());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]

mod adpcm;
mod basicmath;
mod crc32;
mod dijkstra;
mod fft;
pub mod gen;
mod gsm;
mod jpeg;
mod qsort;
mod rijndael;
mod sha;
mod stringsearch;
mod susan;

use mbu_isa::Program;
use std::fmt;
use std::str::FromStr;

/// MiBench-style dataset size. Every workload ships two deterministic
/// input sets, like the original suite's `small`/`large` data files.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub enum DataSet {
    /// The default inputs (10⁴–10⁵-cycle runs; used by the experiments).
    #[default]
    Small,
    /// ~4× larger inputs (longer runs, larger memory footprints).
    Large,
}

impl fmt::Display for DataSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataSet::Small => f.write_str("small"),
            DataSet::Large => f.write_str("large"),
        }
    }
}

/// One of the paper's 15 MiBench workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Workload {
    /// Cyclic redundancy check over a byte stream (telecomm).
    Crc32,
    /// Fixed-point radix-2 FFT (telecomm).
    Fft,
    /// IMA ADPCM audio decoder (telecomm).
    AdpcmDec,
    /// Integer square roots, GCDs and angle conversions (automotive).
    Basicmath,
    /// JPEG-style forward DCT + quantization + RLE encode (consumer).
    Cjpeg,
    /// Single-source shortest paths on a dense graph (network).
    Dijkstra,
    /// JPEG-style dequantization + inverse DCT decode (consumer).
    Djpeg,
    /// GSM-style lattice synthesis filter decoder (telecomm).
    GsmDec,
    /// Quicksort over a word array (automotive).
    Qsort,
    /// AES-128 (Rijndael) ECB decryption (security).
    RijndaelDec,
    /// SHA-1 message digest (security).
    Sha,
    /// Boyer–Moore–Horspool string search (office).
    Stringsearch,
    /// SUSAN corner detection (automotive/image).
    SusanC,
    /// SUSAN edge detection (automotive/image).
    SusanE,
    /// SUSAN structure-preserving smoothing (automotive/image).
    SusanS,
}

impl Workload {
    /// All 15 workloads in the paper's Table III order.
    pub const ALL: [Workload; 15] = [
        Workload::Crc32,
        Workload::Fft,
        Workload::AdpcmDec,
        Workload::Basicmath,
        Workload::Cjpeg,
        Workload::Dijkstra,
        Workload::Djpeg,
        Workload::GsmDec,
        Workload::Qsort,
        Workload::RijndaelDec,
        Workload::Sha,
        Workload::Stringsearch,
        Workload::SusanC,
        Workload::SusanE,
        Workload::SusanS,
    ];

    /// The paper's display name.
    pub fn name(self) -> &'static str {
        match self {
            Workload::Crc32 => "CRC32",
            Workload::Fft => "FFT",
            Workload::AdpcmDec => "adpcm_dec",
            Workload::Basicmath => "basicmath",
            Workload::Cjpeg => "cjpeg",
            Workload::Dijkstra => "dijkstra",
            Workload::Djpeg => "djpeg",
            Workload::GsmDec => "gsm_dec",
            Workload::Qsort => "qsort",
            Workload::RijndaelDec => "rijndael_dec",
            Workload::Sha => "sha",
            Workload::Stringsearch => "stringsearch",
            Workload::SusanC => "susan_c",
            Workload::SusanE => "susan_e",
            Workload::SusanS => "susan_s",
        }
    }

    /// Builds the assembled program with the small (default) dataset.
    ///
    /// # Panics
    ///
    /// Panics only on internal assembly errors (a workload that fails to
    /// assemble is a bug, covered by tests).
    pub fn program(self) -> Program {
        self.program_with(DataSet::Small)
    }

    /// Builds the assembled program with the chosen dataset.
    ///
    /// # Panics
    ///
    /// Panics only on internal assembly errors.
    pub fn program_with(self, ds: DataSet) -> Program {
        match self {
            Workload::Crc32 => crc32::program(ds),
            Workload::Fft => fft::program(ds),
            Workload::AdpcmDec => adpcm::program(ds),
            Workload::Basicmath => basicmath::program(ds),
            Workload::Cjpeg => jpeg::cjpeg_program(ds),
            Workload::Dijkstra => dijkstra::program(ds),
            Workload::Djpeg => jpeg::djpeg_program(ds),
            Workload::GsmDec => gsm::program(ds),
            Workload::Qsort => qsort::program(ds),
            Workload::RijndaelDec => rijndael::program(ds),
            Workload::Sha => sha::program(ds),
            Workload::Stringsearch => stringsearch::program(ds),
            Workload::SusanC => susan::corners_program(ds),
            Workload::SusanE => susan::edges_program(ds),
            Workload::SusanS => susan::smoothing_program(ds),
        }
    }

    /// The expected output for the small (default) dataset.
    pub fn reference_output(self) -> Vec<u8> {
        self.reference_with(DataSet::Small)
    }

    /// The expected program output for the chosen dataset, computed by an
    /// independent Rust implementation of the same algorithm on the same
    /// input.
    pub fn reference_with(self, ds: DataSet) -> Vec<u8> {
        match self {
            Workload::Crc32 => crc32::reference(ds),
            Workload::Fft => fft::reference(ds),
            Workload::AdpcmDec => adpcm::reference(ds),
            Workload::Basicmath => basicmath::reference(ds),
            Workload::Cjpeg => jpeg::cjpeg_reference(ds),
            Workload::Dijkstra => dijkstra::reference(ds),
            Workload::Djpeg => jpeg::djpeg_reference(ds),
            Workload::GsmDec => gsm::reference(ds),
            Workload::Qsort => qsort::reference(ds),
            Workload::RijndaelDec => rijndael::reference(ds),
            Workload::Sha => sha::reference(ds),
            Workload::Stringsearch => stringsearch::reference(ds),
            Workload::SusanC => susan::corners_reference(ds),
            Workload::SusanE => susan::edges_reference(ds),
            Workload::SusanS => susan::smoothing_reference(ds),
        }
    }
}

impl fmt::Display for Workload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error returned when parsing an unknown workload name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseWorkloadError(String);

impl fmt::Display for ParseWorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown workload `{}`", self.0)
    }
}

impl std::error::Error for ParseWorkloadError {}

impl FromStr for Workload {
    type Err = ParseWorkloadError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let needle = s.to_ascii_lowercase();
        Workload::ALL
            .into_iter()
            .find(|w| w.name().to_ascii_lowercase() == needle)
            .ok_or_else(|| ParseWorkloadError(s.to_string()))
    }
}

/// The standard exit epilogue shared by workload sources.
pub(crate) const EXIT0: &str = "\n    li r2, 0\n    li r3, 0\n    syscall\n";

#[cfg(test)]
mod tests {
    use super::*;
    use mbu_isa::interp::{ArchInterpreter, StopReason};

    #[test]
    fn all_names_parse_back() {
        for w in Workload::ALL {
            assert_eq!(w.name().parse::<Workload>().unwrap(), w);
        }
        assert!("nope".parse::<Workload>().is_err());
    }

    #[test]
    fn every_workload_matches_its_reference_on_the_interpreter() {
        for ds in [DataSet::Small, DataSet::Large] {
            for w in Workload::ALL {
                let p = w.program_with(ds);
                let run = ArchInterpreter::new(&p)
                    .run(400_000_000)
                    .unwrap_or_else(|t| panic!("{w}/{ds} trapped: {t}"));
                assert_eq!(
                    run.stop,
                    StopReason::Exited { code: 0 },
                    "{w}/{ds} must exit cleanly"
                );
                assert_eq!(run.output, w.reference_with(ds), "{w}/{ds} output mismatch");
                assert!(!run.output.is_empty(), "{w}/{ds} must produce output");
            }
        }
    }

    #[test]
    fn large_dataset_means_more_work() {
        for w in Workload::ALL {
            let small = ArchInterpreter::new(&w.program_with(DataSet::Small))
                .run(400_000_000)
                .unwrap();
            let large = ArchInterpreter::new(&w.program_with(DataSet::Large))
                .run(400_000_000)
                .unwrap();
            assert!(
                large.instructions > small.instructions * 2,
                "{w}: large {} vs small {}",
                large.instructions,
                small.instructions
            );
        }
    }
}
