//! gsm_dec (telecomm): GSM-style short-term synthesis — an 8th-order
//! reflection-coefficient lattice filter reconstructing PCM from residual
//! frames, the computational core of the GSM 06.10 decoder.

use crate::gen::{checksum_words, words, Xorshift32};
use crate::{DataSet, EXIT0};
use mbu_isa::asm::assemble;
use mbu_isa::Program;

const ORDER: usize = 8;
const FRAME: usize = 160;

fn nframes(ds: DataSet) -> usize {
    match ds {
        DataSet::Small => 6,
        DataSet::Large => 24,
    }
}

/// Reflection coefficients per frame, Q15, |r| ≤ 0.5 for stability.
fn coefficients(ds: DataSet) -> Vec<i32> {
    let mut rng = Xorshift32::new(0x650_0023);
    (0..nframes(ds) * ORDER)
        .map(|_| rng.below(32768) as i32 - 16384)
        .collect()
}

/// Residual excitation samples, small Q15 values.
fn residual(ds: DataSet) -> Vec<i32> {
    let mut rng = Xorshift32::new(0x650_0029);
    (0..nframes(ds) * FRAME)
        .map(|_| rng.below(4096) as i32 - 2048)
        .collect()
}

/// The lattice synthesis step, arithmetic identical to the assembly
/// (wrapping 32-bit, Q15 products).
fn synthesize(ds: DataSet) -> Vec<i32> {
    let coef = coefficients(ds);
    let res = residual(ds);
    let mut v = [0i32; ORDER + 1];
    let mut out = Vec::with_capacity(res.len());
    for f in 0..nframes(ds) {
        let rp = &coef[f * ORDER..(f + 1) * ORDER];
        for s in 0..FRAME {
            let mut sri = res[f * FRAME + s];
            for i in (0..ORDER).rev() {
                sri = sri.wrapping_sub(rp[i].wrapping_mul(v[i]) >> 15);
                v[i + 1] = v[i].wrapping_add(rp[i].wrapping_mul(sri) >> 15);
            }
            v[0] = sri;
            out.push(sri);
        }
    }
    out
}

/// Reference: checksum of the synthesized PCM plus every 160th sample.
pub fn reference(ds: DataSet) -> Vec<u8> {
    let pcm = synthesize(ds);
    let mut out = Vec::new();
    out.extend_from_slice(&checksum_words(pcm.iter().map(|v| *v as u32)).to_le_bytes());
    for i in (0..pcm.len()).step_by(FRAME) {
        out.extend_from_slice(&(pcm[i] as u32).to_le_bytes());
    }
    out
}

/// The assembled decoder program.
pub fn program(ds: DataSet) -> Program {
    let nf = nframes(ds);
    let coef: Vec<u32> = coefficients(ds).iter().map(|v| *v as u32).collect();
    let res: Vec<u32> = residual(ds).iter().map(|v| *v as u32).collect();
    // Registers: r1 = residual ptr, r3 = frame counter, r4 = sample counter,
    // r5 = sri, r6 = i, r7 = rp base (this frame), r8..r11 temps,
    // r12 = v base, r13 = output ptr.
    let src = format!(
        r#"
.text
main:
    la   r1, res
    la   r7, coef
    la   r13, pcm
    li   r3, {nframes}
frame_loop:
    li   r4, {frame}
sample_loop:
    lw   r5, 0(r1)           # sri = residual
    addi r1, r1, 4
    li   r6, {order_minus_1} # i = ORDER-1
lattice:
    slli r8, r6, 2
    add  r9, r7, r8
    lw   r9, 0(r9)           # rp[i]
    la   r12, vbuf
    add  r10, r12, r8
    lw   r11, 0(r10)         # v[i]
    mul  r11, r9, r11
    srai r11, r11, 15
    sub  r5, r5, r11         # sri -= rp[i]*v[i] >> 15
    mul  r11, r9, r5
    srai r11, r11, 15
    lw   r9, 0(r10)          # v[i] again
    add  r11, r9, r11
    sw   r11, 4(r10)         # v[i+1] = v[i] + rp[i]*sri >> 15
    addi r6, r6, -1
    bgez r6, lattice
    la   r12, vbuf
    sw   r5, 0(r12)          # v[0] = sri
    sw   r5, 0(r13)
    addi r13, r13, 4
    addi r4, r4, -1
    bnez r4, sample_loop
    addi r7, r7, {order_bytes}
    addi r3, r3, -1
    bnez r3, frame_loop
    # ---- checksum + per-frame samples
    la   r13, pcm
    li   r3, {total}
    li   r4, 0
cksum:
    lw   r8, 0(r13)
    li   r9, 31
    mul  r4, r4, r9
    add  r4, r4, r8
    addi r13, r13, 4
    addi r3, r3, -1
    bnez r3, cksum
    li   r2, 2
    mv   r3, r4
    syscall
    la   r13, pcm
    li   r4, 0
samples:
    slli r8, r4, 2
    add  r8, r13, r8
    lw   r3, 0(r8)
    syscall
    addi r4, r4, {frame}
    li   r8, {total}
    blt  r4, r8, samples
{EXIT0}
.data
coef:
{coef}
res:
{res}
vbuf:
    .space {vbytes}
pcm:
    .space {pcm_bytes}
"#,
        nframes = nf,
        frame = FRAME,
        order_minus_1 = ORDER - 1,
        order_bytes = ORDER * 4,
        total = nf * FRAME,
        vbytes = (ORDER + 1) * 4,
        pcm_bytes = nf * FRAME * 4,
        coef = words(&coef),
        res = words(&res),
    );
    assemble(&src).expect("gsm workload must assemble")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_residual_yields_zero_output() {
        // With v initialized to zero and zero excitation the lattice is
        // quiescent: check via a local run of the same arithmetic.
        let coef = coefficients(DataSet::Small);
        let mut v = [0i32; ORDER + 1];
        let rp = &coef[..ORDER];
        let mut sri = 0i32;
        for i in (0..ORDER).rev() {
            sri = sri.wrapping_sub(rp[i].wrapping_mul(v[i]) >> 15);
            v[i + 1] = v[i].wrapping_add(rp[i].wrapping_mul(sri) >> 15);
        }
        assert_eq!(sri, 0);
        assert!(v.iter().all(|&x| x == 0));
    }

    #[test]
    fn output_is_bounded_with_stable_coefficients() {
        let pcm = synthesize(DataSet::Small);
        assert_eq!(pcm.len(), nframes(DataSet::Small) * FRAME);
        assert!(
            pcm.iter().all(|v| v.abs() < 1 << 20),
            "stable lattice stays bounded"
        );
    }
}
