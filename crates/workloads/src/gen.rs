//! Deterministic input generation and data-directive helpers shared by the
//! workload builders.

/// A tiny xorshift32 PRNG used to generate workload inputs. Deterministic by
/// construction: the same seed always produces the same input, so the
/// assembled program and the Rust reference see identical data.
#[derive(Debug, Clone)]
pub struct Xorshift32 {
    state: u32,
}

impl Xorshift32 {
    /// Creates a generator; a zero seed is remapped to a fixed constant.
    pub fn new(seed: u32) -> Self {
        Self {
            state: if seed == 0 { 0x9E37_79B9 } else { seed },
        }
    }

    /// Next 32-bit value.
    pub fn next_u32(&mut self) -> u32 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 17;
        x ^= x << 5;
        self.state = x;
        x
    }

    /// Next byte.
    pub fn next_u8(&mut self) -> u8 {
        (self.next_u32() >> 24) as u8
    }

    /// Uniform value in `0..bound` (bound > 0).
    pub fn below(&mut self, bound: u32) -> u32 {
        self.next_u32() % bound
    }
}

/// Renders a `.word` directive block (8 values per line) for embedding
/// generated data into assembly source.
pub fn words(values: &[u32]) -> String {
    directive(".word", values.iter().map(|v| format!("0x{v:08x}")))
}

/// Renders a `.half` directive block.
pub fn halves(values: &[u16]) -> String {
    directive(".half", values.iter().map(|v| format!("0x{v:04x}")))
}

/// Renders a `.byte` directive block.
pub fn bytes(values: &[u8]) -> String {
    directive(".byte", values.iter().map(|v| format!("0x{v:02x}")))
}

fn directive<I: Iterator<Item = String>>(name: &str, mut items: I) -> String {
    let mut out = String::new();
    loop {
        let chunk: Vec<String> = items.by_ref().take(8).collect();
        if chunk.is_empty() {
            break;
        }
        out.push_str("    ");
        out.push_str(name);
        out.push(' ');
        out.push_str(&chunk.join(", "));
        out.push('\n');
    }
    out
}

/// Output checksum helper matching the asm convention: a running
/// `sum = sum * 31 + v` over `u32` values, emitted with `PUTW`.
pub fn checksum_words<I: IntoIterator<Item = u32>>(values: I) -> u32 {
    values
        .into_iter()
        .fold(0u32, |acc, v| acc.wrapping_mul(31).wrapping_add(v))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xorshift_is_deterministic_and_nonzero() {
        let mut a = Xorshift32::new(42);
        let mut b = Xorshift32::new(42);
        for _ in 0..100 {
            let v = a.next_u32();
            assert_eq!(v, b.next_u32());
            assert_ne!(v, 0);
        }
    }

    #[test]
    fn zero_seed_remapped() {
        assert_ne!(Xorshift32::new(0).next_u32(), 0);
    }

    #[test]
    fn below_respects_bound() {
        let mut r = Xorshift32::new(7);
        for _ in 0..1000 {
            assert!(r.below(13) < 13);
        }
    }

    #[test]
    fn word_directive_renders() {
        let s = words(&[1, 2, 3]);
        assert_eq!(s, "    .word 0x00000001, 0x00000002, 0x00000003\n");
        let s = bytes(&[0xAB; 9]);
        assert_eq!(s.lines().count(), 2);
    }

    #[test]
    fn checksum_accumulates() {
        assert_eq!(checksum_words([1, 2]), 31 + 2);
    }
}
