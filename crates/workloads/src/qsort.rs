//! qsort (automotive): iterative quicksort of a 768-word (small) /
//! 3072-word (large) array with an explicit range stack (Lomuto partition).
//!
//! Faults that corrupt partition indices or the range stack can make the
//! sort loop re-push ranges indefinitely — the paper observes qsort's
//! characteristic timeout rates (5.5–12 %) for exactly this reason.

use crate::gen::{checksum_words, words, Xorshift32};
use crate::{DataSet, EXIT0};
use mbu_isa::asm::assemble;
use mbu_isa::Program;

fn n(ds: DataSet) -> usize {
    match ds {
        DataSet::Small => 768,
        DataSet::Large => 3072,
    }
}

fn input(ds: DataSet) -> Vec<u32> {
    let mut rng = Xorshift32::new(0x9507_0011);
    (0..n(ds)).map(|_| rng.next_u32() & 0x00FF_FFFF).collect()
}

/// Reference: sort and emit checksum + every 64th element.
pub fn reference(ds: DataSet) -> Vec<u8> {
    let mut v = input(ds);
    v.sort_unstable();
    let mut out = Vec::new();
    out.extend_from_slice(&checksum_words(v.iter().copied()).to_le_bytes());
    for i in (0..n(ds)).step_by(64) {
        out.extend_from_slice(&v[i].to_le_bytes());
    }
    out
}

/// The assembled quicksort program.
pub fn program(ds: DataSet) -> Program {
    let n = n(ds);
    // Registers: r1 = arr base, r4 = lo, r5 = hi, r6 = i, r7 = j,
    // r8 = pivot, r9/r10/r11 = temps, r12 = stack ptr (range stack),
    // r13 = stack base.
    let src = format!(
        r#"
.text
main:
    la   r1, arr
    la   r13, qstack
    mv   r12, r13
    li   r4, 0
    li   r5, {last}
    sw   r4, 0(r12)          # push (0, N-1)
    sw   r5, 4(r12)
    addi r12, r12, 8
pop_loop:
    beq  r12, r13, done      # stack empty?
    addi r12, r12, -8
    lw   r4, 0(r12)          # lo
    lw   r5, 4(r12)          # hi
    bge  r4, r5, pop_loop
    # ---- Lomuto partition: pivot = arr[hi]
    slli r9, r5, 2
    add  r9, r1, r9
    lw   r8, 0(r9)           # pivot
    addi r6, r4, -1          # i = lo-1
    mv   r7, r4              # j = lo
part_loop:
    bge  r7, r5, part_done
    slli r9, r7, 2
    add  r9, r1, r9
    lw   r10, 0(r9)          # arr[j]
    bgtu r10, r8, no_swap    # unsigned compare vs pivot
    addi r6, r6, 1
    slli r11, r6, 2
    add  r11, r1, r11
    lw   r2, 0(r11)          # arr[i]
    sw   r10, 0(r11)
    sw   r2, 0(r9)
no_swap:
    addi r7, r7, 1
    b    part_loop
part_done:
    addi r6, r6, 1           # p = i+1
    slli r9, r6, 2
    add  r9, r1, r9
    lw   r10, 0(r9)          # arr[p]
    slli r11, r5, 2
    add  r11, r1, r11
    lw   r2, 0(r11)          # arr[hi]
    sw   r10, 0(r11)
    sw   r2, 0(r9)
    # ---- push (lo, p-1) and (p+1, hi)
    addi r9, r6, -1
    sw   r4, 0(r12)
    sw   r9, 4(r12)
    addi r12, r12, 8
    addi r9, r6, 1
    sw   r9, 0(r12)
    sw   r5, 4(r12)
    addi r12, r12, 8
    b    pop_loop
done:
    # ---- checksum = fold(sum*31 + v) and samples
    li   r4, {n}
    li   r5, 0               # checksum
    mv   r9, r1
cksum:
    lw   r10, 0(r9)
    li   r11, 31
    mul  r5, r5, r11
    add  r5, r5, r10
    addi r9, r9, 4
    addi r4, r4, -1
    bnez r4, cksum
    li   r2, 2
    mv   r3, r5
    syscall
    li   r4, 0
samples:
    slli r9, r4, 2
    add  r9, r1, r9
    lw   r3, 0(r9)
    syscall
    addi r4, r4, 64
    li   r9, {n}
    blt  r4, r9, samples
{EXIT0}
.data
arr:
{data}
qstack:
    .space {stack_bytes}
"#,
        last = n - 1,
        n = n,
        stack_bytes = (n + 8) * 8,
        data = words(&input(ds)),
    );
    assemble(&src).expect("qsort workload must assemble")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_output_is_sorted_samples() {
        let out = reference(DataSet::Small);
        // 4-byte checksum + N/64 samples.
        assert_eq!(out.len(), 4 + (n(DataSet::Small) / 64) * 4);
        let s0 = u32::from_le_bytes([out[4], out[5], out[6], out[7]]);
        let s1 = u32::from_le_bytes([out[8], out[9], out[10], out[11]]);
        assert!(s0 <= s1, "samples from a sorted array must be ordered");
    }
}
