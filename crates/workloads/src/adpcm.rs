//! adpcm_dec (telecomm): IMA ADPCM decoder over 4096 (small) / 16384
//! (large) nibbles of compressed audio, with the standard step-size and
//! index tables.

use crate::gen::{bytes, checksum_words, words, Xorshift32};
use crate::{DataSet, EXIT0};
use mbu_isa::asm::assemble;
use mbu_isa::Program;

fn nibble_bytes(ds: DataSet) -> usize {
    match ds {
        DataSet::Small => 2048, // 4096 samples
        DataSet::Large => 8192, // 16384 samples
    }
}

/// The standard IMA step-size table (89 entries).
const STEP_TABLE: [u32; 89] = [
    7, 8, 9, 10, 11, 12, 13, 14, 16, 17, 19, 21, 23, 25, 28, 31, 34, 37, 41, 45, 50, 55, 60, 66,
    73, 80, 88, 97, 107, 118, 130, 143, 157, 173, 190, 209, 230, 253, 279, 307, 337, 371, 408, 449,
    494, 544, 598, 658, 724, 796, 876, 963, 1060, 1166, 1282, 1411, 1552, 1707, 1878, 2066, 2272,
    2499, 2749, 3024, 3327, 3660, 4026, 4428, 4871, 5358, 5894, 6484, 7132, 7845, 8630, 9493,
    10442, 11487, 12635, 13899, 15289, 16818, 18500, 20350, 22385, 24623, 27086, 29794, 32767,
];

/// The standard IMA index-adjust table.
const INDEX_TABLE: [i32; 16] = [-1, -1, -1, -1, 2, 4, 6, 8, -1, -1, -1, -1, 2, 4, 6, 8];

fn input(ds: DataSet) -> Vec<u8> {
    let mut rng = Xorshift32::new(0xADCD_0013);
    (0..nibble_bytes(ds)).map(|_| rng.next_u8()).collect()
}

fn decode(data: &[u8]) -> Vec<i32> {
    let mut predictor: i32 = 0;
    let mut index: i32 = 0;
    let mut out = Vec::with_capacity(data.len() * 2);
    for byte in data {
        for nib in [byte & 0xF, byte >> 4] {
            let step = STEP_TABLE[index as usize] as i32;
            let mut diff = step >> 3;
            if nib & 1 != 0 {
                diff += step >> 2;
            }
            if nib & 2 != 0 {
                diff += step >> 1;
            }
            if nib & 4 != 0 {
                diff += step;
            }
            if nib & 8 != 0 {
                predictor -= diff;
            } else {
                predictor += diff;
            }
            predictor = predictor.clamp(-32768, 32767);
            index = (index + INDEX_TABLE[nib as usize]).clamp(0, 88);
            out.push(predictor);
        }
    }
    out
}

/// Reference: checksum of all PCM samples plus every 512th sample.
pub fn reference(ds: DataSet) -> Vec<u8> {
    let pcm = decode(&input(ds));
    let mut out = Vec::new();
    out.extend_from_slice(&checksum_words(pcm.iter().map(|v| *v as u32)).to_le_bytes());
    for i in (0..pcm.len()).step_by(512) {
        out.extend_from_slice(&(pcm[i] as u32).to_le_bytes());
    }
    out
}

/// The assembled decoder program.
pub fn program(ds: DataSet) -> Program {
    let nb = nibble_bytes(ds);
    let idx_tab: Vec<u32> = INDEX_TABLE.iter().map(|v| *v as u32).collect();
    // Registers: r1 = input ptr, r3 = bytes left, r4 = predictor, r5 = index,
    // r6 = nibble, r7 = step, r8 = diff, r9..r11 = temps, r12 = pcm out ptr,
    // r13 = nibble selector (0 = low, 1 = high).
    let src = format!(
        r#"
.text
main:
    la   r1, data
    li   r3, {nbytes}
    li   r4, 0               # predictor
    li   r5, 0               # index
    la   r12, pcm
byte_loop:
    lbu  r9, 0(r1)
    li   r13, 0
nib_loop:
    beqz r13, low_nib
    srli r6, r9, 4
    b    have_nib
low_nib:
    andi r6, r9, 0xF
have_nib:
    # step = stepTab[index]
    la   r10, steptab
    slli r7, r5, 2
    add  r7, r10, r7
    lw   r7, 0(r7)
    # diff = step>>3 (+ step>>2 if b0) (+ step>>1 if b1) (+ step if b2)
    srli r8, r7, 3
    andi r10, r6, 1
    beqz r10, no_b0
    srli r10, r7, 2
    add  r8, r8, r10
no_b0:
    andi r10, r6, 2
    beqz r10, no_b1
    srli r10, r7, 1
    add  r8, r8, r10
no_b1:
    andi r10, r6, 4
    beqz r10, no_b2
    add  r8, r8, r7
no_b2:
    andi r10, r6, 8
    beqz r10, add_diff
    sub  r4, r4, r8
    b    clamp_pred
add_diff:
    add  r4, r4, r8
clamp_pred:
    li   r10, 32767
    ble  r4, r10, not_hi
    mv   r4, r10
not_hi:
    li   r10, -32768
    bge  r4, r10, not_lo
    mv   r4, r10
not_lo:
    # index += idxTab[nib], clamp 0..88
    la   r10, idxtab
    slli r11, r6, 2
    add  r10, r10, r11
    lw   r10, 0(r10)
    add  r5, r5, r10
    bgez r5, idx_not_neg
    li   r5, 0
idx_not_neg:
    li   r10, 88
    ble  r5, r10, idx_ok
    mv   r5, r10
idx_ok:
    sw   r4, 0(r12)
    addi r12, r12, 4
    addi r13, r13, 1
    li   r10, 2
    blt  r13, r10, nib_loop
    addi r1, r1, 1
    addi r3, r3, -1
    bnez r3, byte_loop
    # ---- checksum all samples + every 512th
    la   r12, pcm
    li   r3, {nsamples}
    li   r4, 0
cksum:
    lw   r9, 0(r12)
    li   r10, 31
    mul  r4, r4, r10
    add  r4, r4, r9
    addi r12, r12, 4
    addi r3, r3, -1
    bnez r3, cksum
    li   r2, 2
    mv   r3, r4
    syscall
    la   r12, pcm
    li   r4, 0
samples:
    slli r9, r4, 2
    add  r9, r12, r9
    lw   r3, 0(r9)
    syscall
    addi r4, r4, 512
    li   r9, {nsamples}
    blt  r4, r9, samples
{EXIT0}
.data
steptab:
{steps}
idxtab:
{idx}
data:
{data}
pcm:
    .space {pcm_bytes}
"#,
        nbytes = nb,
        nsamples = nb * 2,
        pcm_bytes = nb * 2 * 4,
        steps = words(&STEP_TABLE),
        idx = words(&idx_tab),
        data = bytes(&input(ds)),
    );
    assemble(&src).expect("adpcm workload must assemble")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decoder_tracks_a_known_sequence() {
        // Magnitude-7 nibbles add step>>3 + step>>2 + step>>1 + step.
        let pcm = decode(&[0x77, 0x77]);
        assert_eq!(pcm.len(), 4);
        assert!(
            pcm.iter().all(|&v| v > 0),
            "positive nibbles move the predictor up"
        );
        assert!(
            pcm.windows(2).all(|w| w[0] < w[1]),
            "index growth accelerates the predictor"
        );
        // Sign bit (8) moves the predictor down.
        let pcm = decode(&[0x88]);
        assert!(pcm[1] <= pcm[0]);
    }

    #[test]
    fn predictor_stays_clamped() {
        for ds in [DataSet::Small, DataSet::Large] {
            let pcm = decode(&input(ds));
            assert!(pcm.iter().all(|&v| (-32768..=32767).contains(&v)));
            assert_eq!(pcm.len(), nibble_bytes(ds) * 2);
        }
    }

    #[test]
    fn step_table_is_monotonic() {
        assert!(STEP_TABLE.windows(2).all(|w| w[0] < w[1]));
    }
}
