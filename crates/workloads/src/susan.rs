//! susan_c / susan_e / susan_s (automotive image processing): the SUSAN
//! family — corner detection, edge detection and structure-preserving
//! smoothing, built around a brightness-similarity look-up table
//! `c(Δ) = round(100·exp(−(Δ/t)⁶))` exactly like the MiBench original.
//!
//! * corners: 5×5 USAN area, corner when the area is below the geometric
//!   threshold `g = nmax/2`;
//! * edges: 3×3 USAN area, edge when below `g = 3·nmax/4`;
//! * smoothing: 3×3 spatially-weighted, similarity-weighted average with an
//!   integer division per pixel.

use crate::gen::{bytes, checksum_words, words, Xorshift32};
use crate::{DataSet, EXIT0};
use mbu_isa::asm::assemble;
use mbu_isa::Program;

fn image(width: usize, seed: u32) -> Vec<u8> {
    let mut rng = Xorshift32::new(seed);
    (0..width * width)
        .map(|i| {
            let (x, y) = (i % width, i / width);
            // Two flat regions with a diagonal boundary plus speckle: gives
            // the detectors real corners/edges to find.
            let base = if x + 2 * y < width + width / 2 {
                60
            } else {
                180
            };
            (base + rng.below(25) as i32 - 12).clamp(0, 255) as u8
        })
        .collect()
}

/// Brightness-similarity LUT over Δ ∈ [−255, 255], scaled to 0..100.
fn similarity_lut(t: f64) -> Vec<u32> {
    (-255i32..=255)
        .map(|d| {
            let x = d as f64 / t;
            (100.0 * (-x.powi(6)).exp()).round() as u32
        })
        .collect()
}

/// Mask byte-offsets for a square neighbourhood (excluding the centre).
fn mask_offsets(width: usize, radius: i32) -> Vec<i32> {
    let mut v = Vec::new();
    for dy in -radius..=radius {
        for dx in -radius..=radius {
            if dx != 0 || dy != 0 {
                v.push(dy * width as i32 + dx);
            }
        }
    }
    v
}

struct UsanParams {
    width: usize,
    seed: u32,
    radius: i32,
    threshold_t: f64,
    /// Geometric threshold g (response when `usan < g`).
    g: u32,
}

fn corner_params(ds: DataSet) -> UsanParams {
    let width = match ds {
        DataSet::Small => 16,
        DataSet::Large => 32,
    };
    UsanParams {
        width,
        seed: 0x5A5A_0043,
        radius: 2,
        threshold_t: 27.0,
        g: 1200,
    }
}

fn edge_params(ds: DataSet) -> UsanParams {
    let width = match ds {
        DataSet::Small => 20,
        DataSet::Large => 40,
    };
    UsanParams {
        width,
        seed: 0x5A5A_0047,
        radius: 1,
        threshold_t: 27.0,
        g: 600,
    }
}

/// USAN detector reference: emits (response checksum, detection count).
fn usan_reference(p: &UsanParams) -> Vec<u8> {
    let img = image(p.width, p.seed);
    let lut = similarity_lut(p.threshold_t);
    let offs = mask_offsets(p.width, p.radius);
    let r = p.radius as usize;
    let mut cksum_vals = Vec::new();
    let mut count = 0u32;
    for y in r..p.width - r {
        for x in r..p.width - r {
            let center = img[y * p.width + x] as i32;
            let mut n = 0u32;
            for &off in &offs {
                let idx = (y * p.width + x) as i32 + off;
                let diff = img[idx as usize] as i32 - center;
                n += lut[(diff + 255) as usize];
            }
            let response = p.g.saturating_sub(n);
            cksum_vals.push(response);
            if response > 0 {
                count += 1;
            }
        }
    }
    let mut out = checksum_words(cksum_vals).to_le_bytes().to_vec();
    out.extend_from_slice(&count.to_le_bytes());
    out
}

/// Shared USAN assembly (corners and edges differ only in parameters).
fn usan_asm(p: &UsanParams) -> String {
    let img = image(p.width, p.seed);
    let lut = similarity_lut(p.threshold_t);
    let offs: Vec<u32> = mask_offsets(p.width, p.radius)
        .iter()
        .map(|v| *v as u32)
        .collect();
    format!(
        r#"
.text
main:
    li   r3, {r}             # y
    li   r12, 0              # checksum
    li   r13, 0              # count
y_loop:
    li   r4, {r}             # x
x_loop:
    # center = img[y*W + x]
    li   r5, {w}
    mul  r5, r3, r5
    add  r5, r5, r4
    la   r6, img
    add  r5, r6, r5          # center ptr
    lbu  r6, 0(r5)           # center value
    li   r7, 0               # n (usan)
    la   r8, offs
    li   r9, {noffs}
mask_loop:
    lw   r10, 0(r8)
    add  r10, r5, r10
    lbu  r10, 0(r10)         # neighbour
    sub  r10, r10, r6        # diff
    addi r10, r10, 255
    slli r10, r10, 2
    la   r11, lut
    add  r10, r11, r10
    lw   r10, 0(r10)
    add  r7, r7, r10
    addi r8, r8, 4
    addi r9, r9, -1
    bnez r9, mask_loop
    # response = g - n if n < g else 0
    li   r10, {g}
    bgeu r7, r10, no_resp
    sub  r10, r10, r7
    addi r13, r13, 1
    b    fold
no_resp:
    li   r10, 0
fold:
    li   r11, 31
    mul  r12, r12, r11
    add  r12, r12, r10
    addi r4, r4, 1
    li   r10, {xmax}
    blt  r4, r10, x_loop
    addi r3, r3, 1
    li   r10, {xmax}
    blt  r3, r10, y_loop
    li   r2, 2
    mv   r3, r12
    syscall
    mv   r3, r13
    syscall
{EXIT0}
.data
lut:
{lut}
offs:
{offs}
img:
{img}
"#,
        r = p.radius,
        w = p.width,
        noffs = offs.len(),
        g = p.g,
        xmax = p.width - p.radius as usize,
        lut = words(&lut),
        offs = words(&offs),
        img = bytes(&img),
    )
}

/// The assembled SUSAN corner detector.
pub fn corners_program(ds: DataSet) -> Program {
    assemble(&usan_asm(&corner_params(ds))).expect("susan_c must assemble")
}

/// Reference output for the corner detector.
pub fn corners_reference(ds: DataSet) -> Vec<u8> {
    usan_reference(&corner_params(ds))
}

/// The assembled SUSAN edge detector.
pub fn edges_program(ds: DataSet) -> Program {
    assemble(&usan_asm(&edge_params(ds))).expect("susan_e must assemble")
}

/// Reference output for the edge detector.
pub fn edges_reference(ds: DataSet) -> Vec<u8> {
    usan_reference(&edge_params(ds))
}

fn smooth_w(ds: DataSet) -> usize {
    match ds {
        DataSet::Small => 24,
        DataSet::Large => 48,
    }
}

const SMOOTH_SEED: u32 = 0x5A5A_0053;
/// Spatial weights of the 3×3 smoothing kernel, row-major.
const SPATIAL: [u32; 9] = [1, 2, 1, 2, 4, 2, 1, 2, 1];

/// Smoothing reference: per-pixel weighted average, checksum of outputs.
pub fn smoothing_reference(ds: DataSet) -> Vec<u8> {
    let w_img = smooth_w(ds);
    let img = image(w_img, SMOOTH_SEED);
    let lut = similarity_lut(27.0);
    let mut vals = Vec::new();
    for y in 1..w_img - 1 {
        for x in 1..w_img - 1 {
            let center = img[y * w_img + x] as i32;
            let mut num = 0u32;
            let mut den = 0u32;
            for dy in 0..3 {
                for dx in 0..3 {
                    let pix = img[(y + dy - 1) * w_img + (x + dx - 1)] as i32;
                    let w = SPATIAL[dy * 3 + dx] * lut[(pix - center + 255) as usize];
                    num += w * pix as u32;
                    den += w;
                }
            }
            vals.push(num / den); // den >= 400: the centre always matches
        }
    }
    checksum_words(vals).to_le_bytes().to_vec()
}

/// The assembled SUSAN smoothing program.
pub fn smoothing_program(ds: DataSet) -> Program {
    let w_img = smooth_w(ds);
    let img = image(w_img, SMOOTH_SEED);
    let lut = similarity_lut(27.0);
    // Offsets and weights for the 3×3 kernel, interleaved (off, weight).
    let mut kern = Vec::new();
    for dy in -1i32..=1 {
        for dx in -1i32..=1 {
            kern.push((dy * w_img as i32 + dx) as u32);
            kern.push(SPATIAL[((dy + 1) * 3 + dx + 1) as usize]);
        }
    }
    let src = format!(
        r#"
.text
main:
    li   r3, 1               # y
    li   r12, 0              # checksum
y_loop:
    li   r4, 1               # x
x_loop:
    li   r5, {w}
    mul  r5, r3, r5
    add  r5, r5, r4
    la   r6, img
    add  r5, r6, r5          # center ptr
    lbu  r6, 0(r5)           # center
    li   r7, 0               # num
    li   r13, 0              # den
    la   r8, kern
    li   r9, 9
kern_loop:
    lw   r10, 0(r8)          # offset
    add  r10, r5, r10
    lbu  r10, 0(r10)         # pix
    sub  r11, r10, r6
    addi r11, r11, 255
    slli r11, r11, 2
    la   r2, lut
    add  r11, r2, r11
    lw   r11, 0(r11)         # c(diff)
    lw   r2, 4(r8)           # spatial weight
    mul  r11, r11, r2        # w
    add  r13, r13, r11       # den += w
    mul  r11, r11, r10       # w * pix
    add  r7, r7, r11         # num += w*pix
    addi r8, r8, 8
    addi r9, r9, -1
    bnez r9, kern_loop
    divu r7, r7, r13         # out pixel
    li   r11, 31
    mul  r12, r12, r11
    add  r12, r12, r7
    addi r4, r4, 1
    li   r10, {xmax}
    blt  r4, r10, x_loop
    addi r3, r3, 1
    li   r10, {xmax}
    blt  r3, r10, y_loop
    li   r2, 2
    mv   r3, r12
    syscall
{EXIT0}
.data
lut:
{lut}
kern:
{kern}
img:
{img}
"#,
        w = w_img,
        xmax = w_img - 1,
        lut = words(&lut),
        kern = words(&kern),
        img = bytes(&img),
    );
    assemble(&src).expect("susan_s must assemble")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lut_is_100_at_zero_and_decays() {
        let lut = similarity_lut(27.0);
        assert_eq!(lut[255], 100);
        assert!(lut[255 + 27] > lut[255 + 60]);
        assert_eq!(lut[0], 0);
        assert_eq!(lut[510], 0);
    }

    #[test]
    fn detectors_find_the_diagonal_boundary() {
        for ds in [DataSet::Small, DataSet::Large] {
            let out = corners_reference(ds);
            let count = u32::from_le_bytes([out[4], out[5], out[6], out[7]]);
            assert!(count > 0, "{ds}: corner detector must fire on the boundary");
            let out = edges_reference(ds);
            let count = u32::from_le_bytes([out[4], out[5], out[6], out[7]]);
            assert!(count > 0, "{ds}: edge detector must fire on the boundary");
        }
    }

    #[test]
    fn mask_offsets_exclude_center() {
        let o = mask_offsets(16, 2);
        assert_eq!(o.len(), 24);
        assert!(!o.contains(&0));
    }

    #[test]
    fn smoothing_preserves_flat_regions() {
        // Interior pixels of a flat synthetic image stay identical.
        let lut = similarity_lut(27.0);
        let img = [90u8; 9];
        let center = img[4] as i32;
        let mut num = 0u32;
        let mut den = 0u32;
        for k in 0..9 {
            let w = SPATIAL[k] * lut[(img[k] as i32 - center + 255) as usize];
            num += w * img[k] as u32;
            den += w;
        }
        assert_eq!(num / den, 90);
    }
}
