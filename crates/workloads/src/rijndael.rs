//! rijndael_dec (security): AES-128 ECB decryption of 24 (small) / 96
//! (large) blocks.
//!
//! The ciphertext and the expanded key schedule are produced host-side by an
//! independent Rust AES implementation (the paper's workload reads key and
//! ciphertext from files); the assembly program implements the full
//! InvCipher: AddRoundKey, InvShiftRows ∘ InvSubBytes (fused through a
//! permutation table), and table-driven InvMixColumns (GF(2⁸) multiply
//! tables for 9, 11, 13, 14).

use crate::gen::{bytes, checksum_words, Xorshift32};
use crate::{DataSet, EXIT0};
use mbu_isa::asm::assemble;
use mbu_isa::Program;

fn nblocks(ds: DataSet) -> usize {
    match ds {
        DataSet::Small => 24,
        DataSet::Large => 96,
    }
}

/// The AES S-box.
const SBOX: [u8; 256] = [
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
    0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
    0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
    0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
    0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
    0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
    0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
    0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
    0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
    0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
];

fn inv_sbox() -> [u8; 256] {
    let mut inv = [0u8; 256];
    for (i, &v) in SBOX.iter().enumerate() {
        inv[v as usize] = i as u8;
    }
    inv
}

fn xtime(x: u8) -> u8 {
    (x << 1) ^ if x & 0x80 != 0 { 0x1B } else { 0 }
}

fn gf_mul(mut a: u8, mut b: u8) -> u8 {
    let mut p = 0u8;
    while b != 0 {
        if b & 1 != 0 {
            p ^= a;
        }
        a = xtime(a);
        b >>= 1;
    }
    p
}

fn mul_table(k: u8) -> [u8; 256] {
    let mut t = [0u8; 256];
    for (i, slot) in t.iter_mut().enumerate() {
        *slot = gf_mul(i as u8, k);
    }
    t
}

/// AES-128 key expansion: 11 round keys of 16 bytes.
fn expand_key(key: &[u8; 16]) -> [u8; 176] {
    let mut w = [0u8; 176];
    w[..16].copy_from_slice(key);
    let mut rcon = 1u8;
    for i in 4..44 {
        let mut t = [w[4 * i - 4], w[4 * i - 3], w[4 * i - 2], w[4 * i - 1]];
        if i % 4 == 0 {
            t.rotate_left(1);
            for b in &mut t {
                *b = SBOX[*b as usize];
            }
            t[0] ^= rcon;
            rcon = xtime(rcon);
        }
        for j in 0..4 {
            w[4 * i + j] = w[4 * (i - 4) + j] ^ t[j];
        }
    }
    w
}

fn encrypt_block(block: &mut [u8; 16], keys: &[u8; 176]) {
    let add_rk = |s: &mut [u8; 16], r: usize| {
        for i in 0..16 {
            s[i] ^= keys[r * 16 + i];
        }
    };
    let sub = |s: &mut [u8; 16]| {
        for b in s.iter_mut() {
            *b = SBOX[*b as usize];
        }
    };
    // Column-major state: s[4*c + r] = byte r of column c.
    let shift_rows = |s: &mut [u8; 16]| {
        let t = *s;
        for c in 0..4 {
            for r in 0..4 {
                s[4 * c + r] = t[4 * ((c + r) % 4) + r];
            }
        }
    };
    let mix = |s: &mut [u8; 16]| {
        for c in 0..4 {
            let a: [u8; 4] = [s[4 * c], s[4 * c + 1], s[4 * c + 2], s[4 * c + 3]];
            s[4 * c] = gf_mul(a[0], 2) ^ gf_mul(a[1], 3) ^ a[2] ^ a[3];
            s[4 * c + 1] = a[0] ^ gf_mul(a[1], 2) ^ gf_mul(a[2], 3) ^ a[3];
            s[4 * c + 2] = a[0] ^ a[1] ^ gf_mul(a[2], 2) ^ gf_mul(a[3], 3);
            s[4 * c + 3] = gf_mul(a[0], 3) ^ a[1] ^ a[2] ^ gf_mul(a[3], 2);
        }
    };
    add_rk(block, 0);
    for r in 1..10 {
        sub(block);
        shift_rows(block);
        mix(block);
        add_rk(block, r);
    }
    sub(block);
    shift_rows(block);
    add_rk(block, 10);
}

/// Reference decryption (inverse of [`encrypt_block`]), used both for the
/// expected output and in tests.
fn decrypt_block(block: &mut [u8; 16], keys: &[u8; 176]) {
    let inv = inv_sbox();
    let add_rk = |s: &mut [u8; 16], r: usize| {
        for i in 0..16 {
            s[i] ^= keys[r * 16 + i];
        }
    };
    let inv_sub = |s: &mut [u8; 16]| {
        for b in s.iter_mut() {
            *b = inv[*b as usize];
        }
    };
    let inv_shift_rows = |s: &mut [u8; 16]| {
        let t = *s;
        for c in 0..4 {
            for r in 0..4 {
                s[4 * ((c + r) % 4) + r] = t[4 * c + r];
            }
        }
    };
    let inv_mix = |s: &mut [u8; 16]| {
        for c in 0..4 {
            let a: [u8; 4] = [s[4 * c], s[4 * c + 1], s[4 * c + 2], s[4 * c + 3]];
            s[4 * c] = gf_mul(a[0], 14) ^ gf_mul(a[1], 11) ^ gf_mul(a[2], 13) ^ gf_mul(a[3], 9);
            s[4 * c + 1] = gf_mul(a[0], 9) ^ gf_mul(a[1], 14) ^ gf_mul(a[2], 11) ^ gf_mul(a[3], 13);
            s[4 * c + 2] = gf_mul(a[0], 13) ^ gf_mul(a[1], 9) ^ gf_mul(a[2], 14) ^ gf_mul(a[3], 11);
            s[4 * c + 3] = gf_mul(a[0], 11) ^ gf_mul(a[1], 13) ^ gf_mul(a[2], 9) ^ gf_mul(a[3], 14);
        }
    };
    add_rk(block, 10);
    for r in (1..10).rev() {
        inv_shift_rows(block);
        inv_sub(block);
        add_rk(block, r);
        inv_mix(block);
    }
    inv_shift_rows(block);
    inv_sub(block);
    add_rk(block, 0);
}

fn key() -> [u8; 16] {
    *b"mbusim-aes-key01"
}

fn plaintext(ds: DataSet) -> Vec<u8> {
    let mut rng = Xorshift32::new(0xAE5_0041);
    (0..nblocks(ds) * 16).map(|_| rng.next_u8()).collect()
}

fn ciphertext(ds: DataSet) -> Vec<u8> {
    let keys = expand_key(&key());
    let mut data = plaintext(ds);
    for chunk in data.chunks_mut(16) {
        let mut b = [0u8; 16];
        b.copy_from_slice(chunk);
        encrypt_block(&mut b, &keys);
        chunk.copy_from_slice(&b);
    }
    data
}

/// Reference output: checksum over the decrypted plaintext plus its first
/// two words. Computed by actually decrypting the embedded ciphertext with
/// the independent Rust implementation (tests additionally check that the
/// decryption equals the original plaintext).
pub fn reference(ds: DataSet) -> Vec<u8> {
    let keys = expand_key(&key());
    let mut p = ciphertext(ds);
    for chunk in p.chunks_mut(16) {
        let mut b = [0u8; 16];
        b.copy_from_slice(chunk);
        decrypt_block(&mut b, &keys);
        chunk.copy_from_slice(&b);
    }
    let word = |i: usize| u32::from_le_bytes([p[i], p[i + 1], p[i + 2], p[i + 3]]);
    let mut out = checksum_words(
        p.chunks(4)
            .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]])),
    )
    .to_le_bytes()
    .to_vec();
    out.extend_from_slice(&word(0).to_le_bytes());
    out.extend_from_slice(&word(4).to_le_bytes());
    out
}

/// Combined `InvShiftRows ∘ InvSubBytes` source permutation:
/// `new[dst] = inv_sbox[old[perm[dst]]]` with column-major state layout.
fn inv_shift_perm() -> [u8; 16] {
    // InvShiftRows maps old[4c + r] -> new[4((c+r)%4) + r];
    // so new[4c + r] = old[4((c - r) mod 4) + r].
    let mut p = [0u8; 16];
    for c in 0..4usize {
        for r in 0..4usize {
            p[4 * c + r] = (4 * ((c + 4 - r) % 4) + r) as u8;
        }
    }
    p
}

/// The assembled decryption program.
pub fn program(ds: DataSet) -> Program {
    let keys = expand_key(&key());
    // Registers: r1 = block ptr (in-place state), r3 = block counter,
    // r4 = round, r5 = key ptr, r6..r11 temps, r12/r13 base pointers.
    let src = format!(
        r#"
.text
main:
    la   r1, ct
    li   r3, {nblocks}
block_loop:
    # ---- AddRoundKey(10)
    la   r5, keys
    addi r5, r5, 160
    jal  add_rk
    li   r4, 9
round_loop:
    jal  inv_sr_sb           # InvShiftRows + InvSubBytes into state
    slli r5, r4, 4
    la   r6, keys
    add  r5, r6, r5
    jal  add_rk
    jal  inv_mix
    addi r4, r4, -1
    bnez r4, round_loop
    jal  inv_sr_sb
    la   r5, keys
    jal  add_rk
    addi r1, r1, 16
    addi r3, r3, -1
    bnez r3, block_loop
    # ---- checksum the decrypted buffer (as LE words) + first two words
    la   r1, ct
    li   r3, {nwords}
    li   r4, 0
cksum:
    lw   r6, 0(r1)
    li   r7, 31
    mul  r4, r4, r7
    add  r4, r4, r6
    addi r1, r1, 4
    addi r3, r3, -1
    bnez r3, cksum
    li   r2, 2
    mv   r3, r4
    syscall
    la   r1, ct
    lw   r3, 0(r1)
    syscall
    lw   r3, 4(r1)
    syscall
{EXIT0}

# ---- state ^= round key at r5 (r1 = state) ----
add_rk:
    lw   r6, 0(r1)
    lw   r7, 0(r5)
    xor  r6, r6, r7
    sw   r6, 0(r1)
    lw   r6, 4(r1)
    lw   r7, 4(r5)
    xor  r6, r6, r7
    sw   r6, 4(r1)
    lw   r6, 8(r1)
    lw   r7, 8(r5)
    xor  r6, r6, r7
    sw   r6, 8(r1)
    lw   r6, 12(r1)
    lw   r7, 12(r5)
    xor  r6, r6, r7
    sw   r6, 12(r1)
    jr   ra

# ---- tmp[i] = inv_sbox[state[perm[i]]]; state = tmp ----
inv_sr_sb:
    li   r6, 0
srsb_loop:
    la   r7, perm
    add  r7, r7, r6
    lbu  r7, 0(r7)           # perm[i]
    add  r7, r1, r7
    lbu  r7, 0(r7)           # state[perm[i]]
    la   r8, isbox
    add  r8, r8, r7
    lbu  r7, 0(r8)           # inv_sbox[...]
    la   r8, tmp16
    add  r8, r8, r6
    sb   r7, 0(r8)
    addi r6, r6, 1
    li   r7, 16
    blt  r6, r7, srsb_loop
    la   r8, tmp16
    lw   r6, 0(r8)
    sw   r6, 0(r1)
    lw   r6, 4(r8)
    sw   r6, 4(r1)
    lw   r6, 8(r8)
    sw   r6, 8(r1)
    lw   r6, 12(r8)
    sw   r6, 12(r1)
    jr   ra

# ---- InvMixColumns on the 4 columns of state ----
inv_mix:
    li   r6, 0               # column byte offset 0, 4, 8, 12
mix_col:
    add  r7, r1, r6
    lbu  r8, 0(r7)           # a0
    lbu  r9, 1(r7)           # a1
    lbu  r10, 2(r7)          # a2
    lbu  r11, 3(r7)          # a3
    # b0 = m14[a0]^m11[a1]^m13[a2]^m9[a3]
    la   r12, m14
    add  r13, r12, r8
    lbu  r13, 0(r13)
    la   r12, m11
    add  r12, r12, r9
    lbu  r12, 0(r12)
    xor  r13, r13, r12
    la   r12, m13
    add  r12, r12, r10
    lbu  r12, 0(r12)
    xor  r13, r13, r12
    la   r12, m9
    add  r12, r12, r11
    lbu  r12, 0(r12)
    xor  r13, r13, r12
    sb   r13, 0(r7)
    # b1 = m9[a0]^m14[a1]^m11[a2]^m13[a3]
    la   r12, m9
    add  r13, r12, r8
    lbu  r13, 0(r13)
    la   r12, m14
    add  r12, r12, r9
    lbu  r12, 0(r12)
    xor  r13, r13, r12
    la   r12, m11
    add  r12, r12, r10
    lbu  r12, 0(r12)
    xor  r13, r13, r12
    la   r12, m13
    add  r12, r12, r11
    lbu  r12, 0(r12)
    xor  r13, r13, r12
    sb   r13, 1(r7)
    # b2 = m13[a0]^m9[a1]^m14[a2]^m11[a3]
    la   r12, m13
    add  r13, r12, r8
    lbu  r13, 0(r13)
    la   r12, m9
    add  r12, r12, r9
    lbu  r12, 0(r12)
    xor  r13, r13, r12
    la   r12, m14
    add  r12, r12, r10
    lbu  r12, 0(r12)
    xor  r13, r13, r12
    la   r12, m11
    add  r12, r12, r11
    lbu  r12, 0(r12)
    xor  r13, r13, r12
    sb   r13, 2(r7)
    # b3 = m11[a0]^m13[a1]^m9[a2]^m14[a3]
    la   r12, m11
    add  r13, r12, r8
    lbu  r13, 0(r13)
    la   r12, m13
    add  r12, r12, r9
    lbu  r12, 0(r12)
    xor  r13, r13, r12
    la   r12, m9
    add  r12, r12, r10
    lbu  r12, 0(r12)
    xor  r13, r13, r12
    la   r12, m14
    add  r12, r12, r11
    lbu  r12, 0(r12)
    xor  r13, r13, r12
    sb   r13, 3(r7)
    addi r6, r6, 4
    li   r7, 16
    blt  r6, r7, mix_col
    jr   ra
.data
keys:
{keys}
isbox:
{isbox}
perm:
{perm}
m9:
{m9}
m11:
{m11}
m13:
{m13}
m14:
{m14}
tmp16:
    .space 16
ct:
{ct}
"#,
        nblocks = nblocks(ds),
        nwords = nblocks(ds) * 4,
        keys = bytes(&keys),
        isbox = bytes(&inv_sbox()),
        perm = bytes(&inv_shift_perm()),
        m9 = bytes(&mul_table(9)),
        m11 = bytes(&mul_table(11)),
        m13 = bytes(&mul_table(13)),
        m14 = bytes(&mul_table(14)),
        ct = bytes(&ciphertext(ds)),
    );
    assemble(&src).expect("rijndael workload must assemble")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aes128_matches_fips197_vector() {
        // FIPS-197 appendix C.1: key 000102...0f, plaintext 00112233...ff.
        let key: [u8; 16] = core::array::from_fn(|i| i as u8);
        let mut block: [u8; 16] = core::array::from_fn(|i| (i * 0x11) as u8);
        let keys = expand_key(&key);
        encrypt_block(&mut block, &keys);
        assert_eq!(
            block,
            [
                0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30, 0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4,
                0xc5, 0x5a
            ]
        );
        decrypt_block(&mut block, &keys);
        assert_eq!(block, core::array::from_fn(|i| (i * 0x11) as u8));
    }

    #[test]
    fn ciphertext_decrypts_to_plaintext() {
        for ds in [DataSet::Small, DataSet::Large] {
            let keys = expand_key(&key());
            let mut data = ciphertext(ds);
            for chunk in data.chunks_mut(16) {
                let mut b = [0u8; 16];
                b.copy_from_slice(chunk);
                decrypt_block(&mut b, &keys);
                chunk.copy_from_slice(&b);
            }
            assert_eq!(data, plaintext(ds));
        }
    }

    #[test]
    fn gf_mul_agrees_with_xtime() {
        for a in 0..=255u8 {
            assert_eq!(gf_mul(a, 2), xtime(a));
            assert_eq!(gf_mul(a, 1), a);
            assert_eq!(gf_mul(a, 3), xtime(a) ^ a);
        }
    }

    #[test]
    fn inv_shift_perm_inverts_shift_rows() {
        // Applying perm gathering to a shifted state must restore identity.
        let mut s: [u8; 16] = core::array::from_fn(|i| i as u8);
        // ShiftRows forward (as in encrypt_block).
        let t = s;
        for c in 0..4 {
            for r in 0..4 {
                s[4 * c + r] = t[4 * ((c + r) % 4) + r];
            }
        }
        let p = inv_shift_perm();
        let restored: [u8; 16] = core::array::from_fn(|i| s[p[i] as usize]);
        assert_eq!(restored, t);
    }
}
