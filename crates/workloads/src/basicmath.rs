//! basicmath (automotive): integer square roots (shift-based), GCDs
//! (Euclid with hardware remainder) and degree→radian fixed-point
//! conversions — the paper's basicmath mix of simple math kernels.

use crate::gen::{checksum_words, words, Xorshift32};
use crate::{DataSet, EXIT0};
use mbu_isa::asm::assemble;
use mbu_isa::Program;

fn counts(ds: DataSet) -> (usize, usize, usize) {
    match ds {
        DataSet::Small => (400, 200, 360),
        DataSet::Large => (1600, 800, 1440),
    }
}

/// π/180 in Q26 (matches the assembly constant).
const DEG2RAD_Q26: u32 = 1_171_027;

fn sqrt_inputs(ds: DataSet) -> Vec<u32> {
    let mut rng = Xorshift32::new(0xBA51_0017);
    (0..counts(ds).0)
        .map(|_| rng.next_u32() & 0x3FFF_FFFF)
        .collect()
}

fn gcd_inputs(ds: DataSet) -> Vec<u32> {
    let mut rng = Xorshift32::new(0xBA51_0019);
    (0..counts(ds).1 * 2)
        .map(|_| 1 + (rng.next_u32() & 0x000F_FFFF))
        .collect()
}

/// Shift-based integer square root (no division).
fn isqrt(mut v: u32) -> u32 {
    let mut res = 0u32;
    let mut bit = 1u32 << 30;
    while bit > v {
        bit >>= 2;
    }
    while bit != 0 {
        if v >= res + bit {
            v -= res + bit;
            res = (res >> 1) + bit;
        } else {
            res >>= 1;
        }
        bit >>= 2;
    }
    res
}

fn gcd(mut a: u32, mut b: u32) -> u32 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Reference: one checksum per kernel.
pub fn reference(ds: DataSet) -> Vec<u8> {
    let c1 = checksum_words(sqrt_inputs(ds).iter().map(|&v| isqrt(v)));
    let pairs = gcd_inputs(ds);
    let c2 = checksum_words(pairs.chunks(2).map(|p| gcd(p[0], p[1])));
    let c3 = checksum_words((0..counts(ds).2 as u32).map(|d| d.wrapping_mul(DEG2RAD_Q26) >> 10));
    [c1, c2, c3].iter().flat_map(|v| v.to_le_bytes()).collect()
}

/// The assembled basicmath program.
pub fn program(ds: DataSet) -> Program {
    let (n_sqrt, n_gcd, n_deg) = counts(ds);
    let src = format!(
        r#"
.text
main:
    # ================= kernel 1: integer square roots =================
    la   r1, sq_in
    li   r3, {nsqrt}
    li   r4, 0               # checksum
sq_loop:
    lw   r5, 0(r1)           # v
    li   r6, 0               # res
    li   r7, 0x40000000      # bit
find_bit:
    bleu r7, r5, have_bit
    srli r7, r7, 2
    b    find_bit
have_bit:
    beqz r7, sq_done
sq_iter:
    add  r8, r6, r7          # res + bit
    bltu r5, r8, sq_smaller
    sub  r5, r5, r8
    srli r6, r6, 1
    add  r6, r6, r7
    b    sq_next
sq_smaller:
    srli r6, r6, 1
sq_next:
    srli r7, r7, 2
    bnez r7, sq_iter
sq_done:
    li   r8, 31
    mul  r4, r4, r8
    add  r4, r4, r6
    addi r1, r1, 4
    addi r3, r3, -1
    bnez r3, sq_loop
    li   r2, 2
    mv   r3, r4
    syscall
    # ================= kernel 2: GCDs =================
    la   r1, gcd_in
    li   r3, {ngcd}
    li   r4, 0
gcd_loop:
    lw   r5, 0(r1)           # a
    lw   r6, 4(r1)           # b
euclid:
    beqz r6, gcd_done
    remu r7, r5, r6
    mv   r5, r6
    mv   r6, r7
    b    euclid
gcd_done:
    li   r8, 31
    mul  r4, r4, r8
    add  r4, r4, r5
    addi r1, r1, 8
    addi r3, r3, -1
    bnez r3, gcd_loop
    li   r2, 2
    mv   r3, r4
    syscall
    # ================= kernel 3: degree -> radian (Q26 -> Q16) ========
    li   r3, 0               # deg
    li   r4, 0
    li   r9, {dr}
deg_loop:
    mul  r5, r3, r9
    srli r5, r5, 10
    li   r8, 31
    mul  r4, r4, r8
    add  r4, r4, r5
    addi r3, r3, 1
    li   r8, {ndeg}
    blt  r3, r8, deg_loop
    li   r2, 2
    mv   r3, r4
    syscall
{EXIT0}
.data
sq_in:
{sq}
gcd_in:
{gc}
"#,
        nsqrt = n_sqrt,
        ngcd = n_gcd,
        ndeg = n_deg,
        dr = DEG2RAD_Q26,
        sq = words(&sqrt_inputs(ds)),
        gc = words(&gcd_inputs(ds)),
    );
    assemble(&src).expect("basicmath workload must assemble")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isqrt_is_exact_floor_sqrt() {
        for v in [0u32, 1, 2, 3, 4, 15, 16, 17, 999, 1 << 20, u32::MAX >> 2] {
            let r = isqrt(v);
            assert!(r as u64 * r as u64 <= v as u64);
            assert!(
                (r as u64 + 1) * (r as u64 + 1) > v as u64,
                "isqrt({v}) = {r}"
            );
        }
    }

    #[test]
    fn gcd_basic_properties() {
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(gcd(7, 13), 1);
        assert_eq!(gcd(0, 5), 5);
        assert_eq!(gcd(5, 0), 5);
    }

    #[test]
    fn deg2rad_approximates_pi() {
        // 180 degrees -> pi in Q16: (180*Q26)>>10 ≈ 3.14159 * 65536.
        let rad = (180u32 * DEG2RAD_Q26) >> 10;
        let pi_q16 = (std::f64::consts::PI * 65536.0) as u32;
        assert!((rad as i64 - pi_q16 as i64).abs() < 64);
    }
}
