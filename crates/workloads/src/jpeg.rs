//! cjpeg / djpeg (consumer): the JPEG computational core — 8×8 fixed-point
//! forward DCT + quantization (encode) and dequantization + inverse DCT
//! (decode) with the standard luminance quantization table.
//!
//! The DCT is a Q12 cosine-matrix product, `G = C·f·Cᵀ`, with explicit
//! rounding after each pass so the Rust reference and the assembly kernel
//! perform bit-identical arithmetic. Entropy coding is omitted (the
//! MiBench hotspot is the DCT/quantization pipeline).

use crate::gen::{bytes, checksum_words, words, Xorshift32};
use crate::{DataSet, EXIT0};
use mbu_isa::asm::assemble;
use mbu_isa::Program;

/// Standard JPEG luminance quantization table (row-major).
const QTAB: [i32; 64] = [
    16, 11, 10, 16, 24, 40, 51, 61, //
    12, 12, 14, 19, 26, 58, 60, 55, //
    14, 13, 16, 24, 40, 57, 69, 56, //
    14, 17, 22, 29, 51, 87, 80, 62, //
    18, 22, 37, 56, 68, 109, 103, 77, //
    24, 35, 55, 64, 81, 104, 113, 92, //
    49, 64, 78, 87, 103, 121, 120, 101, //
    72, 92, 95, 98, 112, 100, 103, 99,
];

/// Q12 DCT basis: `C[u][x] = alpha(u) * cos((2x+1)uπ/16) * 4096`.
fn dct_matrix() -> [i32; 64] {
    let mut c = [0i32; 64];
    for u in 0..8 {
        let alpha = if u == 0 { (1.0f64 / 8.0).sqrt() } else { 0.5 };
        for x in 0..8 {
            let v = alpha * ((2.0 * x as f64 + 1.0) * u as f64 * std::f64::consts::PI / 16.0).cos();
            c[u * 8 + x] = (v * 4096.0).round() as i32;
        }
    }
    c
}

const ROUND_Q12: i32 = 2048;

/// Forward DCT + quantization of one level-shifted block, bit-identical to
/// the assembly.
fn fdct_quant(block: &[i32; 64]) -> [i32; 64] {
    let c = dct_matrix();
    // Pass 1: t[u][y] = round(Σ_x C[u][x] * f[x][y]).
    let mut t = [0i32; 64];
    for u in 0..8 {
        for y in 0..8 {
            let mut acc = 0i32;
            for x in 0..8 {
                acc = acc.wrapping_add(c[u * 8 + x].wrapping_mul(block[x * 8 + y]));
            }
            t[u * 8 + y] = acc.wrapping_add(ROUND_Q12) >> 12;
        }
    }
    // Pass 2: G[u][v] = round(Σ_y t[u][y] * C[v][y]), then quantize.
    let mut q = [0i32; 64];
    for u in 0..8 {
        for v in 0..8 {
            let mut acc = 0i32;
            for y in 0..8 {
                acc = acc.wrapping_add(t[u * 8 + y].wrapping_mul(c[v * 8 + y]));
            }
            let g = acc.wrapping_add(ROUND_Q12) >> 12;
            q[u * 8 + v] = g / QTAB[u * 8 + v];
        }
    }
    q
}

/// Dequantization + inverse DCT, producing clamped pixels, bit-identical to
/// the assembly (`f = Cᵀ·G·C`).
fn dequant_idct(q: &[i32; 64]) -> [i32; 64] {
    let c = dct_matrix();
    let mut g = [0i32; 64];
    for i in 0..64 {
        g[i] = q[i].wrapping_mul(QTAB[i]);
    }
    // Pass 1: t[x][v] = round(Σ_u C[u][x] * G[u][v]).
    let mut t = [0i32; 64];
    for x in 0..8 {
        for v in 0..8 {
            let mut acc = 0i32;
            for u in 0..8 {
                acc = acc.wrapping_add(c[u * 8 + x].wrapping_mul(g[u * 8 + v]));
            }
            t[x * 8 + v] = acc.wrapping_add(ROUND_Q12) >> 12;
        }
    }
    // Pass 2: f[x][y] = round(Σ_v t[x][v] * C[v][y]) + 128, clamped.
    let mut f = [0i32; 64];
    for x in 0..8 {
        for y in 0..8 {
            let mut acc = 0i32;
            for v in 0..8 {
                acc = acc.wrapping_add(t[x * 8 + v].wrapping_mul(c[v * 8 + y]));
            }
            let p = (acc.wrapping_add(ROUND_Q12) >> 12) + 128;
            f[x * 8 + y] = p.clamp(0, 255);
        }
    }
    f
}

fn c_w(ds: DataSet) -> usize {
    match ds {
        DataSet::Small => 24, // 9 blocks
        DataSet::Large => 48, // 36 blocks
    }
}

fn d_w(ds: DataSet) -> usize {
    match ds {
        DataSet::Small => 16, // 4 blocks
        DataSet::Large => 32, // 16 blocks
    }
}

fn image(width: usize, seed: u32) -> Vec<u8> {
    let mut rng = Xorshift32::new(seed);
    (0..width * width)
        .map(|i| {
            let (x, y) = (i % width, i / width);
            let base = (x * 5 + y * 3) as u32 % 200;
            (base + rng.below(56)) as u8
        })
        .collect()
}

fn encode_image(img: &[u8], width: usize) -> Vec<i32> {
    let blocks = width / 8;
    let mut out = Vec::with_capacity(width * width);
    for by in 0..blocks {
        for bx in 0..blocks {
            let mut f = [0i32; 64];
            for x in 0..8 {
                for y in 0..8 {
                    f[x * 8 + y] = img[(by * 8 + x) * width + bx * 8 + y] as i32 - 128;
                }
            }
            out.extend_from_slice(&fdct_quant(&f));
        }
    }
    out
}

/// Reference cjpeg output: coefficient checksum and nonzero count.
pub fn cjpeg_reference(ds: DataSet) -> Vec<u8> {
    let w = c_w(ds);
    let coeffs = encode_image(&image(w, 0x17E6_0031), w);
    let nz = coeffs.iter().filter(|&&v| v != 0).count() as u32;
    let mut out = checksum_words(coeffs.iter().map(|v| *v as u32))
        .to_le_bytes()
        .to_vec();
    out.extend_from_slice(&nz.to_le_bytes());
    out
}

/// Reference djpeg output: decoded-pixel checksum and 4 sample pixels.
pub fn djpeg_reference(ds: DataSet) -> Vec<u8> {
    let w = d_w(ds);
    let coeffs = encode_image(&image(w, 0x17E6_0037), w);
    let mut pixels = Vec::new();
    for block in coeffs.chunks(64) {
        let mut q = [0i32; 64];
        q.copy_from_slice(block);
        pixels.extend_from_slice(&dequant_idct(&q));
    }
    let mut out = checksum_words(pixels.iter().map(|v| *v as u32))
        .to_le_bytes()
        .to_vec();
    for i in [0usize, 63, 128, 255] {
        out.extend_from_slice(&(pixels[i] as u32).to_le_bytes());
    }
    out
}

/// Shared assembly for the two matrix passes of the forward DCT + quant.
///
/// Block layout in memory (all word arrays): `fbuf[64]` input, `tbuf[64]`
/// intermediate, `qout` destination pointer advanced per block.
fn cjpeg_asm(width: usize) -> String {
    let nblocks = (width / 8) * (width / 8);
    format!(
        r#"
.text
main:
    li   r3, 0               # block index
block_loop:
    # ---- gather the 8x8 block, level-shifted: fbuf[x*8+y] = img[...]-128
    # block row = (block / (W/8)) * 8, block col = (block % (W/8)) * 8
    li   r8, {bw}
    divu r4, r3, r8          # by
    remu r5, r3, r8          # bx
    li   r6, 0               # x
gather_x:
    li   r7, 0               # y
gather_y:
    slli r9, r4, 3
    add  r9, r9, r6          # by*8 + x
    li   r10, {w}
    mul  r9, r9, r10
    slli r10, r5, 3
    add  r9, r9, r10
    add  r9, r9, r7          # + bx*8 + y
    la   r10, img
    add  r9, r10, r9
    lbu  r9, 0(r9)
    addi r9, r9, -128
    slli r10, r6, 3
    add  r10, r10, r7
    slli r10, r10, 2
    la   r11, fbuf
    add  r10, r11, r10
    sw   r9, 0(r10)
    addi r7, r7, 1
    li   r9, 8
    blt  r7, r9, gather_y
    addi r6, r6, 1
    li   r9, 8
    blt  r6, r9, gather_x
    # ---- pass 1: t[u][y] = (sum_x C[u][x]*f[x][y] + 2048) >> 12
    li   r6, 0               # u
p1_u:
    li   r7, 0               # y
p1_y:
    li   r12, 0              # acc
    li   r8, 0               # x
p1_x:
    slli r9, r6, 3
    add  r9, r9, r8
    slli r9, r9, 2
    la   r10, cmat
    add  r9, r10, r9
    lw   r9, 0(r9)           # C[u][x]
    slli r10, r8, 3
    add  r10, r10, r7
    slli r10, r10, 2
    la   r11, fbuf
    add  r10, r11, r10
    lw   r10, 0(r10)         # f[x][y]
    mul  r9, r9, r10
    add  r12, r12, r9
    addi r8, r8, 1
    li   r9, 8
    blt  r8, r9, p1_x
    li   r9, 2048
    add  r12, r12, r9
    srai r12, r12, 12
    slli r9, r6, 3
    add  r9, r9, r7
    slli r9, r9, 2
    la   r10, tbuf
    add  r9, r10, r9
    sw   r12, 0(r9)
    addi r7, r7, 1
    li   r9, 8
    blt  r7, r9, p1_y
    addi r6, r6, 1
    li   r9, 8
    blt  r6, r9, p1_u
    # ---- pass 2 + quant: q = ((sum_y t[u][y]*C[v][y] + 2048) >> 12) / Q[u][v]
    li   r6, 0               # u
p2_u:
    li   r7, 0               # v
p2_v:
    li   r12, 0
    li   r8, 0               # y
p2_y:
    slli r9, r6, 3
    add  r9, r9, r8
    slli r9, r9, 2
    la   r10, tbuf
    add  r9, r10, r9
    lw   r9, 0(r9)           # t[u][y]
    slli r10, r7, 3
    add  r10, r10, r8
    slli r10, r10, 2
    la   r11, cmat
    add  r10, r11, r10
    lw   r10, 0(r10)         # C[v][y]
    mul  r9, r9, r10
    add  r12, r12, r9
    addi r8, r8, 1
    li   r9, 8
    blt  r8, r9, p2_y
    li   r9, 2048
    add  r12, r12, r9
    srai r12, r12, 12
    slli r9, r6, 3
    add  r9, r9, r7
    slli r9, r9, 2
    la   r10, qtab
    add  r10, r10, r9
    lw   r10, 0(r10)
    div  r12, r12, r10       # quantize
    # ---- fold into checksum and nonzero count (r13 = cksum, kept in mem)
    la   r10, acc
    lw   r11, 0(r10)         # checksum
    li   r9, 31
    mul  r11, r11, r9
    add  r11, r11, r12
    sw   r11, 0(r10)
    beqz r12, p2_zero
    lw   r11, 4(r10)
    addi r11, r11, 1
    sw   r11, 4(r10)
p2_zero:
    addi r7, r7, 1
    li   r9, 8
    blt  r7, r9, p2_v
    addi r6, r6, 1
    li   r9, 8
    blt  r6, r9, p2_u
    addi r3, r3, 1
    li   r9, {nblocks}
    blt  r3, r9, block_loop
    la   r10, acc
    li   r2, 2
    lw   r3, 0(r10)
    syscall
    lw   r3, 4(r10)
    syscall
{EXIT0}
.data
cmat:
{cmat}
qtab:
{qtab}
acc:
    .word 0, 0
fbuf:
    .space 256
tbuf:
    .space 256
img:
{img}
"#,
        w = width,
        bw = width / 8,
        nblocks = nblocks,
        cmat = words(&dct_matrix().map(|v| v as u32)),
        qtab = words(&QTAB.map(|v| v as u32)),
        img = bytes(&image(width, 0x17E6_0031)),
    )
}

/// The assembled cjpeg (encode) program.
pub fn cjpeg_program(ds: DataSet) -> Program {
    assemble(&cjpeg_asm(c_w(ds))).expect("cjpeg workload must assemble")
}

/// The assembled djpeg (decode) program: dequantize + inverse DCT the
/// host-encoded coefficients of a 16×16 image.
pub fn djpeg_program(ds: DataSet) -> Program {
    let w = d_w(ds);
    let coeffs = encode_image(&image(w, 0x17E6_0037), w);
    let nblocks = coeffs.len() / 64;
    let src = format!(
        r#"
.text
main:
    li   r3, 0               # block index
block_loop:
    # ---- dequantize into fbuf: g[i] = q[i] * Qtab[i]
    slli r4, r3, 8           # block * 64 words * 4 bytes
    la   r5, coeffs
    add  r4, r5, r4          # block base
    li   r6, 0
dq_loop:
    slli r7, r6, 2
    add  r8, r4, r7
    lw   r8, 0(r8)
    la   r9, qtab
    add  r9, r9, r7
    lw   r9, 0(r9)
    mul  r8, r8, r9
    la   r9, fbuf
    add  r9, r9, r7
    sw   r8, 0(r9)
    addi r6, r6, 1
    li   r7, 64
    blt  r6, r7, dq_loop
    # ---- pass 1: t[x][v] = (sum_u C[u][x]*G[u][v] + 2048) >> 12
    li   r6, 0               # x
i1_x:
    li   r7, 0               # v
i1_v:
    li   r12, 0
    li   r8, 0               # u
i1_u:
    slli r9, r8, 3
    add  r9, r9, r6
    slli r9, r9, 2
    la   r10, cmat
    add  r9, r10, r9
    lw   r9, 0(r9)           # C[u][x]
    slli r10, r8, 3
    add  r10, r10, r7
    slli r10, r10, 2
    la   r11, fbuf
    add  r10, r11, r10
    lw   r10, 0(r10)         # G[u][v]
    mul  r9, r9, r10
    add  r12, r12, r9
    addi r8, r8, 1
    li   r9, 8
    blt  r8, r9, i1_u
    li   r9, 2048
    add  r12, r12, r9
    srai r12, r12, 12
    slli r9, r6, 3
    add  r9, r9, r7
    slli r9, r9, 2
    la   r10, tbuf
    add  r9, r10, r9
    sw   r12, 0(r9)
    addi r7, r7, 1
    li   r9, 8
    blt  r7, r9, i1_v
    addi r6, r6, 1
    li   r9, 8
    blt  r6, r9, i1_x
    # ---- pass 2: f[x][y] = clamp(((sum_v t[x][v]*C[v][y]+2048)>>12)+128)
    li   r6, 0               # x
i2_x:
    li   r7, 0               # y
i2_y:
    li   r12, 0
    li   r8, 0               # v
i2_v:
    slli r9, r6, 3
    add  r9, r9, r8
    slli r9, r9, 2
    la   r10, tbuf
    add  r9, r10, r9
    lw   r9, 0(r9)           # t[x][v]
    slli r10, r8, 3
    add  r10, r10, r7
    slli r10, r10, 2
    la   r11, cmat
    add  r10, r11, r10
    lw   r10, 0(r10)         # C[v][y]
    mul  r9, r9, r10
    add  r12, r12, r9
    addi r8, r8, 1
    li   r9, 8
    blt  r8, r9, i2_v
    li   r9, 2048
    add  r12, r12, r9
    srai r12, r12, 12
    addi r12, r12, 128
    bgez r12, i2_pos
    li   r12, 0
i2_pos:
    li   r9, 255
    ble  r12, r9, i2_ok
    mv   r12, r9
i2_ok:
    # store pixel into out buffer at block*64 + x*8 + y
    slli r9, r3, 8
    la   r10, pix
    add  r10, r10, r9
    slli r9, r6, 3
    add  r9, r9, r7
    slli r9, r9, 2
    add  r10, r10, r9
    sw   r12, 0(r10)
    addi r7, r7, 1
    li   r9, 8
    blt  r7, r9, i2_y
    addi r6, r6, 1
    li   r9, 8
    blt  r6, r9, i2_x
    addi r3, r3, 1
    li   r9, {nblocks}
    blt  r3, r9, block_loop
    # ---- checksum + samples 0, 63, 128, 255
    la   r4, pix
    li   r3, {npix}
    li   r5, 0
cksum:
    lw   r6, 0(r4)
    li   r7, 31
    mul  r5, r5, r7
    add  r5, r5, r6
    addi r4, r4, 4
    addi r3, r3, -1
    bnez r3, cksum
    li   r2, 2
    mv   r3, r5
    syscall
    la   r4, pix
    lw   r3, 0(r4)
    syscall
    lw   r3, 252(r4)
    syscall
    lw   r3, 512(r4)
    syscall
    lw   r3, 1020(r4)
    syscall
{EXIT0}
.data
cmat:
{cmat}
qtab:
{qtab}
coeffs:
{coeffs}
fbuf:
    .space 256
tbuf:
    .space 256
pix:
    .space {pix_bytes}
"#,
        nblocks = nblocks,
        npix = nblocks * 64,
        pix_bytes = nblocks * 64 * 4,
        cmat = words(&dct_matrix().map(|v| v as u32)),
        qtab = words(&QTAB.map(|v| v as u32)),
        coeffs = words(&coeffs.iter().map(|v| *v as u32).collect::<Vec<_>>()),
    );
    assemble(&src).expect("djpeg workload must assemble")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dct_of_flat_block_is_dc_only() {
        let f = [50i32; 64];
        let q = fdct_quant(&f);
        // DC = 8 * 50 / alpha scaling -> 400-ish before quant; AC all ~0.
        assert!(q[0] != 0, "DC survives quantization");
        assert!(
            q[1..].iter().all(|&v| v.abs() <= 1),
            "AC nearly zero for flat input"
        );
    }

    #[test]
    fn roundtrip_error_is_small() {
        // Encode then decode a smooth block: pixels within quantization error.
        let mut f = [0i32; 64];
        for x in 0..8 {
            for y in 0..8 {
                f[x * 8 + y] = (x * 7 + y * 5) as i32 - 30;
            }
        }
        let q = fdct_quant(&f);
        let out = dequant_idct(&q);
        for i in 0..64 {
            let err = (out[i] - (f[i] + 128)).abs();
            assert!(
                err <= 24,
                "pixel {i}: {} vs {} (err {err})",
                out[i],
                f[i] + 128
            );
        }
    }

    #[test]
    fn idct_output_is_clamped() {
        let w = d_w(DataSet::Small);
        let coeffs = encode_image(&image(w, 0x17E6_0037), w);
        let mut q = [0i32; 64];
        q.copy_from_slice(&coeffs[..64]);
        assert!(dequant_idct(&q).iter().all(|&p| (0..=255).contains(&p)));
    }
}
