//! sha (security): SHA-1 digest of a 2 KB (small) / 8 KB (large) message.
//!
//! The message is padded host-side (the paper's workload reads a file; ours
//! embeds the padded file image) and stored as big-endian words so the
//! assembly kernel can load schedule words directly.

use crate::gen::{words, Xorshift32};
use crate::{DataSet, EXIT0};
use mbu_isa::asm::assemble;
use mbu_isa::Program;

fn msg_len(ds: DataSet) -> usize {
    match ds {
        DataSet::Small => 2048,
        DataSet::Large => 8192,
    }
}

fn message(ds: DataSet) -> Vec<u8> {
    let mut rng = Xorshift32::new(0x5AA5_0007);
    (0..msg_len(ds)).map(|_| rng.next_u8()).collect()
}

/// SHA-1 padding, returning big-endian words.
fn padded_words(ds: DataSet) -> Vec<u32> {
    let mut m = message(ds);
    let bit_len = (m.len() as u64) * 8;
    m.push(0x80);
    while m.len() % 64 != 56 {
        m.push(0);
    }
    m.extend_from_slice(&bit_len.to_be_bytes());
    m.chunks(4)
        .map(|c| u32::from_be_bytes([c[0], c[1], c[2], c[3]]))
        .collect()
}

fn sha1_words(data: &[u32]) -> [u32; 5] {
    let mut h: [u32; 5] = [
        0x6745_2301,
        0xEFCD_AB89,
        0x98BA_DCFE,
        0x1032_5476,
        0xC3D2_E1F0,
    ];
    for chunk in data.chunks(16) {
        let mut w = [0u32; 80];
        w[..16].copy_from_slice(chunk);
        for t in 16..80 {
            w[t] = (w[t - 3] ^ w[t - 8] ^ w[t - 14] ^ w[t - 16]).rotate_left(1);
        }
        let (mut a, mut b, mut c, mut d, mut e) = (h[0], h[1], h[2], h[3], h[4]);
        for (t, &wt) in w.iter().enumerate() {
            let (f, k) = match t {
                0..=19 => ((b & c) | ((!b) & d), 0x5A82_7999),
                20..=39 => (b ^ c ^ d, 0x6ED9_EBA1),
                40..=59 => ((b & c) | (b & d) | (c & d), 0x8F1B_BCDC),
                _ => (b ^ c ^ d, 0xCA62_C1D6),
            };
            let tmp = a
                .rotate_left(5)
                .wrapping_add(f)
                .wrapping_add(e)
                .wrapping_add(k)
                .wrapping_add(wt);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = tmp;
        }
        h[0] = h[0].wrapping_add(a);
        h[1] = h[1].wrapping_add(b);
        h[2] = h[2].wrapping_add(c);
        h[3] = h[3].wrapping_add(d);
        h[4] = h[4].wrapping_add(e);
    }
    h
}

/// Reference SHA-1 digest of the same input.
pub fn reference(ds: DataSet) -> Vec<u8> {
    sha1_words(&padded_words(ds))
        .iter()
        .flat_map(|v| v.to_le_bytes())
        .collect()
}

/// The assembled SHA-1 program.
pub fn program(ds: DataSet) -> Program {
    let data = padded_words(ds);
    let nchunks = data.len() / 16;
    // Register plan: r1 = chunk ptr, r2 = t, r3 = chunk counter,
    // a..e = r4..r8, r9/r10 = temps, r12 = W/base ptr, r13 = f+k accumulator.
    let src = format!(
        r#"
.text
main:
    la   r1, msg
    li   r3, {nchunks}
chunk_loop:
    # ---- message schedule: W[0..16) = chunk words
    la   r12, wbuf
    li   r2, 16
copy16:
    lw   r9, 0(r1)
    sw   r9, 0(r12)
    addi r1, r1, 4
    addi r12, r12, 4
    addi r2, r2, -1
    bnez r2, copy16
    # ---- W[16..80): rol1(W[t-3]^W[t-8]^W[t-14]^W[t-16])
    li   r2, 64
extend:
    lw   r9, -12(r12)
    lw   r10, -32(r12)
    xor  r9, r9, r10
    lw   r10, -56(r12)
    xor  r9, r9, r10
    lw   r10, -64(r12)
    xor  r9, r9, r10
    slli r10, r9, 1
    srli r9, r9, 31
    or   r9, r9, r10
    sw   r9, 0(r12)
    addi r12, r12, 4
    addi r2, r2, -1
    bnez r2, extend
    # ---- load state
    la   r12, hst
    lw   r4, 0(r12)
    lw   r5, 4(r12)
    lw   r6, 8(r12)
    lw   r7, 12(r12)
    lw   r8, 16(r12)
    la   r12, wbuf
    li   r2, 0
rounds:
    slti r9, r2, 20
    beqz r9, not_f1
    and  r13, r5, r6         # f = (b&c) | (~b & d)
    not  r9, r5
    and  r9, r9, r7
    or   r13, r13, r9
    li   r9, 0x5A827999
    b    have_f
not_f1:
    slti r9, r2, 40
    beqz r9, not_f2
    xor  r13, r5, r6
    xor  r13, r13, r7
    li   r9, 0x6ED9EBA1
    b    have_f
not_f2:
    slti r9, r2, 60
    beqz r9, not_f3
    and  r13, r5, r6
    and  r10, r5, r7
    or   r13, r13, r10
    and  r10, r6, r7
    or   r13, r13, r10
    li   r9, 0x8F1BBCDC
    b    have_f
not_f3:
    xor  r13, r5, r6
    xor  r13, r13, r7
    li   r9, 0xCA62C1D6
have_f:
    add  r13, r13, r9        # f + k
    slli r9, r4, 5
    srli r10, r4, 27
    or   r9, r9, r10         # rol5(a)
    add  r13, r13, r9
    add  r13, r13, r8        # + e
    lw   r9, 0(r12)
    add  r13, r13, r9        # + W[t]
    addi r12, r12, 4
    mv   r8, r7              # e = d
    mv   r7, r6              # d = c
    slli r9, r5, 30
    srli r10, r5, 2
    or   r6, r9, r10         # c = rol30(b)
    mv   r5, r4              # b = a
    mv   r4, r13             # a = temp
    addi r2, r2, 1
    li   r9, 80
    bne  r2, r9, rounds
    # ---- accumulate state
    la   r12, hst
    lw   r9, 0(r12)
    add  r9, r9, r4
    sw   r9, 0(r12)
    lw   r9, 4(r12)
    add  r9, r9, r5
    sw   r9, 4(r12)
    lw   r9, 8(r12)
    add  r9, r9, r6
    sw   r9, 8(r12)
    lw   r9, 12(r12)
    add  r9, r9, r7
    sw   r9, 12(r12)
    lw   r9, 16(r12)
    add  r9, r9, r8
    sw   r9, 16(r12)
    addi r3, r3, -1
    bnez r3, chunk_loop
    # ---- output digest
    la   r12, hst
    li   r2, 2
    lw   r3, 0(r12)
    syscall
    lw   r3, 4(r12)
    syscall
    lw   r3, 8(r12)
    syscall
    lw   r3, 12(r12)
    syscall
    lw   r3, 16(r12)
    syscall
{EXIT0}
.data
hst:
    .word 0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0
wbuf:
    .space 320
msg:
{msg}
"#,
        msg = words(&data),
    );
    assemble(&src).expect("sha workload must assemble")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_matches_known_vector() {
        // SHA-1("abc") = A9993E36 4706816A BA3E2571 7850C26C 9CD0D89D.
        let mut m = b"abc".to_vec();
        m.push(0x80);
        while m.len() % 64 != 56 {
            m.push(0);
        }
        m.extend_from_slice(&24u64.to_be_bytes());
        let chunk: Vec<u32> = m
            .chunks(4)
            .map(|c| u32::from_be_bytes([c[0], c[1], c[2], c[3]]))
            .collect();
        let h = sha1_words(&chunk);
        assert_eq!(
            h,
            [
                0xA999_3E36,
                0x4706_816A,
                0xBA3E_2571,
                0x7850_C26C,
                0x9CD0_D89D
            ]
        );
    }

    #[test]
    fn padded_length_is_multiple_of_16_words() {
        assert_eq!(padded_words(DataSet::Small).len() % 16, 0);
        assert_eq!(padded_words(DataSet::Large).len() % 16, 0);
    }
}
