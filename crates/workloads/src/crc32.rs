//! CRC32 (telecomm): bitwise CRC-32 (IEEE polynomial) over a 6 KB (small) /
//! 24 KB (large) stream.
//!
//! The longest-running workload, as in the paper's Table III.

use crate::gen::{bytes, Xorshift32};
use crate::{DataSet, EXIT0};
use mbu_isa::asm::assemble;
use mbu_isa::Program;

const POLY: u32 = 0xEDB8_8320;

fn len(ds: DataSet) -> usize {
    match ds {
        DataSet::Small => 6144,
        DataSet::Large => 24576,
    }
}

fn input(ds: DataSet) -> Vec<u8> {
    let mut rng = Xorshift32::new(0xC3C1_0001);
    (0..len(ds)).map(|_| rng.next_u8()).collect()
}

/// The assembled CRC32 program.
pub fn program(ds: DataSet) -> Program {
    let src = format!(
        r#"
.text
main:
    la   r1, data
    li   r4, {len}
    li   r5, -1              # crc
    li   r7, 0x{POLY:08x}    # polynomial
byte_loop:
    lbu  r6, 0(r1)
    xor  r5, r5, r6
    li   r8, 8
bit_loop:
    andi r9, r5, 1
    srli r5, r5, 1
    beqz r9, no_xor
    xor  r5, r5, r7
no_xor:
    addi r8, r8, -1
    bnez r8, bit_loop
    addi r1, r1, 1
    addi r4, r4, -1
    bnez r4, byte_loop
    not  r3, r5
    li   r2, 2
    syscall
{EXIT0}
.data
data:
{data}
"#,
        len = len(ds),
        data = bytes(&input(ds)),
    );
    assemble(&src).expect("crc32 workload must assemble")
}

/// Reference CRC-32 of the same input.
pub fn reference(ds: DataSet) -> Vec<u8> {
    let mut crc = u32::MAX;
    for b in input(ds) {
        crc ^= b as u32;
        for _ in 0..8 {
            let lsb = crc & 1;
            crc >>= 1;
            if lsb != 0 {
                crc ^= POLY;
            }
        }
    }
    (!crc).to_le_bytes().to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_matches_known_vector() {
        // Sanity-check the reference CRC implementation against the standard
        // "123456789" vector using a local recomputation.
        let mut crc = u32::MAX;
        for b in b"123456789" {
            crc ^= *b as u32;
            for _ in 0..8 {
                let lsb = crc & 1;
                crc >>= 1;
                if lsb != 0 {
                    crc ^= POLY;
                }
            }
        }
        assert_eq!(!crc, 0xCBF4_3926);
    }

    #[test]
    fn program_assembles_with_data() {
        let p = program(DataSet::Small);
        assert!(p.data.len() >= len(DataSet::Small));
        assert!(p.text.len() > 10);
        assert!(program(DataSet::Large).data.len() >= len(DataSet::Large));
    }
}
