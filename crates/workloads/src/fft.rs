//! FFT (telecomm): 256-point (small) / 1024-point (large) radix-2
//! decimation-in-time fixed-point FFT.
//!
//! Q15 arithmetic with per-stage scaling (each butterfly output is halved)
//! so intermediate values never overflow 32 bits. The twiddle tables are
//! computed host-side (the paper's workload links a math library; ours
//! embeds the tables as data).

use crate::gen::{checksum_words, words, Xorshift32};
use crate::{DataSet, EXIT0};
use mbu_isa::asm::assemble;
use mbu_isa::Program;

fn log2n(ds: DataSet) -> usize {
    match ds {
        DataSet::Small => 8,  // 256 points
        DataSet::Large => 10, // 1024 points
    }
}

fn points(ds: DataSet) -> usize {
    1 << log2n(ds)
}

/// Input: Q15 mix of two sines plus small noise (stored sign-extended in
/// 32-bit words).
fn input_re(ds: DataSet) -> Vec<i32> {
    let n = points(ds);
    let mut rng = Xorshift32::new(0xFF7_0009);
    (0..n)
        .map(|i| {
            let t = i as f64 / n as f64;
            let s = 0.5 * (2.0 * std::f64::consts::PI * 5.0 * t).sin()
                + 0.25 * (2.0 * std::f64::consts::PI * 23.0 * t).sin();
            let noise = (rng.below(401) as i32 - 200) as f64 / 32768.0;
            ((s + noise) * 16384.0).round() as i32
        })
        .collect()
}

/// Twiddle factors `w_k = exp(-2πik/N)` in Q15, for `k` in `0..N/2`.
fn twiddles(n: usize) -> (Vec<i32>, Vec<i32>) {
    let mut re = Vec::with_capacity(n / 2);
    let mut im = Vec::with_capacity(n / 2);
    for k in 0..n / 2 {
        let th = 2.0 * std::f64::consts::PI * k as f64 / n as f64;
        re.push((th.cos() * 32767.0).round() as i32);
        im.push((-th.sin() * 32767.0).round() as i32);
    }
    (re, im)
}

fn bitrev(mut x: usize, bits: usize) -> usize {
    let mut r = 0;
    for _ in 0..bits {
        r = (r << 1) | (x & 1);
        x >>= 1;
    }
    r
}

/// Reference fixed-point FFT, arithmetic identical to the assembly kernel.
fn fft_fixed(re: &mut [i32], im: &mut [i32], bits: usize) {
    let n = 1 << bits;
    let (twr, twi) = twiddles(n);
    for i in 0..n {
        let j = bitrev(i, bits);
        if i < j {
            re.swap(i, j);
            im.swap(i, j);
        }
    }
    let mut m = 2;
    while m <= n {
        let half = m / 2;
        let stride = n / m;
        let mut k = 0;
        while k < n {
            for j in 0..half {
                let w_re = twr[j * stride];
                let w_im = twi[j * stride];
                let br = re[k + j + half];
                let bi = im[k + j + half];
                let tr = (w_re.wrapping_mul(br).wrapping_sub(w_im.wrapping_mul(bi))) >> 15;
                let ti = (w_re.wrapping_mul(bi).wrapping_add(w_im.wrapping_mul(br))) >> 15;
                let ar = re[k + j];
                let ai = im[k + j];
                re[k + j + half] = ar.wrapping_sub(tr) >> 1;
                im[k + j + half] = ai.wrapping_sub(ti) >> 1;
                re[k + j] = ar.wrapping_add(tr) >> 1;
                im[k + j] = ai.wrapping_add(ti) >> 1;
            }
            k += m;
        }
        m *= 2;
    }
}

/// Reference output: checksums of both halves plus the first 8 real bins.
pub fn reference(ds: DataSet) -> Vec<u8> {
    let mut re = input_re(ds);
    let mut im = vec![0i32; points(ds)];
    fft_fixed(&mut re, &mut im, log2n(ds));
    let mut out = Vec::new();
    out.extend_from_slice(&checksum_words(re.iter().map(|v| *v as u32)).to_le_bytes());
    out.extend_from_slice(&checksum_words(im.iter().map(|v| *v as u32)).to_le_bytes());
    for v in re.iter().take(8) {
        out.extend_from_slice(&(*v as u32).to_le_bytes());
    }
    out
}

/// The assembled FFT program.
pub fn program(ds: DataSet) -> Program {
    let re: Vec<u32> = input_re(ds).iter().map(|v| *v as u32).collect();
    let (twr, twi) = twiddles(points(ds));
    let twr: Vec<u32> = twr.iter().map(|v| *v as u32).collect();
    let twi: Vec<u32> = twi.iter().map(|v| *v as u32).collect();
    let src = format!(
        r#"
.text
main:
    # ---- bit-reversal permutation
    li   r4, 0               # i
brv_loop:
    mv   r5, r4
    li   r6, 0               # rev
    li   r7, {log2n}
brv_bits:
    slli r6, r6, 1
    andi r8, r5, 1
    or   r6, r6, r8
    srli r5, r5, 1
    addi r7, r7, -1
    bnez r7, brv_bits
    bge  r4, r6, brv_next    # swap only when i < rev
    la   r1, re
    slli r8, r4, 2
    add  r8, r1, r8
    slli r9, r6, 2
    add  r9, r1, r9
    lw   r10, 0(r8)
    lw   r11, 0(r9)
    sw   r11, 0(r8)
    sw   r10, 0(r9)
    la   r1, im
    slli r8, r4, 2
    add  r8, r1, r8
    slli r9, r6, 2
    add  r9, r1, r9
    lw   r10, 0(r8)
    lw   r11, 0(r9)
    sw   r11, 0(r8)
    sw   r10, 0(r9)
brv_next:
    addi r4, r4, 1
    li   r8, {n}
    blt  r4, r8, brv_loop
    # ---- stages: m = 2, 4, ..., N
    li   r3, 2               # m
stage_loop:
    srli r4, r3, 1           # half
    li   r5, 0               # k
k_loop:
    li   r6, 0               # j
j_loop:
    # stride = N/m; tw index = j * stride
    li   r8, {n}
    divu r8, r8, r3
    mul  r8, r8, r6
    slli r8, r8, 2
    la   r9, twr
    add  r9, r9, r8
    lw   r10, 0(r9)          # w_re
    la   r9, twi
    add  r9, r9, r8
    lw   r11, 0(r9)          # w_im
    # load b = (re,im)[k+j+half]
    add  r7, r5, r6
    add  r7, r7, r4          # k+j+half
    slli r7, r7, 2
    la   r9, re
    add  r9, r9, r7
    lw   r12, 0(r9)          # br
    la   r9, im
    add  r9, r9, r7
    lw   r13, 0(r9)          # bi
    # tr = (w_re*br - w_im*bi) >> 15 ; ti = (w_re*bi + w_im*br) >> 15
    mul  r8, r10, r12
    mul  r9, r11, r13
    sub  r8, r8, r9
    srai r8, r8, 15          # tr
    mul  r9, r10, r13
    mul  r10, r11, r12
    add  r9, r9, r10
    srai r9, r9, 15          # ti
    # load a = (re,im)[k+j]
    add  r7, r5, r6
    slli r7, r7, 2
    la   r10, re
    add  r10, r10, r7
    lw   r11, 0(r10)         # ar
    # re[k+j] = (ar+tr)>>1 ; re[k+j+half] = (ar-tr)>>1
    add  r12, r11, r8
    srai r12, r12, 1
    sw   r12, 0(r10)
    sub  r12, r11, r8
    srai r12, r12, 1
    slli r13, r4, 2
    add  r10, r10, r13
    sw   r12, 0(r10)
    la   r10, im
    add  r10, r10, r7
    lw   r11, 0(r10)         # ai
    add  r12, r11, r9
    srai r12, r12, 1
    sw   r12, 0(r10)
    sub  r12, r11, r9
    srai r12, r12, 1
    add  r10, r10, r13
    sw   r12, 0(r10)
    addi r6, r6, 1
    blt  r6, r4, j_loop
    add  r5, r5, r3
    li   r8, {n}
    blt  r5, r8, k_loop
    slli r3, r3, 1
    li   r8, {n}
    ble  r3, r8, stage_loop
    # ---- checksums of re and im
    la   r1, re
    jal  cksum
    mv   r12, r3
    la   r1, im
    jal  cksum
    mv   r13, r3
    li   r2, 2
    mv   r3, r12
    syscall
    mv   r3, r13
    syscall
    # first 8 real bins
    la   r1, re
    li   r4, 8
bins:
    lw   r3, 0(r1)
    syscall
    addi r1, r1, 4
    addi r4, r4, -1
    bnez r4, bins
{EXIT0}
cksum:
    # r1 = base; returns checksum in r3
    li   r3, 0
    li   r5, {n}
ck_loop:
    lw   r6, 0(r1)
    li   r7, 31
    mul  r3, r3, r7
    add  r3, r3, r6
    addi r1, r1, 4
    addi r5, r5, -1
    bnez r5, ck_loop
    jr   ra
.data
re:
{re_data}
im:
    .space {im_bytes}
twr:
{twr_data}
twi:
{twi_data}
"#,
        n = points(ds),
        log2n = log2n(ds),
        im_bytes = points(ds) * 4,
        re_data = words(&re),
        twr_data = words(&twr),
        twi_data = words(&twi),
    );
    assemble(&src).expect("fft workload must assemble")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fft_finds_the_input_tones() {
        let ds = DataSet::Small;
        let mut re = input_re(ds);
        let mut im = vec![0i32; points(ds)];
        fft_fixed(&mut re, &mut im, log2n(ds));
        // Magnitude² at the 5-cycle bin must dominate a quiet bin.
        let mag2 = |k: usize| {
            let r = re[k] as i64;
            let i = im[k] as i64;
            r * r + i * i
        };
        assert!(
            mag2(5) > 16 * mag2(50),
            "bin 5 = {}, bin 50 = {}",
            mag2(5),
            mag2(50)
        );
        assert!(mag2(23) > 4 * mag2(50));
    }

    #[test]
    fn bitrev_is_an_involution() {
        for bits in [8, 10] {
            for i in 0..(1usize << bits) {
                assert_eq!(bitrev(bitrev(i, bits), bits), i);
            }
        }
    }

    #[test]
    fn values_stay_bounded() {
        let ds = DataSet::Large;
        let mut re = input_re(ds);
        let mut im = vec![0i32; points(ds)];
        fft_fixed(&mut re, &mut im, log2n(ds));
        for v in re.iter().chain(im.iter()) {
            assert!(v.abs() <= 40000, "per-stage scaling keeps Q15 range: {v}");
        }
    }
}
