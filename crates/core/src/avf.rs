//! AVF aggregation: class breakdowns, execution-time-weighted means (Eq. 2)
//! and per-component vulnerability-increase views (Tables IV and V).

use crate::classify::{ClassCounts, FaultEffect};
use std::fmt;

/// Per-class fractions of a campaign (sums to 1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClassBreakdown {
    /// Masked fraction.
    pub masked: f64,
    /// SDC fraction.
    pub sdc: f64,
    /// Crash fraction.
    pub crash: f64,
    /// Timeout fraction.
    pub timeout: f64,
    /// Assert fraction.
    pub assert_: f64,
}

impl ClassBreakdown {
    /// Builds a breakdown from counts.
    pub fn from_counts(c: &ClassCounts) -> Self {
        Self {
            masked: c.fraction(FaultEffect::Masked),
            sdc: c.fraction(FaultEffect::Sdc),
            crash: c.fraction(FaultEffect::Crash),
            timeout: c.fraction(FaultEffect::Timeout),
            assert_: c.fraction(FaultEffect::Assert),
        }
    }

    /// The AVF (`1 − masked`).
    pub fn avf(&self) -> f64 {
        1.0 - self.masked
    }

    /// Fraction for one class.
    pub fn fraction(&self, e: FaultEffect) -> f64 {
        match e {
            FaultEffect::Masked => self.masked,
            FaultEffect::Sdc => self.sdc,
            FaultEffect::Crash => self.crash,
            FaultEffect::Timeout => self.timeout,
            FaultEffect::Assert => self.assert_,
        }
    }
}

impl fmt::Display for ClassBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "masked {:.1}% | sdc {:.1}% | crash {:.1}% | timeout {:.1}% | assert {:.1}%",
            self.masked * 100.0,
            self.sdc * 100.0,
            self.crash * 100.0,
            self.timeout * 100.0,
            self.assert_ * 100.0
        )
    }
}

/// Execution-time-weighted average AVF over benchmarks (paper Eq. 2):
///
/// ```text
/// W_AVF(c) = Σₖ AVFₖ(c)·tₖ / Σₖ tₖ
/// ```
///
/// # Panics
///
/// Panics if `samples` is empty or all weights are zero.
pub fn weighted_avf(samples: &[(f64, u64)]) -> f64 {
    assert!(
        !samples.is_empty(),
        "weighted AVF needs at least one sample"
    );
    let total: f64 = samples.iter().map(|(_, t)| *t as f64).sum();
    assert!(total > 0.0, "total execution time must be positive");
    samples.iter().map(|(avf, t)| avf * *t as f64).sum::<f64>() / total
}

/// Weighted AVFs of one component for single-, double- and triple-bit
/// faults (one row of the paper's Table V).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ComponentAvf {
    /// Weighted AVF under single-bit faults.
    pub single: f64,
    /// Weighted AVF under double-bit faults.
    pub double: f64,
    /// Weighted AVF under triple-bit faults.
    pub triple: f64,
}

impl ComponentAvf {
    /// Creates the triple from the three cardinality AVFs.
    ///
    /// # Panics
    ///
    /// Panics if any AVF is outside `[0, 1]`.
    pub fn new(single: f64, double: f64, triple: f64) -> Self {
        for v in [single, double, triple] {
            assert!((0.0..=1.0).contains(&v), "AVF must be in [0, 1], got {v}");
        }
        Self {
            single,
            double,
            triple,
        }
    }

    /// AVF for a given cardinality (1, 2 or 3).
    ///
    /// # Panics
    ///
    /// Panics for cardinalities outside 1–3.
    pub fn for_cardinality(&self, faults: usize) -> f64 {
        match faults {
            1 => self.single,
            2 => self.double,
            3 => self.triple,
            other => panic!("cardinality {other} not modeled (paper uses 1-3)"),
        }
    }

    /// Multiplicative vulnerability increase of double-bit over single-bit
    /// faults (Table IV's "2-bit" column, e.g. 2.4x for the L1D).
    pub fn increase_2bit(&self) -> f64 {
        self.double / self.single
    }

    /// Multiplicative vulnerability increase of triple-bit over single-bit
    /// faults (Table IV's "3-bit" column, e.g. 3.2x for the L1I).
    pub fn increase_3bit(&self) -> f64 {
        self.triple / self.single
    }

    /// Percentage increase from single- to double-bit (Table V).
    pub fn pct_increase_1_to_2(&self) -> f64 {
        (self.double / self.single - 1.0) * 100.0
    }

    /// Percentage increase from double- to triple-bit (Table V).
    pub fn pct_increase_2_to_3(&self) -> f64 {
        (self.triple / self.double - 1.0) * 100.0
    }
}

impl fmt::Display for ComponentAvf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "1-bit {:.2}% / 2-bit {:.2}% / 3-bit {:.2}%",
            self.single * 100.0,
            self.double * 100.0,
            self.triple * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_reflects_counts() {
        let c = ClassCounts {
            masked: 50,
            sdc: 25,
            crash: 15,
            timeout: 5,
            assert_: 5,
        };
        let b = ClassBreakdown::from_counts(&c);
        assert!((b.masked - 0.5).abs() < 1e-12);
        assert!((b.avf() - 0.5).abs() < 1e-12);
        let sum = b.masked + b.sdc + b.crash + b.timeout + b.assert_;
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn weighted_avf_is_a_convex_combination() {
        // Long benchmark dominates.
        let w = weighted_avf(&[(0.1, 1_000_000), (0.9, 1_000)]);
        assert!(w > 0.1 && w < 0.2);
        // Equal weights -> arithmetic mean.
        let w = weighted_avf(&[(0.2, 10), (0.4, 10)]);
        assert!((w - 0.3).abs() < 1e-12);
        // Bounds.
        let w = weighted_avf(&[(0.25, 3), (0.5, 7), (0.75, 11)]);
        assert!((0.25..=0.75).contains(&w));
    }

    #[test]
    fn increases_match_paper_example() {
        // Paper Table V, L1D: 20.32 / 29.70 / 36.28 -> +46.16 % then +22.15 %.
        let a = ComponentAvf::new(0.2032, 0.2970, 0.3628);
        assert!((a.pct_increase_1_to_2() - 46.16).abs() < 0.05);
        assert!((a.pct_increase_2_to_3() - 22.15).abs() < 0.05);
        assert!((a.increase_3bit() - 1.785).abs() < 0.01);
    }

    #[test]
    fn cardinality_lookup() {
        let a = ComponentAvf::new(0.1, 0.2, 0.3);
        assert_eq!(a.for_cardinality(1), 0.1);
        assert_eq!(a.for_cardinality(3), 0.3);
    }

    #[test]
    #[should_panic(expected = "not modeled")]
    fn cardinality_4_panics() {
        let _ = ComponentAvf::new(0.1, 0.2, 0.3).for_cardinality(4);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn empty_weighted_avf_panics() {
        let _ = weighted_avf(&[]);
    }
}
