//! Statistical fault sampling per Leveugle et al. (paper §III.A).
//!
//! Sample size for a target error margin `e`, confidence `z` and initial
//! failure-probability estimate `p` over a population `N`:
//!
//! ```text
//! n = N / (1 + e²·(N − 1) / (z²·p·(1 − p)))
//! ```
//!
//! The paper uses `p = 0.5` (the conservative maximum), 99 % confidence
//! (`z = 2.5758`) and 2 000 samples per campaign, which this module
//! reproduces: the achieved margin is 2.88 %. After a campaign, the margin
//! can be re-computed with the *measured* AVF as `p`, which tightens it to
//! 2.4–2.88 % exactly as §III.A describes — the margin-driven adaptive
//! sampling in [`crate::campaign`] uses exactly this readjustment to stop
//! early once the target margin is met.
//!
//! Out-of-range inputs are reported as typed [`StatsError`]s rather than
//! panics: campaign code feeds these functions configuration values that
//! may come straight from the environment.

use std::fmt;

/// z-value for 99 % confidence.
pub const Z_99: f64 = 2.5758;
/// z-value for 95 % confidence.
pub const Z_95: f64 = 1.9600;

/// Why a sampling computation could not be performed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StatsError {
    /// The fault-space population was zero.
    ZeroPopulation,
    /// The target error margin was outside `(0, 1)`.
    MarginOutOfRange(f64),
    /// The probability estimate was outside `(0, 1)`.
    ProbabilityOutOfRange(f64),
    /// The confidence z-value was not a positive finite number.
    ConfidenceOutOfRange(f64),
    /// The sample count was zero or exceeded the population.
    SamplesOutOfRange {
        /// The offending sample count.
        samples: u64,
        /// The population it was drawn from.
        population: u64,
    },
}

impl fmt::Display for StatsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StatsError::ZeroPopulation => f.write_str("population must be nonzero"),
            StatsError::MarginOutOfRange(m) => write!(f, "margin {m} must be in (0, 1)"),
            StatsError::ProbabilityOutOfRange(p) => write!(f, "p {p} must be in (0, 1)"),
            StatsError::ConfidenceOutOfRange(z) => {
                write!(f, "z {z} must be a positive finite number")
            }
            StatsError::SamplesOutOfRange {
                samples,
                population,
            } => write!(f, "samples {samples} must be in 1..={population}"),
        }
    }
}

impl std::error::Error for StatsError {}

fn check_common(population: u64, z: f64, p: f64) -> Result<(), StatsError> {
    if population == 0 {
        return Err(StatsError::ZeroPopulation);
    }
    if !(z.is_finite() && z > 0.0) {
        return Err(StatsError::ConfidenceOutOfRange(z));
    }
    if !(p > 0.0 && p < 1.0) {
        return Err(StatsError::ProbabilityOutOfRange(p));
    }
    Ok(())
}

/// Required sample size for the given population, margin, confidence and
/// initial probability estimate.
///
/// # Errors
///
/// Returns a [`StatsError`] if `population`, `margin`, `z` or `p` are out
/// of range; never panics.
pub fn sample_size(population: u64, margin: f64, z: f64, p: f64) -> Result<u64, StatsError> {
    check_common(population, z, p)?;
    if !(margin > 0.0 && margin < 1.0) {
        return Err(StatsError::MarginOutOfRange(margin));
    }
    let n = population as f64;
    let denom = 1.0 + margin * margin * (n - 1.0) / (z * z * p * (1.0 - p));
    Ok((n / denom).ceil() as u64)
}

/// The error margin achieved by `samples` draws from `population` at
/// confidence `z` with probability estimate `p` (inverse of
/// [`sample_size`]).
///
/// # Errors
///
/// Returns a [`StatsError`] if `samples` is zero or exceeds the
/// population, or if `z` / `p` are out of range; never panics.
pub fn error_margin(population: u64, samples: u64, z: f64, p: f64) -> Result<f64, StatsError> {
    check_common(population, z, p)?;
    if samples == 0 || samples > population {
        return Err(StatsError::SamplesOutOfRange {
            samples,
            population,
        });
    }
    let n = population as f64;
    let s = samples as f64;
    if samples == population {
        return Ok(0.0);
    }
    Ok(z * (p * (1.0 - p) * (n - s) / (s * (n - 1.0))).sqrt())
}

/// The effective fault-space population of a structure: every bit at every
/// cycle of the fault-free run is a distinct candidate fault site.
pub fn fault_population(bits: u64, cycles: u64) -> u64 {
    bits.saturating_mul(cycles)
}

/// The error margin over the *whole* population achieved by a stratified
/// campaign that covers the dead stratum exactly (weight
/// `population − live_weight`, provably `Masked`) and samples only the
/// live stratum with `draws` weight-proportional draws: the live-stratum
/// margin, scaled by the live mass fraction `λ = live_weight /
/// population`. With no live mass the whole population is provably
/// classified and the margin is 0.
///
/// # Errors
///
/// Returns a [`StatsError`] if `live_weight` exceeds `population`, if
/// `draws` is zero while live mass exists, or if `z` / `p` are out of
/// range; never panics.
pub fn stratified_margin(
    population: u64,
    live_weight: u64,
    draws: u64,
    z: f64,
    p: f64,
) -> Result<f64, StatsError> {
    if live_weight > population {
        return Err(StatsError::SamplesOutOfRange {
            samples: live_weight,
            population,
        });
    }
    if live_weight == 0 {
        return Ok(0.0);
    }
    let live_margin = error_margin(live_weight, draws.min(live_weight), z, p)?;
    Ok(live_margin * live_weight as f64 / population as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_campaign_size_is_2000() {
        // Large population, e = 2.88 %, 99 % confidence, p = 0.5 -> ~2000.
        let n = sample_size(u64::MAX / 2, 0.0288, Z_99, 0.5).unwrap();
        assert!((1995..=2005).contains(&n), "got {n}");
    }

    #[test]
    fn margin_of_2000_samples_is_2_88_percent() {
        let e = error_margin(u64::MAX / 2, 2000, Z_99, 0.5).unwrap();
        assert!((e - 0.0288).abs() < 0.0002, "got {e}");
    }

    #[test]
    fn readjusted_p_tightens_margin() {
        // §III.A: with a measured AVF of ~0.2 the margin drops below 2.88 %.
        let wide = error_margin(u64::MAX / 2, 2000, Z_99, 0.5).unwrap();
        let tight = error_margin(u64::MAX / 2, 2000, Z_99, 0.2).unwrap();
        assert!(tight < wide);
        assert!(tight > 0.02 && tight < 0.0288);
    }

    #[test]
    fn sampling_whole_population_has_zero_margin() {
        assert_eq!(error_margin(1000, 1000, Z_99, 0.5), Ok(0.0));
    }

    #[test]
    fn small_population_needs_fewer_samples() {
        let small = sample_size(5_000, 0.0288, Z_99, 0.5).unwrap();
        let large = sample_size(5_000_000, 0.0288, Z_99, 0.5).unwrap();
        assert!(small < large);
        assert!(small < 5_000);
    }

    #[test]
    fn fault_population_saturates() {
        assert_eq!(fault_population(u64::MAX, 2), u64::MAX);
        assert_eq!(fault_population(262_144, 1000), 262_144_000);
    }

    #[test]
    fn stratified_margin_scales_by_live_mass() {
        // Sampling only the live stratum shrinks the whole-population
        // margin by λ = live/population compared to uniform sampling.
        let uniform = error_margin(1_000_000, 2000, Z_99, 0.5).unwrap();
        let strat = stratified_margin(1_000_000, 100_000, 2000, Z_99, 0.5).unwrap();
        assert!((strat - 0.1 * uniform).abs() < 1e-4, "λ = 0.1: {strat}");
        assert!(strat < uniform);
    }

    #[test]
    fn stratified_margin_edges() {
        // No live mass: everything is provably classified.
        assert_eq!(stratified_margin(1000, 0, 0, Z_99, 0.5), Ok(0.0));
        // Draws covering the whole live stratum: exhaustive, margin 0.
        assert_eq!(stratified_margin(1000, 100, 100, Z_99, 0.5), Ok(0.0));
        // Draws past the stratum clamp to it (replacement draws add no
        // information beyond full coverage).
        assert_eq!(stratified_margin(1000, 100, 5000, Z_99, 0.5), Ok(0.0));
        // Live mass cannot exceed the population.
        assert_eq!(
            stratified_margin(100, 200, 10, Z_99, 0.5),
            Err(StatsError::SamplesOutOfRange {
                samples: 200,
                population: 100
            })
        );
        // Zero draws with live mass present is an error, not a claim.
        assert!(stratified_margin(1000, 100, 0, Z_99, 0.5).is_err());
    }

    #[test]
    fn out_of_range_inputs_are_typed_errors_not_panics() {
        assert_eq!(
            sample_size(100, 0.0, Z_99, 0.5),
            Err(StatsError::MarginOutOfRange(0.0))
        );
        assert_eq!(
            sample_size(100, 1.5, Z_99, 0.5),
            Err(StatsError::MarginOutOfRange(1.5))
        );
        assert_eq!(
            sample_size(0, 0.02, Z_99, 0.5),
            Err(StatsError::ZeroPopulation)
        );
        assert_eq!(
            sample_size(100, 0.02, Z_99, 0.0),
            Err(StatsError::ProbabilityOutOfRange(0.0))
        );
        assert_eq!(
            sample_size(100, 0.02, -1.0, 0.5),
            Err(StatsError::ConfidenceOutOfRange(-1.0))
        );
        assert_eq!(
            error_margin(100, 0, Z_99, 0.5),
            Err(StatsError::SamplesOutOfRange {
                samples: 0,
                population: 100
            })
        );
        assert_eq!(
            error_margin(100, 101, Z_99, 0.5),
            Err(StatsError::SamplesOutOfRange {
                samples: 101,
                population: 100
            })
        );
        assert_eq!(
            error_margin(100, 10, Z_99, 1.0),
            Err(StatsError::ProbabilityOutOfRange(1.0))
        );
        // NaN inputs are rejected, not propagated.
        assert!(error_margin(100, 10, f64::NAN, 0.5).is_err());
        assert!(sample_size(100, f64::NAN, Z_99, 0.5).is_err());
    }
}
