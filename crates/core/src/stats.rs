//! Statistical fault sampling per Leveugle et al. (paper §III.A).
//!
//! Sample size for a target error margin `e`, confidence `z` and initial
//! failure-probability estimate `p` over a population `N`:
//!
//! ```text
//! n = N / (1 + e²·(N − 1) / (z²·p·(1 − p)))
//! ```
//!
//! The paper uses `p = 0.5` (the conservative maximum), 99 % confidence
//! (`z = 2.5758`) and 2 000 samples per campaign, which this module
//! reproduces: the achieved margin is 2.88 %. After a campaign, the margin
//! can be re-computed with the *measured* AVF as `p`, which tightens it to
//! 2.4–2.88 % exactly as §III.A describes.

/// z-value for 99 % confidence.
pub const Z_99: f64 = 2.5758;
/// z-value for 95 % confidence.
pub const Z_95: f64 = 1.9600;

/// Required sample size for the given population, margin, confidence and
/// initial probability estimate.
///
/// # Panics
///
/// Panics if `margin`, `p` or `population` are out of range.
pub fn sample_size(population: u64, margin: f64, z: f64, p: f64) -> u64 {
    assert!(population > 0, "population must be nonzero");
    assert!(margin > 0.0 && margin < 1.0, "margin must be in (0, 1)");
    assert!(p > 0.0 && p < 1.0, "p must be in (0, 1)");
    let n = population as f64;
    let denom = 1.0 + margin * margin * (n - 1.0) / (z * z * p * (1.0 - p));
    (n / denom).ceil() as u64
}

/// The error margin achieved by `samples` draws from `population` at
/// confidence `z` with probability estimate `p` (inverse of
/// [`sample_size`]).
///
/// # Panics
///
/// Panics if `samples` is zero or exceeds the population.
pub fn error_margin(population: u64, samples: u64, z: f64, p: f64) -> f64 {
    assert!(
        samples > 0 && samples <= population,
        "samples must be in 1..=population"
    );
    let n = population as f64;
    let s = samples as f64;
    if samples == population {
        return 0.0;
    }
    z * (p * (1.0 - p) * (n - s) / (s * (n - 1.0))).sqrt()
}

/// The effective fault-space population of a structure: every bit at every
/// cycle of the fault-free run is a distinct candidate fault site.
pub fn fault_population(bits: u64, cycles: u64) -> u64 {
    bits.saturating_mul(cycles)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_campaign_size_is_2000() {
        // Large population, e = 2.88 %, 99 % confidence, p = 0.5 -> ~2000.
        let n = sample_size(u64::MAX / 2, 0.0288, Z_99, 0.5);
        assert!((1995..=2005).contains(&n), "got {n}");
    }

    #[test]
    fn margin_of_2000_samples_is_2_88_percent() {
        let e = error_margin(u64::MAX / 2, 2000, Z_99, 0.5);
        assert!((e - 0.0288).abs() < 0.0002, "got {e}");
    }

    #[test]
    fn readjusted_p_tightens_margin() {
        // §III.A: with a measured AVF of ~0.2 the margin drops below 2.88 %.
        let wide = error_margin(u64::MAX / 2, 2000, Z_99, 0.5);
        let tight = error_margin(u64::MAX / 2, 2000, Z_99, 0.2);
        assert!(tight < wide);
        assert!(tight > 0.02 && tight < 0.0288);
    }

    #[test]
    fn sampling_whole_population_has_zero_margin() {
        assert_eq!(error_margin(1000, 1000, Z_99, 0.5), 0.0);
    }

    #[test]
    fn small_population_needs_fewer_samples() {
        let small = sample_size(5_000, 0.0288, Z_99, 0.5);
        let large = sample_size(5_000_000, 0.0288, Z_99, 0.5);
        assert!(small < large);
        assert!(small < 5_000);
    }

    #[test]
    fn fault_population_saturates() {
        assert_eq!(fault_population(u64::MAX, 2), u64::MAX);
        assert_eq!(fault_population(262_144, 1000), 262_144_000);
    }

    #[test]
    #[should_panic(expected = "margin")]
    fn zero_margin_rejected() {
        let _ = sample_size(100, 0.0, Z_99, 0.5);
    }
}
