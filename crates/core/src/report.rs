//! ASCII-table and CSV rendering for the experiment harness.

use std::fmt;

/// A simple ASCII table (monospace, pipe-separated) used by the `repro`
/// binary to print paper-style tables.
///
/// # Example
///
/// ```
/// use mbu_gefin::report::Table;
/// let mut t = Table::new("Demo", &["name", "value"]);
/// t.row(vec!["x".into(), "1".into()]);
/// let s = t.to_string();
/// assert!(s.contains("| x"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table with a title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Self {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width does not match the header width.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as CSV (header + rows), for plotting.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.headers.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }

    /// Serializes the table as a JSON object
    /// (`{"title": …, "headers": […], "rows": [[…], …]}`), for the HTTP
    /// results API.
    pub fn to_json(&self) -> crate::json::Json {
        use crate::json::Json;
        let headers = self.headers.iter().map(Json::str).collect();
        let rows = self
            .rows
            .iter()
            .map(|row| Json::Arr(row.iter().map(Json::str).collect()))
            .collect();
        Json::Obj(vec![
            ("title".into(), Json::str(&self.title)),
            ("headers".into(), Json::Arr(headers)),
            ("rows".into(), Json::Arr(rows)),
        ])
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        writeln!(f, "== {} ==", self.title)?;
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            write!(f, "|")?;
            for (i, c) in cells.iter().enumerate() {
                write!(f, " {:<width$} |", c, width = widths[i])?;
            }
            writeln!(f)
        };
        line(f, &self.headers)?;
        let total: usize = widths.iter().map(|w| w + 3).sum::<usize>() + 1;
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            line(f, row)?;
        }
        Ok(())
    }
}

/// Formats a fraction as a percentage with two decimals.
pub fn pct(v: f64) -> String {
    format!("{:.2}%", v * 100.0)
}

/// Formats an optional fraction as a percentage, `-` when absent — e.g. the
/// achieved error margin of a campaign loaded from a pre-integrity
/// checkpoint, which carries none.
pub fn pct_opt(v: Option<f64>) -> String {
    match v {
        Some(v) => pct(v),
        None => "-".into(),
    }
}

/// Formats a multiplicative factor with one decimal (`2.4x`).
pub fn factor(v: f64) -> String {
    format!("{v:.1}x")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("T", &["a", "long_header"]);
        t.row(vec!["xxxxxx".into(), "1".into()]);
        let s = t.to_string();
        assert!(s.contains("== T =="));
        assert!(s.contains("| xxxxxx | 1"));
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    fn csv_roundtrip_shape() {
        let mut t = Table::new("T", &["x", "y"]);
        t.row(vec!["1".into(), "2".into()]);
        t.row(vec!["3".into(), "4".into()]);
        assert_eq!(t.to_csv(), "x,y\n1,2\n3,4\n");
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn mismatched_row_panics() {
        let mut t = Table::new("T", &["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(pct(0.2032), "20.32%");
        assert_eq!(factor(2.44), "2.4x");
    }
}

/// One (component, workload) pair of the analytical-vs-injected AVF
/// cross-validation (ACE-style liveness analysis vs statistical injection).
#[derive(Debug, Clone, PartialEq)]
pub struct AvfCrossValidation {
    /// Component slug (e.g. `l1d`).
    pub component: String,
    /// Workload name.
    pub workload: String,
    /// AVF derived analytically from fault-free liveness
    /// (`live-bit-cycles / (bits × cycles)`).
    pub analytical: f64,
    /// AVF measured by injection (`1 − masked fraction`).
    pub injected: f64,
}

impl AvfCrossValidation {
    /// Absolute disagreement between the two estimates.
    pub fn abs_error(&self) -> f64 {
        (self.analytical - self.injected).abs()
    }
}

/// Renders the analytical-vs-injected cross-validation as a table, one row
/// per (component, workload), with per-row absolute error and a trailing
/// mean-absolute-error summary row.
pub fn cross_validation_table(rows: &[AvfCrossValidation]) -> Table {
    let mut t = Table::new(
        "Analytical (ACE) vs injected AVF",
        &["component", "workload", "analytical", "injected", "|error|"],
    );
    for r in rows {
        t.row(vec![
            r.component.clone(),
            r.workload.clone(),
            pct(r.analytical),
            pct(r.injected),
            pct(r.abs_error()),
        ]);
    }
    if !rows.is_empty() {
        let mae = rows.iter().map(AvfCrossValidation::abs_error).sum::<f64>() / rows.len() as f64;
        t.row(vec![
            "—".into(),
            "mean".into(),
            "".into(),
            "".into(),
            pct(mae),
        ]);
    }
    t
}

#[cfg(test)]
mod xval_tests {
    use super::*;

    #[test]
    fn cross_validation_table_reports_errors_and_mean() {
        let rows = vec![
            AvfCrossValidation {
                component: "l1d".into(),
                workload: "sha".into(),
                analytical: 0.10,
                injected: 0.12,
            },
            AvfCrossValidation {
                component: "l2".into(),
                workload: "qsort".into(),
                analytical: 0.02,
                injected: 0.02,
            },
        ];
        let t = cross_validation_table(&rows);
        assert_eq!(t.len(), 3, "two data rows plus the mean row");
        let s = t.to_string();
        assert!(s.contains("2.00%"), "per-row |error| rendered: {s}");
        assert!(s.contains("1.00%"), "mean absolute error rendered: {s}");
        assert!(cross_validation_table(&[]).is_empty());
    }
}

/// One bar of a stacked horizontal bar chart.
#[derive(Debug, Clone)]
pub struct StackedBar {
    /// Row label (e.g. a benchmark name).
    pub label: String,
    /// `(glyph, fraction)` segments; fractions should sum to ≤ 1.
    pub segments: Vec<(char, f64)>,
}

/// Renders stacked horizontal bars (the ASCII analogue of the paper's
/// Fig. 1–6 stacked class charts).
///
/// # Example
///
/// ```
/// use mbu_gefin::report::{stacked_chart, StackedBar};
/// let bars = vec![StackedBar {
///     label: "sha/1".into(),
///     segments: vec![('.', 0.8), ('S', 0.2)],
/// }];
/// let s = stacked_chart("demo", &bars, 20);
/// assert!(s.contains("SSSS"));
/// ```
pub fn stacked_chart(title: &str, bars: &[StackedBar], width: usize) -> String {
    let label_w = bars.iter().map(|b| b.label.len()).max().unwrap_or(0);
    let mut out = format!("== {title} ==\n");
    for bar in bars {
        let mut cells = String::with_capacity(width);
        let mut used = 0usize;
        for (glyph, frac) in &bar.segments {
            let n = ((frac * width as f64).round() as usize).min(width - used);
            cells.extend(std::iter::repeat_n(*glyph, n));
            used += n;
        }
        cells.extend(std::iter::repeat_n(' ', width - used));
        out.push_str(&format!("{:<label_w$} |{}|\n", bar.label, cells));
    }
    out
}

#[cfg(test)]
mod chart_tests {
    use super::*;

    #[test]
    fn bars_fill_proportionally() {
        let bars = vec![
            StackedBar {
                label: "a".into(),
                segments: vec![('.', 0.5), ('S', 0.5)],
            },
            StackedBar {
                label: "bb".into(),
                segments: vec![('C', 1.0)],
            },
        ];
        let s = stacked_chart("t", &bars, 10);
        assert!(s.contains("|.....SSSSS|"));
        assert!(s.contains("|CCCCCCCCCC|"));
        // Labels aligned to the widest.
        assert!(s.contains("a  |"));
    }

    #[test]
    fn overfull_segments_are_clamped() {
        let bars = vec![StackedBar {
            label: "x".into(),
            segments: vec![('A', 0.9), ('B', 0.9)],
        }];
        let s = stacked_chart("t", &bars, 10);
        let line = s.lines().nth(1).unwrap();
        assert_eq!(line.matches(['A', 'B']).count(), 10, "clamped to width");
    }

    #[test]
    fn empty_chart_renders_title_only() {
        let s = stacked_chart("empty", &[], 10);
        assert_eq!(s, "== empty ==\n");
    }
}
