//! Exhaustive and stratified campaigns over fault-equivalence classes.
//!
//! The sampled campaign ([`crate::campaign::Campaign`]) draws (bit, cycle)
//! fault sites uniformly and reports a statistical margin. This module
//! replaces the draw with the `mbu-equiv` partition of the same fault
//! space:
//!
//! * **Exhaustive mode** ([`ExhaustivePlan::run`]) simulates *one
//!   representative per live equivalence class*, credits each outcome with
//!   the class weight, and credits every provably-dead class as `Masked`
//!   without simulation. The resulting [`CampaignResult`] covers 100% of
//!   the `bits × cycles` population — `achieved_margin` is exactly 0 — and
//!   flows through the same FIT/figure pipeline as any sampled campaign.
//!   Tractable for the small structures (ITLB/DTLB, register file); the
//!   live-class census is capped by [`ExhaustiveSpec::max_classes`].
//! * **Stratified mode** ([`ExhaustivePlan::run_stratified`]) keeps the
//!   dead stratum exact but *samples* the live stratum proportionally to
//!   class weight (live-interval mass), memoizing per-class outcomes: the
//!   achieved margin shrinks by the live-mass fraction λ (see
//!   [`crate::stats::stratified_margin`]), so big arrays reach the paper's
//!   margin with far fewer simulations than uniform 2 000-run sampling.
//!
//! Soundness of the weight-multiply rests on class-member invariance: the
//! pre-injection prefix is golden either way and the flipped bit is not
//! consulted before the class-terminating event, so *any* member produces
//! the identical effect and run length. That freedom also powers the
//! snapshot alignment: when a checkpoint cycle falls inside a class's
//! span, the representative moves onto it and the fast-forward restore
//! lands exactly on the injection point.

use crate::campaign::{Campaign, CampaignConfig, CampaignResult, InjectionTarget};
use crate::classify::{ClassCounts, FaultEffect};
use crate::error::CampaignError;
use crate::stats;
use mbu_ace::LivenessOracle;
use mbu_equiv::{physical_coord, CoverageReport, FaultClass, LiveIndex, Partition};
use mbu_snap::GoldenArtifacts;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// A simulated class outcome in shard form: `(class_id, (effect, cycles))`.
type ClassSim = (u64, (FaultEffect, u64));

/// Default cap on live (must-simulate) classes — past this an exhaustive
/// campaign is refused as intractable ([`CampaignError::ClassCapExceeded`]).
pub const DEFAULT_MAX_CLASSES: u64 = 4_000_000;

/// Knobs of the equivalence-class engine, on top of a [`CampaignConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct ExhaustiveSpec {
    /// Representative-picker seed (`0` = class midpoint; any other value
    /// spreads picks deterministically per class). Class-member invariance
    /// makes the results identical for every seed — the differential suite
    /// varies it to prove exactly that.
    pub rep_seed: u64,
    /// Refuse exhaustive campaigns whose live-class census exceeds this
    /// (`MBU_EXHAUSTIVE_MAX_CLASSES`).
    pub max_classes: u64,
    /// Move each representative onto a golden checkpoint cycle when one
    /// falls inside the class span, minimizing the simulated suffix. Only
    /// effective with snapshots enabled; sound by class-member invariance.
    pub snap_align: bool,
}

impl Default for ExhaustiveSpec {
    fn default() -> Self {
        Self {
            rep_seed: 0,
            max_classes: DEFAULT_MAX_CLASSES,
            snap_align: true,
        }
    }
}

/// Stopping rule for the class-weighted stratified sampler.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StratifiedSpec {
    /// Stop once the whole-population margin is at or below this.
    pub target_margin: f64,
    /// Confidence z-score used in the margin.
    pub z: f64,
    /// Minimum draws before the margin check (guards tiny-sample noise).
    pub min_draws: u64,
    /// Draws per batch between margin checks.
    pub batch: u64,
    /// Hard ceiling on draws (the sampler never exceeds the live mass).
    pub max_draws: u64,
    /// Ticket-stream seed; same seed ⇒ same draws ⇒ same results.
    pub seed: u64,
}

impl StratifiedSpec {
    /// The paper's sampling plan (±2.88% at 99% confidence) as a
    /// stratified stopping rule.
    pub fn paper() -> Self {
        Self {
            target_margin: 0.0288,
            z: stats::Z_99,
            min_draws: 100,
            batch: 100,
            max_draws: 2_000_000,
            seed: 0x6EF1_2019,
        }
    }

    fn validate(&self) -> Result<(), CampaignError> {
        if !(self.target_margin > 0.0 && self.target_margin < 1.0) {
            return Err(CampaignError::InvalidAdaptiveSpec {
                reason: "stratified target margin must be in (0, 1)",
            });
        }
        if self.min_draws == 0 || self.batch == 0 || self.max_draws < self.min_draws {
            return Err(CampaignError::InvalidAdaptiveSpec {
                reason: "stratified draw counts must be positive with max ≥ min",
            });
        }
        Ok(())
    }
}

/// One simulated class representative's outcome. `weight` members share it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClassOutcome {
    /// Dense partition class id.
    pub class_id: u64,
    /// The member cycle actually injected.
    pub inject_cycle: u64,
    /// Members of the class (cycles).
    pub weight: u64,
    /// The class's (shared) classification.
    pub effect: FaultEffect,
    /// The class's (shared) run length.
    pub cycles: u64,
}

/// A full-coverage exhaustive campaign result.
#[derive(Debug, Clone)]
pub struct ExhaustiveResult {
    /// Weighted counts over the whole population (margin exactly 0),
    /// interchangeable with a sampled result in the FIT/figure pipeline.
    pub campaign: CampaignResult,
    /// The partition's exactness proof.
    pub coverage: CoverageReport,
    /// Live classes simulated (one run each).
    pub simulated: u64,
    /// Dead classes credited `Masked` without simulation.
    pub pruned_classes: u64,
    /// Population mass of the pruned classes.
    pub pruned_weight: u64,
    /// Unweighted per-class outcome counts of the simulated classes
    /// (`total() == simulated`; the shard-row invariant).
    pub class_counts: ClassCounts,
}

/// A class-weighted stratified campaign result.
#[derive(Debug, Clone)]
pub struct StratifiedResult {
    /// Population-scaled counts; `achieved_margin` is the stratified
    /// whole-population margin at stop.
    pub campaign: CampaignResult,
    /// The partition's exactness proof (the dead stratum is exact).
    pub coverage: CoverageReport,
    /// Weight-proportional draws taken from the live stratum.
    pub draws: u64,
    /// Distinct classes simulated (memoized; the actual run cost).
    pub simulated: u64,
}

/// A compiled exhaustive campaign: validated configuration + the
/// structure's fault-equivalence partition.
#[derive(Debug, Clone)]
pub struct ExhaustivePlan {
    campaign: Campaign,
    spec: ExhaustiveSpec,
    partition: Partition,
    interleave: usize,
    live: LiveIndex,
    coverage: CoverageReport,
}

impl ExhaustivePlan {
    /// Validates the configuration, captures the segment-recording golden
    /// run and compiles the partition.
    ///
    /// # Errors
    ///
    /// [`CampaignError::ExhaustiveUnsupported`] for multi-bit, tag-array
    /// or adaptive configurations; [`CampaignError::PartitionFailed`] when
    /// the observation run fails or the partition is not exact;
    /// [`CampaignError::ClassCapExceeded`] past
    /// [`ExhaustiveSpec::max_classes`].
    pub fn try_new(config: CampaignConfig, spec: ExhaustiveSpec) -> Result<Self, CampaignError> {
        if config.faults != 1 {
            return Err(CampaignError::ExhaustiveUnsupported {
                reason: "equivalence classes are defined per single bit (faults must be 1)",
            });
        }
        if config.target != InjectionTarget::DataArray {
            return Err(CampaignError::ExhaustiveUnsupported {
                reason: "segment capture probes the data array only",
            });
        }
        if config.adaptive.is_some() {
            return Err(CampaignError::ExhaustiveUnsupported {
                reason: "exhaustive campaigns enumerate classes, they are never adaptive",
            });
        }
        let campaign = Campaign::try_new(config)?;
        let cfg = campaign.config();
        let oracle =
            LivenessOracle::build_with_segments(cfg.core, &cfg.workload.program(), cfg.component)
                .map_err(|e| CampaignError::PartitionFailed {
                reason: format!("segment capture failed: {e}"),
            })?;
        let interleave = oracle.interleave();
        let partition = Partition::from_residency(oracle.residency()).map_err(|e| {
            CampaignError::PartitionFailed {
                reason: e.to_string(),
            }
        })?;
        let coverage = partition.coverage();
        if !coverage.exact() {
            return Err(CampaignError::PartitionFailed {
                reason: format!(
                    "partition is not exact ({} hole cycles, {} overlap cycles)",
                    coverage.holes, coverage.overlaps
                ),
            });
        }
        if coverage.live_classes > spec.max_classes {
            return Err(CampaignError::ClassCapExceeded {
                classes: coverage.live_classes,
                cap: spec.max_classes,
            });
        }
        let live = partition.live_index();
        Ok(Self {
            campaign,
            spec,
            partition,
            interleave,
            live,
            coverage,
        })
    }

    /// The underlying (validated) campaign configuration.
    pub fn config(&self) -> &CampaignConfig {
        self.campaign.config()
    }

    /// The partition's exactness proof.
    pub fn coverage(&self) -> CoverageReport {
        self.coverage
    }

    /// Live (must-simulate) classes.
    pub fn live_classes(&self) -> usize {
        self.live.len()
    }

    /// The compiled partition.
    pub fn partition(&self) -> &Partition {
        &self.partition
    }

    /// The live class at position `index` of the plan's dense live order
    /// (the unit space the fabric shards over).
    ///
    /// # Panics
    ///
    /// Panics when `index ≥ live_classes()`.
    pub fn live_class(&self, index: usize) -> FaultClass {
        self.partition
            .class(self.live.ids()[index])
            .expect("live index holds valid ids")
    }

    /// The member cycle the plan injects for `class`: the representative
    /// pick, snapped onto an in-span golden checkpoint when
    /// [`ExhaustiveSpec::snap_align`] is on and the artifacts carry a
    /// store (sound either way by class-member invariance).
    fn member_cycle(&self, class: &FaultClass, artifacts: &GoldenArtifacts) -> u64 {
        if self.spec.snap_align && self.campaign.config().use_snapshots {
            if let Some(store) = artifacts.snapshot_store() {
                if let Some(cycle) = store.nearest_cycle_in(class.start, class.end) {
                    return cycle;
                }
            }
        }
        class.representative(self.spec.rep_seed)
    }

    /// Builds (or validates) the golden artifacts for this plan.
    fn artifacts<'a>(
        &self,
        artifacts: Option<&'a GoldenArtifacts>,
        owned: &'a mut Option<GoldenArtifacts>,
    ) -> Result<&'a GoldenArtifacts, CampaignError> {
        let program = self.campaign.config().workload.program();
        match artifacts {
            Some(a) => {
                self.campaign.validate_artifacts(&program, a)?;
                Ok(a)
            }
            None => {
                *owned = Some(self.campaign.build_artifacts()?);
                Ok(owned.as_ref().expect("just built"))
            }
        }
    }

    /// Execution order for the range's live positions: ascending member
    /// (injection) cycle when snapshot alignment is active — consecutive
    /// sims then restore the same or neighbouring checkpoints instead of
    /// cold-seeking across the store — plain range order otherwise. Pure
    /// scheduling: every class sim is independent and deterministic and
    /// [`ExhaustivePlan::run_class_range`] re-sorts outcomes by class id,
    /// so the order cannot change results.
    fn locality_order(
        &self,
        range: &std::ops::Range<usize>,
        artifacts: &GoldenArtifacts,
    ) -> Vec<usize> {
        let mut order: Vec<usize> = range.clone().collect();
        if self.spec.snap_align
            && self.campaign.config().use_snapshots
            && artifacts.snapshot_store().is_some()
        {
            order.sort_by_cached_key(|&i| {
                let class = self.live_class(i);
                (self.member_cycle(&class, artifacts), i)
            });
        }
        order
    }

    /// Simulates the live classes `range` (positions in the dense live
    /// order), one representative each, in parallel, scheduled in
    /// snapshot-locality order (see [`ExhaustivePlan::locality_order`]).
    /// Outcomes come back sorted by class id and are bit-identical for any
    /// thread count, representative seed, and snapshots on or off — the
    /// shard primitive behind distributed exhaustive sweeps. The
    /// campaign's per-run hook (when set) fires once per class sim with
    /// the live position index, so fabric workers get heartbeat progress
    /// and chaos injection at class granularity.
    ///
    /// # Errors
    ///
    /// [`CampaignError::InvalidClassRange`] for an empty or out-of-bounds
    /// range; artifact and golden-run errors as in the sampled path.
    pub fn run_class_range(
        &self,
        range: std::ops::Range<usize>,
        artifacts: Option<&GoldenArtifacts>,
    ) -> Result<Vec<ClassOutcome>, CampaignError> {
        if range.start >= range.end || range.end > self.live.len() {
            return Err(CampaignError::InvalidClassRange {
                start: range.start,
                end: range.end,
                classes: self.live.len(),
            });
        }
        let mut owned = None;
        let artifacts = self.artifacts(artifacts, &mut owned)?;
        let cfg = self.campaign.config();
        let program = cfg.workload.program();
        let snapshots = cfg
            .use_snapshots
            .then(|| artifacts.snapshot_store().map(|s| s.as_ref()))
            .flatten();
        let threads = if cfg.threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            cfg.threads
        }
        .min(range.len())
        .max(1);
        let order = self.locality_order(&range, artifacts);
        let hook = cfg.run_hook.as_ref();
        let next = AtomicUsize::new(0);
        let mut outcomes: Vec<ClassOutcome> = Vec::with_capacity(range.len());
        let mut worker_panicked = false;
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for _ in 0..threads {
                let next = &next;
                let order = &order;
                let program = &program;
                handles.push(scope.spawn(move || {
                    let mut local = Vec::new();
                    loop {
                        let k = next.fetch_add(1, Ordering::Relaxed);
                        if k >= order.len() {
                            break;
                        }
                        let i = order[k];
                        if let Some(hook) = hook {
                            (hook.0)(i);
                        }
                        let class = self.live_class(i);
                        local.push(self.simulate_class(&class, program, artifacts, snapshots));
                    }
                    local
                }));
            }
            for h in handles {
                match h.join() {
                    Ok(local) => outcomes.extend(local),
                    Err(_) => worker_panicked = true,
                }
            }
        });
        if worker_panicked {
            return Err(CampaignError::WorkerPanicked);
        }
        outcomes.sort_by_key(|o| o.class_id);
        Ok(outcomes)
    }

    /// Simulates one class's representative (inside the isolation
    /// boundary; panics classify as `Assert` like the sampled path).
    fn simulate_class(
        &self,
        class: &FaultClass,
        program: &mbu_isa::Program,
        artifacts: &GoldenArtifacts,
        snapshots: Option<&mbu_snap::SnapshotStore>,
    ) -> ClassOutcome {
        let inject_cycle = self.member_cycle(class, artifacts);
        let coords = [physical_coord(class.row, class.col, self.interleave)];
        let (effect, cycles) = self.campaign.probe_injection(
            program,
            &coords,
            inject_cycle,
            artifacts.cycles(),
            artifacts.output(),
            artifacts.exit_code(),
            snapshots,
        );
        ClassOutcome {
            class_id: class.id,
            inject_cycle,
            weight: class.weight(),
            effect,
            cycles,
        }
    }

    /// Simulates one *specific member* of a class — the brute-force
    /// primitive the differential suite uses to enumerate whole classes
    /// and prove member invariance against the representative pick.
    ///
    /// # Errors
    ///
    /// Artifact and golden-run errors as in the sampled path.
    ///
    /// # Panics
    ///
    /// Panics when `inject_cycle` is outside the class's member span.
    pub fn probe_member(
        &self,
        class: &FaultClass,
        inject_cycle: u64,
        artifacts: Option<&GoldenArtifacts>,
    ) -> Result<ClassOutcome, CampaignError> {
        assert!(
            (class.start..=class.end).contains(&inject_cycle),
            "cycle {inject_cycle} is not a member of class {} ({}..={})",
            class.id,
            class.start,
            class.end
        );
        let mut owned = None;
        let artifacts = self.artifacts(artifacts, &mut owned)?;
        let cfg = self.campaign.config();
        let program = cfg.workload.program();
        let snapshots = cfg
            .use_snapshots
            .then(|| artifacts.snapshot_store().map(|s| s.as_ref()))
            .flatten();
        let coords = [physical_coord(class.row, class.col, self.interleave)];
        let (effect, cycles) = self.campaign.probe_injection(
            &program,
            &coords,
            inject_cycle,
            artifacts.cycles(),
            artifacts.output(),
            artifacts.exit_code(),
            snapshots,
        );
        Ok(ClassOutcome {
            class_id: class.id,
            inject_cycle,
            weight: class.weight(),
            effect,
            cycles,
        })
    }

    /// Folds per-class outcomes (every live class exactly once, in any
    /// order) plus the pruned dead mass into a full-coverage
    /// [`ExhaustiveResult`].
    ///
    /// # Errors
    ///
    /// [`CampaignError::IncompleteClassCover`] unless the outcomes cover
    /// the live classes exactly.
    pub fn finalize(
        &self,
        outcomes: &[ClassOutcome],
        fault_free_instructions: u64,
    ) -> Result<ExhaustiveResult, CampaignError> {
        let mut seen: Vec<u64> = outcomes.iter().map(|o| o.class_id).collect();
        seen.sort_unstable();
        seen.dedup();
        if seen.len() != outcomes.len() || seen != self.live.ids() {
            let missing = self
                .live
                .ids()
                .iter()
                .filter(|id| seen.binary_search(id).is_err())
                .count() as u64
                + (outcomes.len() - seen.len()) as u64;
            return Err(CampaignError::IncompleteClassCover {
                missing: missing.max(1),
            });
        }
        let mut weighted = ClassCounts::new();
        let mut class_counts = ClassCounts::new();
        let pruned_weight = self.coverage.dead_weight;
        weighted.record_weighted(FaultEffect::Masked, pruned_weight);
        for o in outcomes {
            weighted.record_weighted(o.effect, o.weight);
            class_counts.record(o.effect);
        }
        debug_assert_eq!(weighted.total(), self.coverage.population);
        let cfg = self.campaign.config();
        let campaign = CampaignResult {
            workload: cfg.workload,
            component: cfg.component,
            faults: cfg.faults,
            counts: weighted,
            fault_free_cycles: self.partition.total_cycles(),
            fault_free_instructions,
            details: None,
            anomalies: crate::campaign::AnomalyLog::new(),
            oracle_skips: self.coverage.dead_classes,
            achieved_margin: Some(0.0),
            snapshot_stats: None,
        };
        Ok(ExhaustiveResult {
            campaign,
            coverage: self.coverage,
            simulated: outcomes.len() as u64,
            pruned_classes: self.coverage.dead_classes,
            pruned_weight,
            class_counts,
        })
    }

    /// Runs the whole exhaustive campaign: every live class simulated
    /// once, every dead class pruned, 100% coverage, margin 0.
    pub fn run(
        &self,
        artifacts: Option<&GoldenArtifacts>,
    ) -> Result<ExhaustiveResult, CampaignError> {
        let mut owned = None;
        let artifacts = self.artifacts(artifacts, &mut owned)?;
        let outcomes = if self.live.is_empty() {
            Vec::new()
        } else {
            self.run_class_range(0..self.live.len(), Some(artifacts))?
        };
        self.finalize(&outcomes, artifacts.instructions())
    }

    /// Runs the class-weighted stratified sampler: the dead stratum is
    /// exact, the live stratum is sampled proportionally to class weight
    /// with per-class memoization, and sampling stops once the
    /// whole-population margin meets [`StratifiedSpec::target_margin`]
    /// (or the draw ceiling is hit). Deterministic for a given spec seed
    /// regardless of thread count.
    pub fn run_stratified(
        &self,
        spec: StratifiedSpec,
        artifacts: Option<&GoldenArtifacts>,
    ) -> Result<StratifiedResult, CampaignError> {
        spec.validate()?;
        let mut owned = None;
        let artifacts = self.artifacts(artifacts, &mut owned)?;
        let cfg = self.campaign.config();
        let program = cfg.workload.program();
        let snapshots = cfg
            .use_snapshots
            .then(|| artifacts.snapshot_store().map(|s| s.as_ref()))
            .flatten();
        let population = self.coverage.population;
        let live_weight = self.coverage.live_weight;
        let mut draw_counts = ClassCounts::new();
        let mut memo: HashMap<u64, (FaultEffect, u64)> = HashMap::new();
        let mut draws = 0u64;
        let mut margin = 0.0;
        if live_weight > 0 {
            let mut rng = Xorshift64(spec.seed | 1);
            let draw_cap = spec.max_draws.min(live_weight);
            'sampling: loop {
                let batch_end = (draws + spec.batch).min(draw_cap);
                let tickets: Vec<u64> =
                    (draws..batch_end).map(|_| rng.below(live_weight)).collect();
                let ids: Vec<u64> = tickets
                    .iter()
                    .map(|&t| self.live.pick(t).expect("ticket below total weight"))
                    .collect();
                // Simulate the batch's *unseen* classes in parallel, then
                // fold the draws sequentially — deterministic either way.
                let mut fresh: Vec<u64> = ids
                    .iter()
                    .copied()
                    .filter(|id| !memo.contains_key(id))
                    .collect();
                fresh.sort_unstable();
                fresh.dedup();
                for (id, outcome) in self.simulate_batch(&fresh, &program, artifacts, snapshots)? {
                    memo.insert(id, outcome);
                }
                for id in ids {
                    let (effect, _) = memo[&id];
                    draw_counts.record(effect);
                    draws += 1;
                }
                // Measured unmasked fraction of the live stratum, clamped
                // like the sampled path's margin readjustment.
                let p = draw_counts.avf().clamp(0.01, 0.99);
                margin = stats::stratified_margin(population, live_weight, draws, spec.z, p)?;
                if (draws >= spec.min_draws && margin <= spec.target_margin) || draws >= draw_cap {
                    break 'sampling;
                }
            }
        }
        // Scale the live stratum's draw histogram to its population mass
        // (largest-remainder rounding: the scaled counts sum exactly), then
        // add the exact dead stratum.
        let mut counts = scale_counts(&draw_counts, live_weight);
        counts.record_weighted(FaultEffect::Masked, self.coverage.dead_weight);
        debug_assert_eq!(counts.total(), population);
        let campaign = CampaignResult {
            workload: cfg.workload,
            component: cfg.component,
            faults: cfg.faults,
            counts,
            fault_free_cycles: self.partition.total_cycles(),
            fault_free_instructions: artifacts.instructions(),
            details: None,
            anomalies: crate::campaign::AnomalyLog::new(),
            oracle_skips: self.coverage.dead_classes,
            achieved_margin: Some(margin),
            snapshot_stats: None,
        };
        Ok(StratifiedResult {
            campaign,
            coverage: self.coverage,
            draws,
            simulated: memo.len() as u64,
        })
    }

    /// Simulates a sorted, deduplicated batch of class ids in parallel.
    /// The campaign's per-run hook (when set) fires once per class sim —
    /// the progress/chaos seam stratified fabric units share with
    /// [`ExhaustivePlan::run_class_range`].
    fn simulate_batch(
        &self,
        ids: &[u64],
        program: &mbu_isa::Program,
        artifacts: &GoldenArtifacts,
        snapshots: Option<&mbu_snap::SnapshotStore>,
    ) -> Result<Vec<ClassSim>, CampaignError> {
        if ids.is_empty() {
            return Ok(Vec::new());
        }
        let cfg = self.campaign.config();
        let threads = if cfg.threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            cfg.threads
        }
        .min(ids.len())
        .max(1);
        let hook = cfg.run_hook.as_ref();
        let next = AtomicUsize::new(0);
        let results = Mutex::new(Vec::with_capacity(ids.len()));
        let mut worker_panicked = false;
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for _ in 0..threads {
                let next = &next;
                let results = &results;
                handles.push(scope.spawn(move || loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= ids.len() {
                        break;
                    }
                    if let Some(hook) = hook {
                        (hook.0)(i);
                    }
                    let class = self.partition.class(ids[i]).expect("live id");
                    let o = self.simulate_class(&class, program, artifacts, snapshots);
                    results
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .push((o.class_id, (o.effect, o.cycles)));
                }));
            }
            for h in handles {
                if h.join().is_err() {
                    worker_panicked = true;
                }
            }
        });
        if worker_panicked {
            return Err(CampaignError::WorkerPanicked);
        }
        Ok(results.into_inner().unwrap_or_else(|e| e.into_inner()))
    }
}

/// Scales a draw histogram to total exactly `mass` via largest-remainder
/// rounding (stable effect order breaks remainder ties).
fn scale_counts(draws: &ClassCounts, mass: u64) -> ClassCounts {
    let total = draws.total();
    let mut scaled = ClassCounts::new();
    if total == 0 || mass == 0 {
        // No draws: the caller only reaches this with zero live mass.
        return scaled;
    }
    let mut floors = [0u64; 5];
    let mut remainders = [(0u128, 0usize); 5];
    let mut assigned = 0u64;
    for (i, &effect) in FaultEffect::ALL.iter().enumerate() {
        let exact = draws.count(effect) as u128 * mass as u128;
        let floor = (exact / total as u128) as u64;
        floors[i] = floor;
        remainders[i] = (exact % total as u128, i);
        assigned += floor;
    }
    // Distribute the remaining units to the largest remainders.
    remainders.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    let mut leftover = mass - assigned;
    for &(rem, i) in &remainders {
        if leftover == 0 {
            break;
        }
        if rem > 0 {
            floors[i] += 1;
            leftover -= 1;
        }
    }
    for (i, &effect) in FaultEffect::ALL.iter().enumerate() {
        scaled.record_weighted(effect, floors[i]);
    }
    scaled
}

/// xorshift64* ticket stream — deterministic, dependency-free, and only
/// used to spread stratified draws over the live mass.
struct Xorshift64(u64);

impl Xorshift64 {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform draw below `bound` (> 0) by rejection of the biased tail.
    fn below(&mut self, bound: u64) -> u64 {
        let zone = u64::MAX - u64::MAX % bound;
        loop {
            let x = self.next();
            if x < zone {
                return x % bound;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbu_cpu::HwComponent;
    use mbu_workloads::Workload;

    fn config(component: HwComponent) -> CampaignConfig {
        CampaignConfig::new(Workload::Stringsearch, component, 1)
            .threads(2)
            .run_wall_budget(None)
    }

    #[test]
    fn invalid_configs_are_typed_errors() {
        let spec = ExhaustiveSpec::default();
        let multi = CampaignConfig::new(Workload::Stringsearch, HwComponent::DTlb, 2);
        assert!(matches!(
            ExhaustivePlan::try_new(multi, spec),
            Err(CampaignError::ExhaustiveUnsupported { .. })
        ));
        let tag = config(HwComponent::L1D).target(InjectionTarget::TagArray);
        assert!(matches!(
            ExhaustivePlan::try_new(tag, spec),
            Err(CampaignError::ExhaustiveUnsupported { .. })
        ));
        let adaptive =
            config(HwComponent::DTlb).adaptive(Some(crate::campaign::AdaptiveSpec::paper()));
        assert!(matches!(
            ExhaustivePlan::try_new(adaptive, spec),
            Err(CampaignError::ExhaustiveUnsupported { .. })
        ));
        let capped = ExhaustiveSpec {
            max_classes: 10,
            ..spec
        };
        assert!(matches!(
            ExhaustivePlan::try_new(config(HwComponent::DTlb), capped),
            Err(CampaignError::ClassCapExceeded { cap: 10, .. })
        ));
    }

    #[test]
    fn plan_reports_exact_coverage() {
        let plan =
            ExhaustivePlan::try_new(config(HwComponent::DTlb), ExhaustiveSpec::default()).unwrap();
        let cov = plan.coverage();
        assert!(cov.exact());
        assert_eq!(cov.live_classes as usize, plan.live_classes());
        assert!(plan.live_classes() > 0);
        // Class-range bounds are typed errors.
        assert!(matches!(
            plan.run_class_range(0..0, None),
            Err(CampaignError::InvalidClassRange { .. })
        ));
        let n = plan.live_classes();
        assert!(matches!(
            plan.run_class_range(n..n + 1, None),
            Err(CampaignError::InvalidClassRange { .. })
        ));
    }

    #[test]
    fn class_range_outcomes_are_deterministic_across_threads_and_seeds() {
        // A restricted class range keeps the debug-build cost tiny; the
        // full-structure differential lives in the bench suite.
        let plan =
            ExhaustivePlan::try_new(config(HwComponent::DTlb), ExhaustiveSpec::default()).unwrap();
        let artifacts = plan.campaign.build_artifacts().unwrap();
        let range = 0..16.min(plan.live_classes());
        let one = {
            let p = ExhaustivePlan::try_new(
                config(HwComponent::DTlb).threads(1),
                ExhaustiveSpec::default(),
            )
            .unwrap();
            p.run_class_range(range.clone(), Some(&artifacts)).unwrap()
        };
        let four = plan
            .run_class_range(range.clone(), Some(&artifacts))
            .unwrap();
        assert_eq!(one, four, "thread count must not change outcomes");
        // A different representative seed picks different member cycles but
        // identical class outcomes — the equivalence guarantee.
        let other = ExhaustivePlan::try_new(
            config(HwComponent::DTlb),
            ExhaustiveSpec {
                rep_seed: 0xDEAD_BEEF,
                snap_align: false,
                ..ExhaustiveSpec::default()
            },
        )
        .unwrap();
        let reseeded = other.run_class_range(range, Some(&artifacts)).unwrap();
        for (a, b) in one.iter().zip(&reseeded) {
            assert_eq!(a.class_id, b.class_id);
            assert_eq!(a.weight, b.weight);
            assert_eq!((a.effect, a.cycles), (b.effect, b.cycles));
        }
        // Partial outcomes do not finalize.
        assert!(matches!(
            plan.finalize(&one, artifacts.instructions()),
            Err(CampaignError::IncompleteClassCover { .. })
        ));
    }

    #[test]
    fn locality_order_is_a_cycle_sorted_permutation() {
        let plan = ExhaustivePlan::try_new(
            config(HwComponent::DTlb).use_snapshots(true),
            ExhaustiveSpec::default(),
        )
        .unwrap();
        let artifacts = plan.campaign.build_artifacts().unwrap();
        assert!(
            artifacts.snapshot_store().is_some(),
            "snapshot capture must be on for this test to exercise locality"
        );
        let n = 24.min(plan.live_classes());
        let range = 0..n;
        let order = plan.locality_order(&range, &artifacts);
        // A permutation of the range…
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..n).collect::<Vec<_>>());
        // …visited in ascending member (injection) cycle, so consecutive
        // sims restore the same or neighbouring checkpoints.
        let cycles: Vec<u64> = order
            .iter()
            .map(|&i| plan.member_cycle(&plan.live_class(i), &artifacts))
            .collect();
        assert!(
            cycles.windows(2).all(|w| w[0] <= w[1]),
            "member cycles must be non-decreasing along the schedule: {cycles:?}"
        );
        // Without a snapshot store scheduling falls back to range order.
        let plain =
            ExhaustivePlan::try_new(config(HwComponent::DTlb), ExhaustiveSpec::default()).unwrap();
        let cold = plain.campaign.build_artifacts().unwrap();
        assert_eq!(
            plain.locality_order(&range, &cold),
            (0..n).collect::<Vec<_>>()
        );
    }

    #[test]
    fn scale_counts_is_exact_largest_remainder() {
        let mut draws = ClassCounts::new();
        draws.record_weighted(FaultEffect::Masked, 2);
        draws.record_weighted(FaultEffect::Sdc, 1);
        // 2/3 and 1/3 of 100: 66.67 + 33.33 → 67 + 33.
        let scaled = scale_counts(&draws, 100);
        assert_eq!(scaled.total(), 100);
        assert_eq!(scaled.masked, 67);
        assert_eq!(scaled.sdc, 33);
        // Degenerate mass: nothing to scale.
        assert_eq!(scale_counts(&ClassCounts::new(), 100).total(), 0);
        assert_eq!(scale_counts(&draws, 0).total(), 0);
    }

    #[test]
    fn xorshift_below_is_in_range_and_deterministic() {
        let mut a = Xorshift64(42 | 1);
        let mut b = Xorshift64(42 | 1);
        for _ in 0..200 {
            let x = a.below(97);
            assert!(x < 97);
            assert_eq!(x, b.below(97));
        }
    }
}
