//! Failures-in-Time analysis (paper §VI, Eq. 4 and Fig. 8).
//!
//! ```text
//! FIT_struct = AVF_struct × rawFIT_bit × #Bits_struct
//! ```
//!
//! The CPU FIT at a node is the sum over the six structures. The multi-bit
//! contribution is the part a single-bit-only assessment misses:
//! `FIT(Node_AVF) − FIT(AVF₁)`.

use crate::avf::ComponentAvf;
use crate::tech::{component_bits, node_avf, TechNode};
use mbu_cpu::HwComponent;
use std::collections::BTreeMap;
use std::fmt;

/// FIT of one structure given an AVF value (Eq. 4).
pub fn component_fit(avf_value: f64, node: TechNode, component: HwComponent) -> f64 {
    avf_value * node.raw_fit_per_bit() * component_bits(component) as f64
}

/// FIT decomposition of the whole CPU at one technology node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuFit {
    /// Total FIT with realistic multi-bit AVFs (Eq. 3 + Eq. 4).
    pub total: f64,
    /// FIT a single-bit-only assessment would report.
    pub single_bit_only: f64,
}

impl CpuFit {
    /// The FIT attributable to multi-bit upsets (Fig. 8's red area).
    pub fn mbu_part(&self) -> f64 {
        self.total - self.single_bit_only
    }

    /// Percentage of the total FIT contributed by multi-bit upsets
    /// (0 % at 250 nm, 21 % at 22 nm in the paper).
    pub fn mbu_contribution_pct(&self) -> f64 {
        if self.total == 0.0 {
            0.0
        } else {
            self.mbu_part() / self.total * 100.0
        }
    }
}

impl fmt::Display for CpuFit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "FIT {:.3} (single-bit {:.3}, MBU {:.1}%)",
            self.total,
            self.single_bit_only,
            self.mbu_contribution_pct()
        )
    }
}

/// Computes the CPU FIT at `node` from per-component weighted AVFs.
///
/// # Panics
///
/// Panics if `avfs` is missing any of the six components.
pub fn cpu_fit(avfs: &BTreeMap<HwComponent, ComponentAvf>, node: TechNode) -> CpuFit {
    let mut total = 0.0;
    let mut single = 0.0;
    for c in HwComponent::ALL {
        let avf = avfs
            .get(&c)
            .unwrap_or_else(|| panic!("missing AVF for component {c}"));
        total += component_fit(node_avf(avf, node), node, c);
        single += component_fit(avf.single, node, c);
    }
    CpuFit {
        total,
        single_bit_only: single,
    }
}

/// FIT of one component across all nodes (a Fig. 8-style series).
pub fn component_fit_series(avf: &ComponentAvf, component: HwComponent) -> Vec<(TechNode, f64)> {
    TechNode::ALL
        .iter()
        .map(|&n| (n, component_fit(node_avf(avf, n), n, component)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper;

    #[test]
    fn fit_is_monotone_in_avf_and_bits() {
        let f1 = component_fit(0.1, TechNode::N90, HwComponent::L1D);
        let f2 = component_fit(0.2, TechNode::N90, HwComponent::L1D);
        assert!(f2 > f1);
        let small = component_fit(0.2, TechNode::N90, HwComponent::DTlb);
        assert!(f2 > small, "L1D has 256x the bits of the DTLB");
    }

    #[test]
    fn mbu_contribution_is_zero_at_250nm() {
        let fit = cpu_fit(&paper::table5_avfs(), TechNode::N250);
        assert!(fit.mbu_contribution_pct().abs() < 1e-9);
    }

    #[test]
    fn mbu_contribution_reaches_21_percent_at_22nm_with_paper_avfs() {
        // The paper's headline Fig. 8 number, recomputed from its Table V.
        let fit = cpu_fit(&paper::table5_avfs(), TechNode::N22);
        let pct = fit.mbu_contribution_pct();
        assert!(
            (15.0..=22.0).contains(&pct),
            "got {pct:.1}% (paper reports 21%)"
        );
    }

    #[test]
    fn mbu_contribution_grows_monotonically_across_nodes() {
        let avfs = paper::table5_avfs();
        let mut prev = -1.0;
        for node in TechNode::ALL {
            let pct = cpu_fit(&avfs, node).mbu_contribution_pct();
            assert!(pct >= prev, "{node}: {pct}");
            prev = pct;
        }
    }

    #[test]
    fn cpu_fit_tracks_raw_fit_shape_rise_then_fall() {
        // Fig. 8: FIT rises to 130 nm then decreases to 22 nm.
        let avfs = paper::table5_avfs();
        let f250 = cpu_fit(&avfs, TechNode::N250).total;
        let f130 = cpu_fit(&avfs, TechNode::N130).total;
        let f22 = cpu_fit(&avfs, TechNode::N22).total;
        assert!(f130 > f250);
        assert!(f22 < f130);
    }

    #[test]
    fn l2_dominates_cpu_fit() {
        // The L2 holds ~89 % of the bits; its FIT dominates the CPU total.
        let avfs = paper::table5_avfs();
        let l2 = component_fit(
            crate::tech::node_avf(&avfs[&HwComponent::L2], TechNode::N22),
            TechNode::N22,
            HwComponent::L2,
        );
        let total = cpu_fit(&avfs, TechNode::N22).total;
        assert!(l2 / total > 0.8);
    }

    #[test]
    fn series_covers_all_nodes() {
        let s = component_fit_series(&ComponentAvf::new(0.1, 0.2, 0.3), HwComponent::L1I);
        assert_eq!(s.len(), 8);
        assert_eq!(s[0].0, TechNode::N250);
    }
}

/// FIT of one structure split by failure class (extension): multiplying the
/// per-class vulnerability fractions into Eq. 4 shows *what kind* of
/// failure the FIT is made of — SDC FIT argues for error detection, crash
/// FIT for recovery, the split the paper's "informed protection" discussion
/// needs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClassFit {
    /// FIT leading to silent data corruption.
    pub sdc: f64,
    /// FIT leading to crashes.
    pub crash: f64,
    /// FIT leading to timeouts (dead/livelock).
    pub timeout: f64,
    /// FIT leading to simulator asserts (system-map violations).
    pub assert_: f64,
}

impl ClassFit {
    /// Total failure FIT (sum over the vulnerable classes).
    pub fn total(&self) -> f64 {
        self.sdc + self.crash + self.timeout + self.assert_
    }
}

/// Splits a component's FIT at `node` into failure classes using a
/// breakdown measured at a given cardinality mix.
///
/// The breakdown's non-masked fractions are renormalized over the AVF so
/// the class split applies to the aggregate node AVF.
pub fn class_fit(
    breakdown: &crate::avf::ClassBreakdown,
    node_avf_value: f64,
    node: TechNode,
    component: HwComponent,
) -> ClassFit {
    let base = component_fit(node_avf_value, node, component);
    let avf = breakdown.avf();
    let share = |class_fraction: f64| {
        if avf <= 0.0 {
            0.0
        } else {
            base * class_fraction / avf
        }
    };
    ClassFit {
        sdc: share(breakdown.sdc),
        crash: share(breakdown.crash),
        timeout: share(breakdown.timeout),
        assert_: share(breakdown.assert_),
    }
}

#[cfg(test)]
mod class_fit_tests {
    use super::*;
    use crate::avf::ClassBreakdown;

    fn breakdown() -> ClassBreakdown {
        ClassBreakdown {
            masked: 0.6,
            sdc: 0.2,
            crash: 0.1,
            timeout: 0.06,
            assert_: 0.04,
        }
    }

    #[test]
    fn class_fit_partitions_the_component_fit() {
        let b = breakdown();
        let node_avf_value = 0.5;
        let f = class_fit(&b, node_avf_value, TechNode::N22, HwComponent::L1D);
        let total = component_fit(node_avf_value, TechNode::N22, HwComponent::L1D);
        assert!((f.total() - total).abs() < 1e-12);
        assert!(f.sdc > f.crash && f.crash > f.timeout && f.timeout > f.assert_);
    }

    #[test]
    fn fully_masked_breakdown_has_zero_class_fit() {
        let b = ClassBreakdown {
            masked: 1.0,
            sdc: 0.0,
            crash: 0.0,
            timeout: 0.0,
            assert_: 0.0,
        };
        let f = class_fit(&b, 0.0, TechNode::N22, HwComponent::L2);
        assert_eq!(f.total(), 0.0);
    }
}
