//! Campaign-integrity primitives: checksums and golden-run fingerprints.
//!
//! A fault injector's own infrastructure must be verifiably correct, or its
//! AVF/FIT numbers are noise. Two ingredients live here:
//!
//! * [`crc32`] — the IEEE CRC-32 used to checksum every persisted result
//!   row, so a torn write or a flipped bit in a checkpoint file is detected
//!   on load instead of silently corrupting Tables IV–V;
//! * [`GoldenFingerprint`] — a digest of the fault-free reference run
//!   (output bytes, exit code, cycle count, committed instructions and a
//!   core-configuration digest). Every checkpoint row is stamped with the
//!   fingerprint of its workload's golden run; on resume the fingerprint is
//!   recomputed, and a row whose fingerprint no longer matches (the
//!   simulator or the workload binary changed underneath the checkpoint) is
//!   re-run rather than merged into derived tables.

use crate::error::CampaignError;
use mbu_cpu::{CoreConfig, RunEnd, Simulator};
use mbu_workloads::Workload;
use std::fmt;
use std::str::FromStr;

/// IEEE CRC-32 lookup table (reflected polynomial 0xEDB88320), built at
/// compile time so the hot path is one table lookup per byte.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// IEEE CRC-32 of `bytes` (the `cksum`/zlib polynomial, reflected).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// FNV-1a 64-bit hash of `bytes`.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// A digest of the core configuration. Any change to the microarchitectural
/// parameters (cache geometry, queue sizes, pipeline widths, …) changes the
/// digest, which in turn invalidates every stored fingerprint.
pub fn config_digest(core: &CoreConfig) -> u64 {
    fnv1a64(format!("{core:?}").as_bytes())
}

/// The fingerprint of a fault-free golden run: a 64-bit digest of the
/// reference output bytes, exit code, cycle count, committed instructions
/// and the [`config_digest`] of the simulated core.
///
/// Rendered and parsed as 16 lowercase hex digits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GoldenFingerprint(pub u64);

impl GoldenFingerprint {
    /// Digests the components of a golden run.
    pub fn digest(
        output: &[u8],
        exit_code: u32,
        cycles: u64,
        instructions: u64,
        config: u64,
    ) -> Self {
        let mut h = fnv1a64(output);
        for word in [exit_code as u64, cycles, instructions, config] {
            for byte in word.to_le_bytes() {
                h ^= byte as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
        }
        Self(h)
    }
}

impl fmt::Display for GoldenFingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

impl FromStr for GoldenFingerprint {
    type Err = std::num::ParseIntError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        u64::from_str_radix(s, 16).map(GoldenFingerprint)
    }
}

/// Executes the fault-free golden run of `workload` on `core` and digests
/// it. The same (simulator build, core configuration, workload program)
/// always produces the same fingerprint; any of them changing changes it.
///
/// # Errors
///
/// Returns [`CampaignError::GoldenRunFailed`] if the fault-free run does
/// not exit cleanly.
pub fn golden_fingerprint(
    core: CoreConfig,
    workload: Workload,
) -> Result<GoldenFingerprint, CampaignError> {
    let program = workload.program();
    let r = Simulator::new(core, &program).run(u64::MAX / 8);
    match r.end {
        RunEnd::Exited { code } => Ok(GoldenFingerprint::digest(
            &r.output,
            code,
            r.cycles,
            r.instructions,
            config_digest(&core),
        )),
        end => Err(CampaignError::GoldenRunFailed { workload, end }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // The classic IEEE test vectors.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn crc32_detects_every_single_bit_flip() {
        let base = b"l1d,sha,1,90,5,3,1,1,12345,6789";
        let reference = crc32(base);
        let mut buf = base.to_vec();
        for byte in 0..buf.len() {
            for bit in 0..8 {
                buf[byte] ^= 1 << bit;
                assert_ne!(crc32(&buf), reference, "flip at {byte}/{bit} undetected");
                buf[byte] ^= 1 << bit;
            }
        }
    }

    #[test]
    fn fingerprint_roundtrips_through_hex() {
        let fp = GoldenFingerprint(0x0123_4567_89AB_CDEF);
        let s = fp.to_string();
        assert_eq!(s.len(), 16);
        assert_eq!(s.parse::<GoldenFingerprint>().unwrap(), fp);
        // Leading zeroes preserved.
        let small = GoldenFingerprint(7);
        assert_eq!(
            small.to_string().parse::<GoldenFingerprint>().unwrap(),
            small
        );
    }

    #[test]
    fn golden_fingerprint_is_deterministic_and_config_sensitive() {
        let a = golden_fingerprint(CoreConfig::cortex_a9_like(), Workload::Stringsearch).unwrap();
        let b = golden_fingerprint(CoreConfig::cortex_a9_like(), Workload::Stringsearch).unwrap();
        assert_eq!(a, b, "same build + config + workload => same fingerprint");
        let other_core =
            golden_fingerprint(CoreConfig::in_order_a9(), Workload::Stringsearch).unwrap();
        assert_ne!(a, other_core, "config change must change the fingerprint");
        let other_workload =
            golden_fingerprint(CoreConfig::cortex_a9_like(), Workload::Crc32).unwrap();
        assert_ne!(
            a, other_workload,
            "workload change must change the fingerprint"
        );
    }

    #[test]
    fn digest_mixes_every_component() {
        let base = GoldenFingerprint::digest(b"out", 0, 100, 50, 1);
        assert_ne!(base, GoldenFingerprint::digest(b"out!", 0, 100, 50, 1));
        assert_ne!(base, GoldenFingerprint::digest(b"out", 1, 100, 50, 1));
        assert_ne!(base, GoldenFingerprint::digest(b"out", 0, 101, 50, 1));
        assert_ne!(base, GoldenFingerprint::digest(b"out", 0, 100, 51, 1));
        assert_ne!(base, GoldenFingerprint::digest(b"out", 0, 100, 50, 2));
    }
}
