//! The paper's published measurements, embedded as reference data.
//!
//! These constants let the analysis pipeline (Eq. 2–4, Figures 7–8, Tables
//! IV–V) be validated against the paper's own derived numbers, independent
//! of this reproduction's simulator. They are also printed side-by-side
//! with our measured values in EXPERIMENTS.md.

use crate::avf::ComponentAvf;
use mbu_cpu::HwComponent;
use std::collections::BTreeMap;

/// Table V: weighted AVF per component for 1-, 2- and 3-bit faults.
pub fn table5_avfs() -> BTreeMap<HwComponent, ComponentAvf> {
    let mut m = BTreeMap::new();
    m.insert(HwComponent::L1D, ComponentAvf::new(0.2032, 0.2970, 0.3628));
    m.insert(HwComponent::L1I, ComponentAvf::new(0.1201, 0.1957, 0.2514));
    m.insert(HwComponent::L2, ComponentAvf::new(0.1794, 0.2483, 0.3013));
    m.insert(
        HwComponent::RegFile,
        ComponentAvf::new(0.1095, 0.1865, 0.2301),
    );
    m.insert(HwComponent::ITlb, ComponentAvf::new(0.5031, 0.6291, 0.6667));
    m.insert(HwComponent::DTlb, ComponentAvf::new(0.5066, 0.6177, 0.6722));
    m
}

/// Table IV: the paper's reported multiplicative vulnerability increases
/// `(2-bit, 3-bit)` per component.
///
/// Note: the paper's Table IV reports maxima over benchmarks rather than
/// ratios of the weighted averages in Table V, so these are looser bounds
/// than `ComponentAvf::increase_*` on Table V data.
pub fn table4_increases(component: HwComponent) -> (f64, f64) {
    match component {
        HwComponent::L1D => (2.4, 2.7),
        HwComponent::L1I => (2.3, 3.2),
        HwComponent::L2 => (1.9, 2.4),
        HwComponent::RegFile => (2.1, 2.7),
        HwComponent::DTlb => (1.4, 1.6),
        HwComponent::ITlb => (1.5, 1.5),
    }
}

/// Table III: benchmark execution times on the paper's gem5 setup, in clock
/// cycles (for shape comparison with our scaled-down runs).
pub fn table3_cycles(name: &str) -> Option<u64> {
    Some(match name {
        "CRC32" => 132_195_721,
        "FFT" => 48_339_852,
        "adpcm_dec" => 53_690_367,
        "basicmath" => 67_556_250,
        "cjpeg" => 26_126_843,
        "dijkstra" => 41_643_556,
        "djpeg" => 10_105_853,
        "gsm_dec" => 12_862_888,
        "qsort" => 31_326_716,
        "rijndael_dec" => 33_327_494,
        "sha" => 12_141_593,
        "stringsearch" => 1_082_451,
        "susan_c" => 2_150_961,
        "susan_e" => 2_876_202,
        "susan_s" => 13_750_557,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tech::{assessment_gap, TechNode};

    #[test]
    fn table5_has_all_six_components() {
        assert_eq!(table5_avfs().len(), 6);
    }

    #[test]
    fn table5_percentage_increases_match_the_paper() {
        // The paper prints the percentage increases next to each AVF.
        let t = table5_avfs();
        let checks = [
            (HwComponent::L1D, 46.16, 22.15),
            (HwComponent::L1I, 62.95, 28.46),
            (HwComponent::L2, 38.4, 21.35),
            (HwComponent::RegFile, 70.32, 23.38),
            (HwComponent::ITlb, 25.04, 5.98),
            (HwComponent::DTlb, 21.93, 8.82),
        ];
        for (c, inc12, inc23) in checks {
            let a = &t[&c];
            assert!(
                (a.pct_increase_1_to_2() - inc12).abs() < 0.25,
                "{c}: {}",
                a.pct_increase_1_to_2()
            );
            assert!(
                (a.pct_increase_2_to_3() - inc23).abs() < 0.25,
                "{c}: {}",
                a.pct_increase_2_to_3()
            );
        }
    }

    #[test]
    fn tlbs_are_the_most_vulnerable_in_table5() {
        let t = table5_avfs();
        for c in [
            HwComponent::L1D,
            HwComponent::L1I,
            HwComponent::L2,
            HwComponent::RegFile,
        ] {
            assert!(t[&HwComponent::ITlb].single > t[&c].single);
            assert!(t[&HwComponent::DTlb].single > t[&c].single);
        }
    }

    #[test]
    fn assessment_gaps_at_22nm_span_11_to_35_percent() {
        // Fig. 7: the gap varies from ~11 % (DTLB) to ~35 % (register file).
        let t = table5_avfs();
        let gaps: Vec<f64> = HwComponent::ALL
            .iter()
            .map(|c| assessment_gap(&t[c], TechNode::N22))
            .collect();
        let min = gaps.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = gaps.iter().cloned().fold(0.0, f64::max);
        assert!((0.10..=0.13).contains(&min), "min gap {min}");
        assert!((0.33..=0.37).contains(&max), "max gap {max}");
    }

    #[test]
    fn table3_lists_all_15_benchmarks() {
        use mbu_workloads::Workload;
        for w in Workload::ALL {
            assert!(
                table3_cycles(w.name()).is_some(),
                "{w} missing from Table III data"
            );
        }
        assert!(table3_cycles("nonexistent").is_none());
    }
}
