//! Typed errors for the campaign engine.
//!
//! The public campaign API reports invalid configurations and failed golden
//! runs as [`CampaignError`] values instead of panicking, so sweep drivers
//! (e.g. `mbu-bench`) can skip a poisoned workload and keep going. The
//! panicking constructors ([`crate::campaign::Campaign::new`],
//! [`crate::campaign::Campaign::run`]) remain as thin conveniences whose
//! messages are these errors' `Display` output.

use crate::mask::ClusterSpec;
use crate::stats::StatsError;
use mbu_cpu::{HwComponent, RunEnd};
use mbu_workloads::Workload;
use std::fmt;

/// Why a campaign could not be configured or executed.
#[derive(Debug, Clone, PartialEq)]
pub enum CampaignError {
    /// `runs` was zero.
    ZeroRuns,
    /// The fault cardinality does not fit the cluster window.
    CardinalityTooLarge {
        /// Requested flips per injection.
        faults: usize,
        /// The configured cluster window.
        cluster: ClusterSpec,
    },
    /// Tag-array injection was requested for a component without a tag
    /// array.
    TagArrayUnsupported {
        /// The offending component.
        component: HwComponent,
    },
    /// The fault-free golden run did not exit cleanly — a workload or
    /// simulator problem, not a fault effect; the campaign has no reference
    /// output to classify against.
    GoldenRunFailed {
        /// The workload whose golden run failed.
        workload: Workload,
        /// How the golden run actually ended.
        end: RunEnd,
    },
    /// A worker thread died outside the per-run isolation boundary (an
    /// engine bug, not an injected-fault effect).
    WorkerPanicked,
    /// The adaptive-sampling specification was malformed.
    InvalidAdaptiveSpec {
        /// What was wrong with it.
        reason: &'static str,
    },
    /// A partial run-range was empty or did not fit inside `0..runs` —
    /// a shard-planner or supervisor bug, not a fault effect.
    InvalidRunRange {
        /// Requested range start (inclusive).
        start: usize,
        /// Requested range end (exclusive).
        end: usize,
        /// The campaign's configured run count.
        runs: usize,
    },
    /// Pre-built golden artifacts were supplied for a different campaign
    /// (wrong core configuration, wrong program, or a missing/mismatched
    /// snapshot store).
    ArtifactMismatch {
        /// Which part of the artifacts disagreed with the campaign.
        reason: &'static str,
    },
    /// A sampling-statistics computation failed (out-of-range margin,
    /// probability or sample count).
    Stats(StatsError),
    /// The campaign configuration cannot be run exhaustively (multi-bit
    /// cardinality, tag-array target, or an adaptive spec — equivalence
    /// classes are defined per single data-array bit and enumerated, not
    /// sampled).
    ExhaustiveUnsupported {
        /// Which part of the configuration is incompatible.
        reason: &'static str,
    },
    /// The structure's live-class census exceeds the configured cap
    /// (`MBU_EXHAUSTIVE_MAX_CLASSES`) — the campaign would be intractable,
    /// so it is refused rather than silently truncated.
    ClassCapExceeded {
        /// Live (must-simulate) classes of the partition.
        classes: u64,
        /// The configured cap.
        cap: u64,
    },
    /// The segment-capture observation run failed or produced a partition
    /// that does not exactly cover the fault space.
    PartitionFailed {
        /// What went wrong.
        reason: String,
    },
    /// A class-range was empty or did not fit the plan's live-class count —
    /// a shard-planner bug, not a fault effect.
    InvalidClassRange {
        /// Requested range start (inclusive).
        start: usize,
        /// Requested range end (exclusive).
        end: usize,
        /// The plan's live-class count.
        classes: usize,
    },
    /// Finalization received class outcomes that do not cover every live
    /// class exactly once.
    IncompleteClassCover {
        /// Live classes with no (or duplicate) outcome.
        missing: u64,
    },
}

impl From<StatsError> for CampaignError {
    fn from(e: StatsError) -> Self {
        CampaignError::Stats(e)
    }
}

impl fmt::Display for CampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CampaignError::ZeroRuns => f.write_str("campaign needs at least one run"),
            CampaignError::CardinalityTooLarge { faults, cluster } => write!(
                f,
                "fault cardinality must fit the cluster ({faults} bits in a {cluster} window)"
            ),
            CampaignError::TagArrayUnsupported { component } => write!(
                f,
                "tag-array injection is only defined for caches (got {component})"
            ),
            CampaignError::GoldenRunFailed { workload, end } => write!(
                f,
                "fault-free run of {workload} must exit cleanly, got {end:?}"
            ),
            CampaignError::WorkerPanicked => {
                f.write_str("campaign worker thread panicked outside an isolated run")
            }
            CampaignError::InvalidAdaptiveSpec { reason } => {
                write!(f, "invalid adaptive-sampling spec: {reason}")
            }
            CampaignError::InvalidRunRange { start, end, runs } => write!(
                f,
                "run-range [{start}..{end}) is empty or outside the campaign's 0..{runs}"
            ),
            CampaignError::ArtifactMismatch { reason } => {
                write!(f, "golden artifacts do not match this campaign: {reason}")
            }
            CampaignError::Stats(e) => write!(f, "sampling statistics: {e}"),
            CampaignError::ExhaustiveUnsupported { reason } => {
                write!(f, "configuration cannot run exhaustively: {reason}")
            }
            CampaignError::ClassCapExceeded { classes, cap } => write!(
                f,
                "{classes} live equivalence classes exceed the {cap}-class cap \
                 (raise MBU_EXHAUSTIVE_MAX_CLASSES or use stratified sampling)"
            ),
            CampaignError::PartitionFailed { reason } => {
                write!(f, "fault-equivalence partition failed: {reason}")
            }
            CampaignError::InvalidClassRange {
                start,
                end,
                classes,
            } => write!(
                f,
                "class-range [{start}..{end}) is empty or outside the plan's 0..{classes}"
            ),
            CampaignError::IncompleteClassCover { missing } => write!(
                f,
                "exhaustive finalization is missing outcomes for {missing} live classes"
            ),
        }
    }
}

impl std::error::Error for CampaignError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_keep_legacy_panic_substrings() {
        // The panicking wrappers' `#[should_panic(expected = ...)]` tests
        // match on these fragments.
        assert!(CampaignError::ZeroRuns
            .to_string()
            .contains("at least one run"));
        assert!(CampaignError::CardinalityTooLarge {
            faults: 10,
            cluster: ClusterSpec::DEFAULT
        }
        .to_string()
        .contains("fit the cluster"));
        assert!(CampaignError::TagArrayUnsupported {
            component: HwComponent::DTlb
        }
        .to_string()
        .contains("only defined for caches"));
        assert!(CampaignError::GoldenRunFailed {
            workload: Workload::Sha,
            end: RunEnd::CycleLimit
        }
        .to_string()
        .contains("must exit cleanly"));
    }
}
