//! Fault-effect classification (paper §III.C).

use mbu_cpu::{RunEnd, RunResult};
use std::fmt;

/// The five fault-effect classes of the paper's §III.C.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FaultEffect {
    /// The run is indistinguishable from the fault-free run.
    Masked,
    /// The program finished but produced different output — silent data
    /// corruption.
    Sdc,
    /// Process or system crash (trap raised at commit).
    Crash,
    /// The run exceeded the timeout limit (deadlock or livelock).
    Timeout,
    /// The simulator asserted (e.g. a corrupted translation produced a
    /// physical address outside the system map).
    Assert,
}

impl FaultEffect {
    /// All classes, in the paper's ordering.
    pub const ALL: [FaultEffect; 5] = [
        FaultEffect::Masked,
        FaultEffect::Sdc,
        FaultEffect::Crash,
        FaultEffect::Timeout,
        FaultEffect::Assert,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            FaultEffect::Masked => "Masked",
            FaultEffect::Sdc => "SDC",
            FaultEffect::Crash => "Crash",
            FaultEffect::Timeout => "Timeout",
            FaultEffect::Assert => "Assert",
        }
    }
}

impl fmt::Display for FaultEffect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Classifies one faulty run against the golden (fault-free) run.
///
/// `hit_cycle_limit` must be true when the simulation was stopped by the
/// campaign's timeout limit (4 × fault-free execution time).
pub fn classify(result: &RunResult, golden_output: &[u8], golden_code: u32) -> FaultEffect {
    match result.end {
        RunEnd::Exited { code } => {
            if result.output == golden_output && code == golden_code {
                FaultEffect::Masked
            } else {
                FaultEffect::Sdc
            }
        }
        RunEnd::Crashed(_) => FaultEffect::Crash,
        RunEnd::Assert { .. } => FaultEffect::Assert,
        RunEnd::CycleLimit => FaultEffect::Timeout,
    }
}

/// Aggregated class counts for a campaign.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClassCounts {
    /// Masked runs.
    pub masked: u64,
    /// Silent-data-corruption runs.
    pub sdc: u64,
    /// Crashed runs.
    pub crash: u64,
    /// Timed-out runs.
    pub timeout: u64,
    /// Simulator-assert runs.
    pub assert_: u64,
}

impl ClassCounts {
    /// Creates empty counts.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one classified run.
    pub fn record(&mut self, effect: FaultEffect) {
        self.record_weighted(effect, 1);
    }

    /// Records `weight` faults sharing one classification — how the
    /// exhaustive engine credits a whole equivalence class from its single
    /// simulated representative.
    pub fn record_weighted(&mut self, effect: FaultEffect, weight: u64) {
        match effect {
            FaultEffect::Masked => self.masked += weight,
            FaultEffect::Sdc => self.sdc += weight,
            FaultEffect::Crash => self.crash += weight,
            FaultEffect::Timeout => self.timeout += weight,
            FaultEffect::Assert => self.assert_ += weight,
        }
    }

    /// Count for one class.
    pub fn count(&self, effect: FaultEffect) -> u64 {
        match effect {
            FaultEffect::Masked => self.masked,
            FaultEffect::Sdc => self.sdc,
            FaultEffect::Crash => self.crash,
            FaultEffect::Timeout => self.timeout,
            FaultEffect::Assert => self.assert_,
        }
    }

    /// Total classified runs.
    pub fn total(&self) -> u64 {
        FaultEffect::ALL.iter().map(|&e| self.count(e)).sum()
    }

    /// Fraction of runs in one class (0 when empty).
    pub fn fraction(&self, effect: FaultEffect) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            self.count(effect) as f64 / t as f64
        }
    }

    /// The architectural vulnerability factor: the probability that a fault
    /// leads to any visible failure (`1 − masked fraction`; 0 when no runs
    /// have been recorded).
    pub fn avf(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            1.0 - self.fraction(FaultEffect::Masked)
        }
    }

    /// Merges counts from another campaign shard.
    pub fn merge(&mut self, other: &ClassCounts) {
        self.masked += other.masked;
        self.sdc += other.sdc;
        self.crash += other.crash;
        self.timeout += other.timeout;
        self.assert_ += other.assert_;
    }
}

impl fmt::Display for ClassCounts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "masked {} | sdc {} | crash {} | timeout {} | assert {} (AVF {:.2}%)",
            self.masked,
            self.sdc,
            self.crash,
            self.timeout,
            self.assert_,
            self.avf() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbu_isa::interp::Trap;

    fn run(end: RunEnd, output: &[u8]) -> RunResult {
        RunResult {
            end,
            output: output.to_vec(),
            cycles: 100,
            instructions: 50,
        }
    }

    #[test]
    fn classification_matches_paper_definitions() {
        let golden = vec![1, 2, 3];
        assert_eq!(
            classify(&run(RunEnd::Exited { code: 0 }, &golden), &golden, 0),
            FaultEffect::Masked
        );
        assert_eq!(
            classify(&run(RunEnd::Exited { code: 0 }, &[9]), &golden, 0),
            FaultEffect::Sdc
        );
        assert_eq!(
            classify(&run(RunEnd::Exited { code: 1 }, &golden), &golden, 0),
            FaultEffect::Sdc,
            "changed exit code is silent corruption"
        );
        assert_eq!(
            classify(
                &run(RunEnd::Crashed(Trap::DivisionByZero { pc: 0 }), &golden),
                &golden,
                0
            ),
            FaultEffect::Crash
        );
        assert_eq!(
            classify(
                &run(RunEnd::Assert { pa: 0xFFFF_0000 }, &golden),
                &golden,
                0
            ),
            FaultEffect::Assert
        );
        assert_eq!(
            classify(&run(RunEnd::CycleLimit, &golden), &golden, 0),
            FaultEffect::Timeout
        );
    }

    #[test]
    fn counts_fractions_sum_to_one() {
        let mut c = ClassCounts::new();
        for (e, n) in [
            (FaultEffect::Masked, 70),
            (FaultEffect::Sdc, 15),
            (FaultEffect::Crash, 10),
            (FaultEffect::Timeout, 4),
            (FaultEffect::Assert, 1),
        ] {
            for _ in 0..n {
                c.record(e);
            }
        }
        assert_eq!(c.total(), 100);
        let sum: f64 = FaultEffect::ALL.iter().map(|&e| c.fraction(e)).sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert!((c.avf() - 0.30).abs() < 1e-12);
    }

    #[test]
    fn merge_adds_componentwise() {
        let mut a = ClassCounts {
            masked: 1,
            sdc: 2,
            crash: 3,
            timeout: 4,
            assert_: 5,
        };
        let b = ClassCounts {
            masked: 10,
            sdc: 20,
            crash: 30,
            timeout: 40,
            assert_: 50,
        };
        a.merge(&b);
        assert_eq!(a.total(), 165);
        assert_eq!(a.sdc, 22);
    }

    #[test]
    fn empty_counts_have_zero_avf() {
        let c = ClassCounts::new();
        assert_eq!(c.avf(), 0.0);
        assert_eq!(c.fraction(FaultEffect::Masked), 0.0);
    }
}
