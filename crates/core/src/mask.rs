//! Spatial multi-bit fault-mask generation (paper §III.B).
//!
//! A fault is modeled as `N` distinct bit flips inside an `X × Y` cluster of
//! physically adjacent SRAM cells. The cluster is placed at a uniformly
//! random position of the target structure's bit array; the flipped cells
//! are chosen uniformly inside the cluster. Patterns whose flips happen to
//! fit a smaller window are deliberately *kept* — as the paper notes, this
//! includes all smaller sub-clusters in the analysis, unlike the MBU coding
//! of Ibe et al. which normalizes to the minimal bounding box.

use crate::rng::Rng64;
use mbu_sram::{BitCoord, Geometry};
use std::fmt;

/// Cluster window dimensions (rows × cols).
///
/// The paper uses a 3 × 3 cluster: quadruple-bit and larger upsets have
/// virtually zero rates in the technology data (Table VI), so 1–3 flips in
/// a 3 × 3 window cover the realistic patterns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ClusterSpec {
    /// Cluster rows (X).
    pub rows: usize,
    /// Cluster columns (Y).
    pub cols: usize,
}

impl ClusterSpec {
    /// The paper's default 3 × 3 cluster.
    pub const DEFAULT: ClusterSpec = ClusterSpec { rows: 3, cols: 3 };

    /// Creates a cluster spec.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "cluster dimensions must be nonzero");
        Self { rows, cols }
    }

    /// Number of cells in the cluster.
    pub fn cells(&self) -> usize {
        self.rows * self.cols
    }
}

impl Default for ClusterSpec {
    fn default() -> Self {
        Self::DEFAULT
    }
}

impl fmt::Display for ClusterSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}", self.rows, self.cols)
    }
}

/// A concrete fault mask: the absolute coordinates to flip in the target
/// structure, plus the cluster-relative pattern for reporting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultMask {
    /// Absolute bit coordinates in the target structure's geometry.
    pub coords: Vec<BitCoord>,
    /// Cluster origin (top-left) in the target geometry.
    pub origin: BitCoord,
    /// Cluster window this mask was drawn in.
    pub cluster: ClusterSpec,
}

impl FaultMask {
    /// Number of flipped bits (the fault cardinality).
    pub fn cardinality(&self) -> usize {
        self.coords.len()
    }

    /// Renders the cluster-relative pattern as an ASCII grid (`X` = flipped
    /// cell), in the style of the paper's Table II.
    pub fn pattern(&self) -> String {
        let mut grid = vec![vec!['.'; self.cluster.cols]; self.cluster.rows];
        for c in &self.coords {
            grid[c.row - self.origin.row][c.col - self.origin.col] = 'X';
        }
        grid.into_iter()
            .map(|row| row.into_iter().collect::<String>())
            .collect::<Vec<_>>()
            .join("\n")
    }
}

impl fmt::Display for FaultMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}-bit fault at {} in a {} cluster",
            self.cardinality(),
            self.origin,
            self.cluster
        )
    }
}

/// The sMBF mask generator.
///
/// # Example
///
/// ```
/// use mbu_gefin::mask::{ClusterSpec, MaskGenerator};
/// use mbu_sram::Geometry;
///
/// let mut gen = MaskGenerator::seeded(7, ClusterSpec::DEFAULT);
/// let mask = gen.generate(Geometry::new(256, 1024), 3);
/// assert_eq!(mask.cardinality(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct MaskGenerator {
    rng: Rng64,
    cluster: ClusterSpec,
}

impl MaskGenerator {
    /// Creates a generator with a deterministic seed.
    pub fn seeded(seed: u64, cluster: ClusterSpec) -> Self {
        Self {
            rng: Rng64::seed_from_u64(seed),
            cluster,
        }
    }

    /// The cluster window used by this generator.
    pub fn cluster(&self) -> ClusterSpec {
        self.cluster
    }

    /// Generates a mask with `cardinality` distinct flips inside a randomly
    /// placed cluster. If the target geometry is smaller than the cluster in
    /// a dimension, the window shrinks to fit.
    ///
    /// # Panics
    ///
    /// Panics if `cardinality` is zero or exceeds the (possibly shrunk)
    /// cluster capacity.
    pub fn generate(&mut self, geometry: Geometry, cardinality: usize) -> FaultMask {
        let win_rows = self.cluster.rows.min(geometry.rows());
        let win_cols = self.cluster.cols.min(geometry.cols());
        let window = ClusterSpec::new(win_rows, win_cols);
        assert!(
            cardinality >= 1 && cardinality <= window.cells(),
            "cardinality {cardinality} does not fit a {window} cluster"
        );
        let max_row = geometry.rows() - win_rows;
        let max_col = geometry.cols() - win_cols;
        let origin = BitCoord::new(
            self.rng.gen_range(0..=max_row),
            self.rng.gen_range(0..=max_col),
        );
        // Partial Fisher–Yates over the window cells.
        let mut cells: Vec<usize> = (0..window.cells()).collect();
        let mut coords = Vec::with_capacity(cardinality);
        for k in 0..cardinality {
            let pick = self.rng.gen_range(k..cells.len());
            cells.swap(k, pick);
            let cell = cells[k];
            coords.push(BitCoord::new(
                origin.row + cell / win_cols,
                origin.col + cell % win_cols,
            ));
        }
        coords.sort_unstable();
        FaultMask {
            coords,
            origin,
            cluster: window,
        }
    }

    /// Draws a uniformly random injection cycle in `[0, fault_free_cycles)`.
    ///
    /// # Panics
    ///
    /// Panics if `fault_free_cycles` is zero.
    pub fn injection_cycle(&mut self, fault_free_cycles: u64) -> u64 {
        assert!(
            fault_free_cycles > 0,
            "fault-free run must take at least one cycle"
        );
        self.rng.gen_range(0..fault_free_cycles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom() -> Geometry {
        Geometry::new(64, 128)
    }

    #[test]
    fn masks_have_requested_cardinality_and_distinct_cells() {
        let mut g = MaskGenerator::seeded(1, ClusterSpec::DEFAULT);
        for n in 1..=9 {
            let m = g.generate(geom(), n);
            assert_eq!(m.cardinality(), n);
            let mut c = m.coords.clone();
            c.dedup();
            assert_eq!(c.len(), n, "flips must be distinct");
        }
    }

    #[test]
    fn flips_stay_inside_the_cluster_window() {
        let mut g = MaskGenerator::seeded(2, ClusterSpec::DEFAULT);
        for _ in 0..500 {
            let m = g.generate(geom(), 3);
            for c in &m.coords {
                assert!(c.row >= m.origin.row && c.row < m.origin.row + 3);
                assert!(c.col >= m.origin.col && c.col < m.origin.col + 3);
                assert!(geom().contains(c.row, c.col));
            }
        }
    }

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = MaskGenerator::seeded(99, ClusterSpec::DEFAULT);
        let mut b = MaskGenerator::seeded(99, ClusterSpec::DEFAULT);
        for _ in 0..50 {
            assert_eq!(a.generate(geom(), 2), b.generate(geom(), 2));
            assert_eq!(a.injection_cycle(1000), b.injection_cycle(1000));
        }
    }

    #[test]
    fn cluster_placement_covers_the_array() {
        let mut g = MaskGenerator::seeded(3, ClusterSpec::DEFAULT);
        let mut seen_first_row = false;
        let mut seen_last_row = false;
        for _ in 0..2000 {
            let m = g.generate(geom(), 1);
            if m.origin.row == 0 {
                seen_first_row = true;
            }
            if m.origin.row == 64 - 3 {
                seen_last_row = true;
            }
        }
        assert!(
            seen_first_row && seen_last_row,
            "placement must span the array"
        );
    }

    #[test]
    fn window_shrinks_for_narrow_structures() {
        // A 2-row structure cannot host a 3-row cluster.
        let mut g = MaskGenerator::seeded(4, ClusterSpec::DEFAULT);
        let m = g.generate(Geometry::new(2, 100), 3);
        assert_eq!(m.cluster, ClusterSpec::new(2, 3));
        for c in &m.coords {
            assert!(c.row < 2);
        }
    }

    #[test]
    fn pattern_renders_like_table_ii() {
        let mut g = MaskGenerator::seeded(5, ClusterSpec::DEFAULT);
        let m = g.generate(geom(), 2);
        let p = m.pattern();
        assert_eq!(p.matches('X').count(), 2);
        assert_eq!(p.lines().count(), 3);
        assert!(p.lines().all(|l| l.len() == 3));
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_cardinality_panics() {
        let mut g = MaskGenerator::seeded(6, ClusterSpec::DEFAULT);
        let _ = g.generate(geom(), 10);
    }

    #[test]
    fn injection_cycles_are_in_range() {
        let mut g = MaskGenerator::seeded(7, ClusterSpec::DEFAULT);
        for _ in 0..1000 {
            assert!(g.injection_cycle(123) < 123);
        }
    }
}
