//! Deterministic pseudo-random generator for mask generation and beam
//! emulation.
//!
//! The workspace builds fully offline, so `rand` is not available; this
//! module provides the small slice of its API the injector needs
//! (`seed_from_u64`, `gen`, `gen_range`) on top of xoshiro256** seeded via
//! SplitMix64. Streams are stable across platforms and releases: campaign
//! results for a given seed are part of the reproducibility contract
//! (checkpoint/resume relies on re-running a run index giving the same
//! fault), so **do not change the algorithm without bumping campaign
//! seeds**.

use std::ops::{Range, RangeInclusive};

/// A deterministic 64-bit PRNG (xoshiro256**, SplitMix64-seeded).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng64 {
    s: [u64; 4],
}

impl Rng64 {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Self {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let r = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        r
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "below(0)");
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Generates a value of `T` over its full/unit range (rand's `gen`).
    pub fn gen<T: RandomValue>(&mut self) -> T {
        T::random(self)
    }

    /// Uniform value in the given range (rand's `gen_range`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range<R: UniformRange>(&mut self, range: R) -> R::Value {
        range.sample(self)
    }
}

/// Types [`Rng64::gen`] can produce.
pub trait RandomValue {
    /// Draws one value.
    fn random(rng: &mut Rng64) -> Self;
}

impl RandomValue for u64 {
    fn random(rng: &mut Rng64) -> u64 {
        rng.next_u64()
    }
}

impl RandomValue for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn random(rng: &mut Rng64) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges [`Rng64::gen_range`] can sample uniformly.
pub trait UniformRange {
    /// The sampled type.
    type Value;
    /// Draws one value from the range.
    fn sample(self, rng: &mut Rng64) -> Self::Value;
}

impl UniformRange for Range<u64> {
    type Value = u64;
    fn sample(self, rng: &mut Rng64) -> u64 {
        assert!(self.start < self.end, "gen_range on empty range");
        self.start + rng.below(self.end - self.start)
    }
}

impl UniformRange for Range<usize> {
    type Value = usize;
    fn sample(self, rng: &mut Rng64) -> usize {
        assert!(self.start < self.end, "gen_range on empty range");
        self.start + rng.below((self.end - self.start) as u64) as usize
    }
}

impl UniformRange for RangeInclusive<usize> {
    type Value = usize;
    fn sample(self, rng: &mut Rng64) -> usize {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range on empty range");
        lo + rng.below((hi - lo) as u64 + 1) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_seeds_give_equal_streams() {
        let mut a = Rng64::seed_from_u64(42);
        let mut b = Rng64::seed_from_u64(42);
        for _ in 0..256 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng64::seed_from_u64(1);
        let mut b = Rng64::seed_from_u64(2);
        assert!((0..16).any(|_| a.next_u64() != b.next_u64()));
    }

    #[test]
    fn ranges_are_honored_and_cover_endpoints() {
        let mut rng = Rng64::seed_from_u64(7);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..2000 {
            let v = rng.gen_range(3usize..=7);
            assert!((3..=7).contains(&v));
            seen_lo |= v == 3;
            seen_hi |= v == 7;
            let w = rng.gen_range(10u64..20);
            assert!((10..20).contains(&w));
        }
        assert!(seen_lo && seen_hi, "inclusive endpoints must both occur");
    }

    #[test]
    fn unit_f64_stays_in_unit_interval() {
        let mut rng = Rng64::seed_from_u64(9);
        for _ in 0..2000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = Rng64::seed_from_u64(0);
        let _ = rng.gen_range(5u64..5);
    }
}
