//! Technology-node data and the aggregate multi-bit AVF (paper §V).
//!
//! The per-node multi-bit upset rates (Table VI) and raw FIT/bit rates
//! (Table VII) come from Ibe et al.'s neutron-beam characterization, the
//! same single source the paper uses for consistency. Component sizes
//! (Table VIII) are the bit counts of the six injected structures.

use crate::avf::ComponentAvf;
use mbu_cpu::HwComponent;
use std::fmt;

/// A fabrication technology node from 250 nm down to 22 nm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TechNode {
    /// 250 nm.
    N250,
    /// 180 nm.
    N180,
    /// 130 nm.
    N130,
    /// 90 nm.
    N90,
    /// 65 nm.
    N65,
    /// 45 nm.
    N45,
    /// 32 nm.
    N32,
    /// 22 nm.
    N22,
}

impl TechNode {
    /// All eight nodes, oldest (largest) first.
    pub const ALL: [TechNode; 8] = [
        TechNode::N250,
        TechNode::N180,
        TechNode::N130,
        TechNode::N90,
        TechNode::N65,
        TechNode::N45,
        TechNode::N32,
        TechNode::N22,
    ];

    /// Feature size in nanometres.
    pub fn nm(self) -> u32 {
        match self {
            TechNode::N250 => 250,
            TechNode::N180 => 180,
            TechNode::N130 => 130,
            TechNode::N90 => 90,
            TechNode::N65 => 65,
            TechNode::N45 => 45,
            TechNode::N32 => 32,
            TechNode::N22 => 22,
        }
    }

    /// Multi-bit upset rates `[single, double, triple]` for this node
    /// (paper Table VI; 4-bit-and-larger rates are folded into the triple
    /// class as in the paper).
    pub fn mbu_rates(self) -> [f64; 3] {
        match self {
            TechNode::N250 => [1.000, 0.000, 0.000],
            TechNode::N180 => [0.964, 0.036, 0.000],
            TechNode::N130 => [0.934, 0.044, 0.022],
            TechNode::N90 => [0.878, 0.096, 0.026],
            TechNode::N65 => [0.816, 0.161, 0.023],
            TechNode::N45 => [0.722, 0.230, 0.048],
            TechNode::N32 => [0.653, 0.291, 0.056],
            TechNode::N22 => [0.553, 0.344, 0.103],
        }
    }

    /// Raw soft-error FIT rate per bit (paper Table VII): rises to a peak
    /// at 130 nm, then falls as cell area shrinks faster than sensitivity
    /// grows.
    pub fn raw_fit_per_bit(self) -> f64 {
        let x = match self {
            TechNode::N250 => 47.0,
            TechNode::N180 => 85.0,
            TechNode::N130 => 106.0,
            TechNode::N90 => 100.0,
            TechNode::N65 => 85.0,
            TechNode::N45 => 58.0,
            TechNode::N32 => 38.0,
            TechNode::N22 => 23.0,
        };
        x * 1e-8
    }
}

impl fmt::Display for TechNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} nm", self.nm())
    }
}

/// Component sizes in bits (paper Table VIII), used by the FIT model.
pub fn component_bits(component: HwComponent) -> u64 {
    match component {
        HwComponent::L1D => 262_144,
        HwComponent::L1I => 262_144,
        HwComponent::L2 => 4_194_304,
        HwComponent::RegFile => 2_112,
        HwComponent::ITlb => 1_024,
        HwComponent::DTlb => 1_024,
    }
}

/// The aggregate multi-bit AVF of a component at a technology node
/// (paper Eq. 3):
///
/// ```text
/// Node_AVF(c) = Σᵢ AVFᵢ(c) · f(i),   i ∈ {1, 2, 3}
/// ```
pub fn node_avf(avf: &ComponentAvf, node: TechNode) -> f64 {
    let f = node.mbu_rates();
    avf.single * f[0] + avf.double * f[1] + avf.triple * f[2]
}

/// Aggregate AVF under arbitrary `[single, double, triple]` rates —
/// the general form of Eq. 3, usable with projected rates for nodes beyond
/// the paper's data (see [`projected`]).
///
/// # Panics
///
/// Panics if the rates do not sum to ~1.
pub fn node_avf_with_rates(avf: &ComponentAvf, rates: [f64; 3]) -> f64 {
    let sum: f64 = rates.iter().sum();
    assert!((sum - 1.0).abs() < 1e-6, "rates must sum to 1, got {sum}");
    avf.single * rates[0] + avf.double * rates[1] + avf.triple * rates[2]
}

/// Projected post-22 nm technology data (extension).
///
/// The paper deliberately stops at 22 nm to keep a single data source, but
/// its conclusion notes the method applies directly to newer nodes where
/// MBU rates are *higher*. These projections extrapolate the Table VI trend
/// (log-linear in feature size) and the FinFET raw-FIT reductions reported
/// by Seifert et al.; they are clearly marked as projections, not
/// measurements.
pub mod projected {
    /// Projected 14 nm FinFET MBU rates `[single, double, triple]`.
    pub fn finfet_14nm_rates() -> [f64; 3] {
        [0.47, 0.38, 0.15]
    }

    /// Projected 14 nm FinFET raw FIT/bit (FinFETs are markedly less
    /// sensitive than planar CMOS).
    pub fn finfet_14nm_raw_fit() -> f64 {
        10.0e-8
    }
}

/// The single-bit-only AVF baseline for a node (what a single-bit-only
/// assessment would report — identical for every node, and equal to the
/// 250 nm value, as the paper's Fig. 7 green bars show).
pub fn single_bit_avf(avf: &ComponentAvf) -> f64 {
    avf.single
}

/// The *assessment gap*: the relative error of a single-bit-only analysis
/// at this node, `(Node_AVF − AVF₁) / AVF₁` (e.g. 35 % for the register
/// file at 22 nm).
pub fn assessment_gap(avf: &ComponentAvf, node: TechNode) -> f64 {
    (node_avf(avf, node) - avf.single) / avf.single
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_sum_to_one() {
        for node in TechNode::ALL {
            let s: f64 = node.mbu_rates().iter().sum();
            assert!((s - 1.0).abs() < 1e-9, "{node}: {s}");
        }
    }

    #[test]
    fn mbu_share_grows_monotonically() {
        let mut prev = -1.0;
        for node in TechNode::ALL {
            let mbu = 1.0 - node.mbu_rates()[0];
            assert!(mbu > prev, "{node}");
            prev = mbu;
        }
    }

    #[test]
    fn raw_fit_peaks_at_130nm() {
        let peak = TechNode::N130.raw_fit_per_bit();
        for node in TechNode::ALL {
            assert!(node.raw_fit_per_bit() <= peak);
        }
        assert!(TechNode::N22.raw_fit_per_bit() < TechNode::N250.raw_fit_per_bit());
    }

    #[test]
    fn component_bits_match_table_viii() {
        let total: u64 = HwComponent::ALL.iter().map(|&c| component_bits(c)).sum();
        assert_eq!(total, 262_144 * 2 + 4_194_304 + 2_112 + 1_024 * 2);
    }

    #[test]
    fn node_avf_at_250nm_is_single_bit_avf() {
        let a = ComponentAvf::new(0.20, 0.30, 0.36);
        assert!((node_avf(&a, TechNode::N250) - 0.20).abs() < 1e-12);
    }

    #[test]
    fn node_avf_is_convex_and_monotone_in_node() {
        let a = ComponentAvf::new(0.20, 0.30, 0.36);
        let mut prev = 0.0;
        for node in TechNode::ALL {
            let v = node_avf(&a, node);
            assert!(v >= a.single && v <= a.triple, "convex combination bounds");
            assert!(
                v >= prev,
                "AVF grows toward denser nodes when AVF₂,₃ > AVF₁"
            );
            prev = v;
        }
    }

    #[test]
    fn register_file_gap_is_35_percent_at_22nm() {
        // Paper: Fig. 7 reports up to 35 % AVF difference for the register
        // file at 22 nm; verify with the paper's own Table V numbers.
        let rf = ComponentAvf::new(0.1095, 0.1865, 0.2301);
        let gap = assessment_gap(&rf, TechNode::N22);
        assert!((gap - 0.355).abs() < 0.01, "got {gap}");
    }

    #[test]
    fn l1i_matches_fig7_caption() {
        // Fig. 7 caption: L1I single-bit AVF 12 %, 22 nm multi-bit ~16 %, a
        // ~33 % difference.
        let l1i = ComponentAvf::new(0.1201, 0.1957, 0.2514);
        let v = node_avf(&l1i, TechNode::N22);
        assert!((v - 0.16).abs() < 0.005, "got {v}");
        assert!((assessment_gap(&l1i, TechNode::N22) - 0.33).abs() < 0.01);
    }
}

#[cfg(test)]
mod projected_tests {
    use super::*;

    #[test]
    fn projected_rates_are_a_distribution_beyond_22nm() {
        let r = projected::finfet_14nm_rates();
        assert!((r.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        // Strictly more multi-bit share than the last measured node.
        assert!(r[0] < TechNode::N22.mbu_rates()[0]);
        assert!(projected::finfet_14nm_raw_fit() < TechNode::N22.raw_fit_per_bit());
    }

    #[test]
    fn node_avf_with_rates_generalizes_eq3() {
        let a = ComponentAvf::new(0.2, 0.3, 0.4);
        for node in TechNode::ALL {
            assert!((node_avf_with_rates(&a, node.mbu_rates()) - node_avf(&a, node)).abs() < 1e-12);
        }
        let v = node_avf_with_rates(&a, projected::finfet_14nm_rates());
        assert!(
            v > node_avf(&a, TechNode::N22),
            "projected node has higher aggregate AVF"
        );
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn bad_rates_rejected() {
        let _ = node_avf_with_rates(&ComponentAvf::new(0.1, 0.1, 0.1), [0.5, 0.2, 0.1]);
    }
}
