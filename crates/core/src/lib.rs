//! **mbu-gefin** — a GeFIN-style microarchitecture-level fault injector
//! extended with *spatial multi-bit fault* (sMBF) generation, plus the full
//! AVF / technology-node / FIT analysis pipeline of the paper
//! *"Multi-Bit Upsets Vulnerability Analysis of Modern Microprocessors"*
//! (IISWC 2019).
//!
//! The crate drives the `mbu-cpu` out-of-order simulator:
//!
//! 1. [`mask`] generates fault masks — `N` distinct bit flips inside an
//!    `X × Y` cluster placed at a random position of a structure's SRAM
//!    geometry (paper §III.B, Table II);
//! 2. [`campaign`] runs statistical fault-injection campaigns: a fault-free
//!    golden run, then one simulation per mask with the flip applied at a
//!    random cycle, classified per §III.C into
//!    Masked / SDC / Crash / Timeout / Assert;
//! 3. [`stats`] sizes campaigns and reports error margins per Leveugle
//!    et al. (2 000 runs ⇒ 2.88 % at 99 % confidence);
//! 4. [`avf`] turns class counts into AVFs, execution-time-weighted AVFs
//!    (Eq. 2) and the paper's Table IV/V derived views;
//! 5. [`tech`] and [`fit`] apply the per-node MBU rates (Table VI), raw FIT
//!    rates (Table VII) and structure sizes (Table VIII) to produce the
//!    aggregate multi-bit AVFs (Eq. 3, Fig. 7) and CPU FIT rates
//!    (Eq. 4, Fig. 8);
//! 6. [`paper`] embeds the paper's published measurements so the analysis
//!    stage can be validated against the paper's own derived numbers;
//! 7. [`report`] renders ASCII tables and CSV series for every table and
//!    figure.
//!
//! # Example: one small campaign
//!
//! ```no_run
//! use mbu_gefin::campaign::{Campaign, CampaignConfig};
//! use mbu_cpu::HwComponent;
//! use mbu_workloads::Workload;
//!
//! let config = CampaignConfig::new(Workload::Sha, HwComponent::L1D, 2)
//!     .runs(100)
//!     .seed(42);
//! let result = Campaign::new(config).run();
//! println!("AVF = {:.2}%", result.counts.avf() * 100.0);
//! ```

#![forbid(unsafe_code)]

pub mod avf;
pub mod beam;
pub mod campaign;
pub mod classify;
pub mod error;
pub mod exhaustive;
pub mod fit;
pub mod integrity;
pub mod json;
pub mod mask;
pub mod paper;
pub mod report;
pub mod rng;
pub mod stats;
pub mod tech;

pub use avf::{ClassBreakdown, ComponentAvf};
pub use campaign::{
    campaign_margin, AdaptiveSpec, Anomaly, AnomalyKind, AnomalyLog, Campaign, CampaignConfig,
    CampaignResult, RunHook, UnitSpec,
};
pub use classify::{ClassCounts, FaultEffect};
pub use error::CampaignError;
pub use exhaustive::{
    ClassOutcome, ExhaustivePlan, ExhaustiveResult, ExhaustiveSpec, StratifiedResult,
    StratifiedSpec,
};
pub use integrity::{golden_fingerprint, GoldenFingerprint};
pub use mask::{ClusterSpec, FaultMask, MaskGenerator};
pub use mbu_snap::{GoldenArtifacts, SnapshotSpec, SnapshotStats, SnapshotStore};
pub use stats::StatsError;
pub use tech::TechNode;
