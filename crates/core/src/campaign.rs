//! Statistical fault-injection campaigns (paper §III.A).
//!
//! A campaign fixes a (workload, component, fault cardinality) triple and
//! performs `runs` independent injection simulations:
//!
//! 1. one fault-free **golden run** establishes the reference output and the
//!    fault-free execution time `T`;
//! 2. each injection run draws a random injection cycle in `[0, T)` and a
//!    random fault mask, simulates up to the injection point, applies the
//!    bit flips, and continues until exit, crash, assert, or the timeout
//!    limit of `4 × T` (paper §III.C);
//! 3. outcomes are classified and aggregated into [`ClassCounts`].
//!
//! Runs are distributed over worker threads; results are deterministic for
//! a given seed regardless of thread count, because each run's RNG is
//! seeded from `(campaign seed, run index)`.
//!
//! # Resilience
//!
//! Long sweeps must survive individual bad runs, so the engine isolates
//! every injection run:
//!
//! * **Panic isolation** — each run executes under
//!   [`std::panic::catch_unwind`]. A panic inside the simulator is exactly
//!   what a hardware assert models (an internal invariant broken by the
//!   injected corruption), so a panicking run classifies as
//!   [`FaultEffect::Assert`] and the campaign keeps going. The panic payload
//!   and the run's seed are preserved in the campaign's [`AnomalyLog`] so
//!   the run can be replayed under a debugger.
//! * **Wall-clock watchdog** — a watchdog thread cancels any run that
//!   exceeds [`CampaignConfig::run_wall_budget`] via the simulator's
//!   cooperative cancel flag; the run classifies as
//!   [`FaultEffect::Timeout`] and is logged as an anomaly.
//! * **Typed errors** — configuration problems and failed golden runs are
//!   reported as [`CampaignError`] through [`Campaign::try_new`] /
//!   [`Campaign::try_run`]; the panicking [`Campaign::new`] / \
//!   [`Campaign::run`] remain as conveniences for tests and examples.

use crate::classify::{classify, ClassCounts, FaultEffect};
use crate::error::CampaignError;
use crate::mask::{ClusterSpec, FaultMask, MaskGenerator};
use crate::stats;
use crate::tech::component_bits;
use mbu_ace::LivenessOracle;
use mbu_cpu::{CoreConfig, HwComponent, RunEnd, Simulator};
use mbu_isa::Program;
use mbu_snap::{GoldenArtifacts, SnapshotSpec, SnapshotStats, SnapshotStore};
use mbu_sram::{BitCoord, Geometry, Restorable};
use mbu_workloads::Workload;
use std::fmt;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, Once};
use std::time::{Duration, Instant};

/// Which SRAM array of the target component to inject into.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum InjectionTarget {
    /// The component's storage/data array — the paper's target (Table VIII
    /// bit counts).
    #[default]
    DataArray,
    /// A cache's tag array (tag + valid + dirty bits) — the ablation target
    /// for tag-protection studies; only valid for the three caches.
    TagArray,
}

impl fmt::Display for InjectionTarget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InjectionTarget::DataArray => f.write_str("data array"),
            InjectionTarget::TagArray => f.write_str("tag array"),
        }
    }
}

/// A per-run hook: an arbitrary (possibly stateful) closure invoked with
/// the run index at the start of each injection run, inside the isolation
/// boundary. Cloning shares the underlying closure.
#[derive(Clone)]
pub struct RunHook(pub Arc<dyn Fn(usize) + Send + Sync>);

impl RunHook {
    /// Wraps a closure as a hook.
    pub fn new(hook: impl Fn(usize) + Send + Sync + 'static) -> Self {
        Self(Arc::new(hook))
    }
}

impl fmt::Debug for RunHook {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("RunHook(..)")
    }
}

/// Margin-driven adaptive sampling (paper §III.A readjustment, applied
/// online): after each batch of runs the achieved error margin is
/// recomputed with the *measured* AVF as the probability estimate, and the
/// campaign stops early once the target margin is met. A mostly-masked
/// campaign (small `p`) reaches the paper's 2.88 % target far before the
/// fixed 2 000 runs; a highly vulnerable one keeps sampling up to the
/// configured maximum.
///
/// Early stopping depends only on the deterministic per-run outcomes, so
/// adaptive campaigns remain reproducible across thread counts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveSpec {
    /// Stop once the achieved margin is at or below this target (e.g. the
    /// paper's 0.0288).
    pub target_margin: f64,
    /// Confidence z-value for the margin ([`stats::Z_99`] in the paper).
    pub z: f64,
    /// Never stop before this many runs, however tight the margin looks.
    pub min_runs: usize,
    /// Margin is re-evaluated every `batch` runs.
    pub batch: usize,
}

impl AdaptiveSpec {
    /// The paper's sampling target: 2.88 % margin at 99 % confidence,
    /// re-evaluated every 100 runs after at least 100.
    pub fn paper() -> Self {
        Self {
            target_margin: 0.0288,
            z: stats::Z_99,
            min_runs: 100,
            batch: 100,
        }
    }

    fn validate(&self) -> Result<(), CampaignError> {
        let reason = if !(self.target_margin > 0.0 && self.target_margin < 1.0) {
            Some("target margin must be in (0, 1)")
        } else if !(self.z.is_finite() && self.z > 0.0) {
            Some("z must be a positive finite number")
        } else if self.min_runs == 0 {
            Some("min_runs must be nonzero")
        } else if self.batch == 0 {
            Some("batch must be nonzero")
        } else {
            None
        };
        match reason {
            Some(reason) => Err(CampaignError::InvalidAdaptiveSpec { reason }),
            None => Ok(()),
        }
    }
}

/// Configuration of one injection campaign.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// The workload to run.
    pub workload: Workload,
    /// The hardware structure to inject into.
    pub component: HwComponent,
    /// Fault cardinality (bits flipped per injection), 1–3 in the paper.
    pub faults: usize,
    /// Number of injection runs (the paper uses 2 000; see [`crate::stats`]).
    pub runs: usize,
    /// Campaign seed; same seed ⇒ same results.
    pub seed: u64,
    /// Cluster window for spatial multi-bit faults.
    pub cluster: ClusterSpec,
    /// Core configuration.
    pub core: CoreConfig,
    /// Timeout limit as a multiple of the fault-free execution time.
    pub timeout_factor: u64,
    /// Worker threads (0 ⇒ available parallelism).
    pub threads: usize,
    /// Which array of the component to inject into.
    pub target: InjectionTarget,
    /// Collect a per-run fault list ([`RunDetail`]) in the result.
    pub collect_details: bool,
    /// Wall-clock budget per injection run. A run past its budget is
    /// cancelled by the watchdog thread and classified as
    /// [`FaultEffect::Timeout`]; `None` disables the watchdog. Watchdog
    /// cancellation depends on host speed, so it is the one knob that can
    /// make results non-deterministic — the generous default only fires on
    /// genuinely wedged runs.
    pub run_wall_budget: Option<Duration>,
    /// Consult a fault-free [`LivenessOracle`] before simulating each run:
    /// a mask whose flipped bits are all provably dead at the injection
    /// cycle classifies as [`FaultEffect::Masked`] without simulation. The
    /// oracle is conservative, so classifications are bit-identical with
    /// this on or off; skipped runs are counted in
    /// [`CampaignResult::oracle_skips`]. Only applies to
    /// [`InjectionTarget::DataArray`] campaigns.
    pub use_liveness_oracle: bool,
    /// Margin-driven adaptive sampling: when set, [`CampaignConfig::runs`]
    /// becomes the *maximum* and the campaign stops early once the achieved
    /// error margin (recomputed after every batch with the measured AVF as
    /// `p`) meets the target. `None` keeps the classic fixed-run behaviour.
    pub adaptive: Option<AdaptiveSpec>,
    /// Checkpointed fast-forward injection: record a [`SnapshotStore`] of
    /// golden-run checkpoints, start each injection run from the nearest
    /// checkpoint at or before its injection cycle, and stop a run early as
    /// `Masked` once a post-fault reconvergence check proves its reachable
    /// state identical to the golden run's. Classifications are
    /// bit-identical with this on or off (see `mbu_snap`); composes freely
    /// with [`CampaignConfig::use_liveness_oracle`] and
    /// [`CampaignConfig::adaptive`].
    pub use_snapshots: bool,
    /// Recording parameters (interval, memory cap) for the snapshot store;
    /// only consulted when [`CampaignConfig::use_snapshots`] is set.
    pub snapshot_spec: SnapshotSpec,
    /// Test-only fault hook, invoked with the run index at the start of each
    /// injection run *inside* the isolation boundary. Lets tests provoke
    /// panics and stalls in an otherwise healthy engine.
    #[doc(hidden)]
    pub run_hook: Option<RunHook>,
}

impl CampaignConfig {
    /// Creates a campaign with the paper's defaults (3 × 3 cluster,
    /// Cortex-A9-like core, 4 × timeout, 200 runs).
    pub fn new(workload: Workload, component: HwComponent, faults: usize) -> Self {
        Self {
            workload,
            component,
            faults,
            runs: 200,
            seed: 0x6EF1_2019,
            cluster: ClusterSpec::DEFAULT,
            core: CoreConfig::cortex_a9_like(),
            timeout_factor: 4,
            threads: 0,
            target: InjectionTarget::DataArray,
            collect_details: false,
            run_wall_budget: Some(Duration::from_secs(60)),
            use_liveness_oracle: false,
            adaptive: None,
            use_snapshots: false,
            snapshot_spec: SnapshotSpec::default(),
            run_hook: None,
        }
    }

    /// Sets the number of runs.
    pub fn runs(mut self, runs: usize) -> Self {
        self.runs = runs;
        self
    }

    /// Sets the campaign seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the worker-thread count.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the cluster window.
    pub fn cluster(mut self, cluster: ClusterSpec) -> Self {
        self.cluster = cluster;
        self
    }

    /// Targets the cache tag array instead of the data array (ablation).
    pub fn target(mut self, target: InjectionTarget) -> Self {
        self.target = target;
        self
    }

    /// Collects the per-run fault list in the result.
    pub fn collect_details(mut self, collect: bool) -> Self {
        self.collect_details = collect;
        self
    }

    /// Sets (or, with `None`, disables) the per-run wall-clock budget.
    pub fn run_wall_budget(mut self, budget: Option<Duration>) -> Self {
        self.run_wall_budget = budget;
        self
    }

    /// Enables (or disables) the provably-masked liveness-oracle fast path
    /// (see [`CampaignConfig::use_liveness_oracle`]).
    pub fn use_liveness_oracle(mut self, on: bool) -> Self {
        self.use_liveness_oracle = on;
        self
    }

    /// Enables (with `Some`) or disables margin-driven adaptive sampling
    /// (see [`CampaignConfig::adaptive`]).
    pub fn adaptive(mut self, spec: Option<AdaptiveSpec>) -> Self {
        self.adaptive = spec;
        self
    }

    /// Enables (or disables) checkpointed fast-forward injection
    /// (see [`CampaignConfig::use_snapshots`]).
    pub fn use_snapshots(mut self, on: bool) -> Self {
        self.use_snapshots = on;
        self
    }

    /// Sets the snapshot recording parameters
    /// (see [`CampaignConfig::snapshot_spec`]).
    pub fn snapshot_spec(mut self, spec: SnapshotSpec) -> Self {
        self.snapshot_spec = spec;
        self
    }

    /// Installs a test-only per-run hook (see [`CampaignConfig::run_hook`]).
    /// Accepts any `Fn(usize) + Send + Sync` — plain `fn` items and stateful
    /// capturing closures alike.
    #[doc(hidden)]
    pub fn with_run_hook(mut self, hook: impl Fn(usize) + Send + Sync + 'static) -> Self {
        self.run_hook = Some(RunHook::new(hook));
        self
    }
}

/// One injection run's record (the classic fault-list entry).
#[derive(Debug, Clone, PartialEq)]
pub struct RunDetail {
    /// Run index within the campaign.
    pub index: usize,
    /// Cycle the mask was applied at.
    pub inject_cycle: u64,
    /// The applied fault mask.
    pub mask: FaultMask,
    /// Classified outcome.
    pub effect: FaultEffect,
    /// Cycles the faulty run took.
    pub cycles: u64,
}

/// What kind of irregularity an [`Anomaly`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnomalyKind {
    /// The run panicked inside the isolation boundary; it was classified as
    /// [`FaultEffect::Assert`].
    Panic,
    /// The run exceeded its wall-clock budget and was cancelled by the
    /// watchdog; it was classified as [`FaultEffect::Timeout`].
    WallClock,
    /// The snapshot store hit its memory cap while recording and degraded
    /// to a sparser checkpoint interval (campaign-level, logged as run 0;
    /// classifications are unaffected, only the fast-forward granularity).
    SnapshotMemCap,
    /// The sweep-wide golden-artifact cache was disabled (`MBU_GOLDEN_CACHE`
    /// off), so every campaign re-ran its own golden execution (sweep-level,
    /// logged as run 0; classifications are unaffected, only wall-clock).
    GoldenCacheBypass,
    /// A distributed-sweep worker process died (exited, was killed, or its
    /// connection broke) while a work unit was in flight; the unit was
    /// retried on a surviving worker (fabric-level, logged with the unit's
    /// first run index; merged classifications are unaffected).
    WorkerLost,
    /// A distributed-sweep worker stopped heartbeating while a work unit was
    /// in flight and was declared dead by the supervisor's stall detector;
    /// the unit was retried on a surviving worker.
    WorkerStall,
    /// A distributed-sweep worker sent a frame the supervisor could not
    /// parse (garbage or truncated protocol data); the worker was dropped
    /// and its in-flight unit retried.
    ProtocolGarbage,
    /// A work unit failed deterministically on two or more distinct workers
    /// and was quarantined: the sweep completed *degraded* (the unit's runs
    /// are missing from the merged store) instead of aborting or silently
    /// retrying forever.
    UnitQuarantined,
    /// A TCP worker that had been declared lost reconnected with the same
    /// worker id and rejoined the pool; units it had persisted but never
    /// acknowledged were recovered from its shard store instead of re-run.
    WorkerRejoined,
    /// Free disk space under the shard directory fell below the configured
    /// watermark; the supervisor paused assigning new units (pending work
    /// queued, shard appends stopped) until space recovered, instead of
    /// running into raw ENOSPC mid-append.
    DiskPressure,
}

impl fmt::Display for AnomalyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnomalyKind::Panic => f.write_str("panic"),
            AnomalyKind::WallClock => f.write_str("wall-clock"),
            AnomalyKind::SnapshotMemCap => f.write_str("snapshot-mem-cap"),
            AnomalyKind::GoldenCacheBypass => f.write_str("golden-cache-bypass"),
            AnomalyKind::WorkerLost => f.write_str("worker-lost"),
            AnomalyKind::WorkerStall => f.write_str("worker-stall"),
            AnomalyKind::ProtocolGarbage => f.write_str("protocol-garbage"),
            AnomalyKind::UnitQuarantined => f.write_str("unit-quarantined"),
            AnomalyKind::WorkerRejoined => f.write_str("worker-rejoined"),
            AnomalyKind::DiskPressure => f.write_str("disk-pressure"),
        }
    }
}

/// One distributed-sweep work unit: a contiguous run-range
/// `[start, end)` of a single (component, workload, cardinality) campaign.
///
/// Run outcomes are deterministic per run index ([`derive_run_seed`]), so a
/// campaign's class counts are the sum of the counts of any disjoint
/// run-range cover — the shard planner exploits this to split campaigns
/// across worker processes, and the supervisor to split straggler tails for
/// work stealing. A full campaign is the unit `[0, runs)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct UnitSpec {
    /// Target component.
    pub component: HwComponent,
    /// The workload to run.
    pub workload: Workload,
    /// Fault cardinality.
    pub faults: usize,
    /// First run index of the range (inclusive).
    pub start: usize,
    /// One past the last run index of the range (exclusive).
    pub end: usize,
}

impl UnitSpec {
    /// The unit covering a whole campaign.
    pub fn whole(component: HwComponent, workload: Workload, faults: usize, runs: usize) -> Self {
        Self {
            component,
            workload,
            faults,
            start: 0,
            end: runs,
        }
    }

    /// The campaign this unit belongs to.
    pub fn campaign_key(&self) -> (HwComponent, Workload, usize) {
        (self.component, self.workload, self.faults)
    }

    /// Number of runs in the range.
    pub fn len(&self) -> usize {
        self.end.saturating_sub(self.start)
    }

    /// Whether the range is empty.
    pub fn is_empty(&self) -> bool {
        self.end <= self.start
    }

    /// The run-range as a `Range`.
    pub fn range(&self) -> std::ops::Range<usize> {
        self.start..self.end
    }

    /// Splits the unit at run index `mid` (absolute, not relative) into
    /// `[start, mid)` and `[mid, end)`. Returns `None` unless `mid` falls
    /// strictly inside the range (both halves must be non-empty).
    pub fn split_at(&self, mid: usize) -> Option<(UnitSpec, UnitSpec)> {
        if mid <= self.start || mid >= self.end {
            return None;
        }
        let mut head = *self;
        let mut tail = *self;
        head.end = mid;
        tail.start = mid;
        Some((head, tail))
    }
}

impl fmt::Display for UnitSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{}/{}-bit[{}..{})",
            self.component, self.workload, self.faults, self.start, self.end
        )
    }
}

/// The achieved error margin of `counts` for a campaign targeting
/// `component`, over the component's per-execution fault population, with
/// the measured AVF (clamped to `[0.01, 0.99]`) as the probability
/// estimate.
///
/// This is the exact computation a campaign applies to its own counts at
/// the end of a run; it is exposed as a free function so the distributed
/// shard merge can recompute a campaign's margin from summed partial
/// counts and land on the bit-identical `f64` a single-process sweep would
/// have stored.
pub fn campaign_margin(
    component: HwComponent,
    counts: &ClassCounts,
    fault_free_cycles: u64,
    z: f64,
) -> Result<f64, CampaignError> {
    let population = stats::fault_population(component_bits(component), fault_free_cycles.max(1));
    let samples = counts.total().clamp(1, population);
    let p = counts.avf().clamp(0.01, 0.99);
    Ok(stats::error_margin(population, samples, z, p)?)
}

/// One irregular run: enough context to replay it in isolation
/// (`MaskGenerator::seeded(run_seed, cluster)` reproduces the exact fault).
#[derive(Debug, Clone, PartialEq)]
pub struct Anomaly {
    /// Run index within the campaign.
    pub run_index: usize,
    /// The run's derived RNG seed.
    pub run_seed: u64,
    /// What happened.
    pub kind: AnomalyKind,
    /// The panic payload, or a description of the watchdog cancellation.
    pub message: String,
}

impl fmt::Display for Anomaly {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "run {} (seed 0x{:016x}) {}: {}",
            self.run_index, self.run_seed, self.kind, self.message
        )
    }
}

/// Per-campaign record of runs that panicked or blew their wall-clock
/// budget. Empty for a healthy campaign; entries are sorted by run index, so
/// the log is deterministic whenever the anomalies themselves are.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AnomalyLog {
    entries: Vec<Anomaly>,
}

impl AnomalyLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an anomaly.
    pub fn record(&mut self, anomaly: Anomaly) {
        self.entries.push(anomaly);
    }

    /// The recorded anomalies, sorted by run index.
    pub fn entries(&self) -> &[Anomaly] {
        &self.entries
    }

    /// Number of recorded anomalies.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the campaign was anomaly-free.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    fn merge(&mut self, other: AnomalyLog) {
        self.entries.extend(other.entries);
    }

    fn sort(&mut self) {
        self.entries.sort_by_key(|a| a.run_index);
    }
}

impl fmt::Display for AnomalyLog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.entries.is_empty() {
            return f.write_str("no anomalies");
        }
        writeln!(f, "{} anomalous run(s):", self.entries.len())?;
        for a in &self.entries {
            writeln!(f, "  {a}")?;
        }
        Ok(())
    }
}

/// Aggregated result of a campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignResult {
    /// The configuration that produced this result.
    pub workload: Workload,
    /// Target component.
    pub component: HwComponent,
    /// Fault cardinality.
    pub faults: usize,
    /// Class counts over all runs.
    pub counts: ClassCounts,
    /// Fault-free execution time in cycles.
    pub fault_free_cycles: u64,
    /// Fault-free committed instructions.
    pub fault_free_instructions: u64,
    /// Per-run fault list, present when
    /// [`CampaignConfig::collect_details`] was enabled.
    pub details: Option<Vec<RunDetail>>,
    /// Runs that panicked or were cancelled by the watchdog (empty for a
    /// healthy campaign).
    pub anomalies: AnomalyLog,
    /// Runs the liveness oracle classified as Masked without simulation
    /// (zero unless [`CampaignConfig::use_liveness_oracle`] was set).
    pub oracle_skips: u64,
    /// The error margin achieved by the executed runs, recomputed with the
    /// measured AVF as `p` (paper §III.A readjustment; the probability is
    /// clamped to `[0.01, 0.99]` so fully-masked campaigns stay
    /// computable). `None` for results loaded from pre-integrity (v1)
    /// checkpoint files.
    pub achieved_margin: Option<f64>,
    /// Snapshot-store bookkeeping — checkpoint count, interval, retained
    /// bytes, cap-forced thinning, fast-forwarded restores and early-Masked
    /// reconvergence exits. `None` unless
    /// [`CampaignConfig::use_snapshots`] was set.
    pub snapshot_stats: Option<SnapshotStats>,
}

impl CampaignResult {
    /// AVF of this campaign (`1 − masked fraction`).
    pub fn avf(&self) -> f64 {
        self.counts.avf()
    }
}

impl fmt::Display for CampaignResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} / {} / {}-bit: {}",
            self.component, self.workload, self.faults, self.counts
        )?;
        if !self.anomalies.is_empty() {
            write!(f, " [{} anomalies]", self.anomalies.len())?;
        }
        Ok(())
    }
}

thread_local! {
    /// Set while a worker is inside the per-run isolation boundary: the
    /// process panic hook stays quiet for these expected panics.
    static IN_ISOLATED_RUN: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Wraps the process panic hook (once) so panics inside isolated injection
/// runs don't spray backtraces — they are captured, classified and logged,
/// not crashes. Panics from anywhere else still reach the previous hook.
fn install_quiet_panic_hook() {
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let previous = panic::take_hook();
        panic::set_hook(Box::new(move |info: &panic::PanicHookInfo<'_>| {
            if !IN_ISOLATED_RUN.with(|f| f.get()) {
                previous(info);
            }
        }));
    });
}

/// Renders a `catch_unwind` payload as text.
fn payload_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// The per-run seed derivation — shared by execution and anomaly reporting,
/// and relied on by checkpoint/resume (re-running index `i` under the same
/// campaign seed must regenerate the same fault).
fn derive_run_seed(campaign_seed: u64, run_index: usize) -> u64 {
    campaign_seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(run_index as u64 + 1)
}

/// Per-run bookkeeping flags threaded out of the isolation boundary.
#[derive(Debug, Clone, Copy, Default)]
struct RunExtras {
    /// The liveness oracle proved the run masked without simulation.
    oracle_skip: bool,
    /// The run fast-forwarded from a golden checkpoint.
    snapshot_restore: bool,
    /// A reconvergence check proved the run masked before it finished.
    snapshot_early_masked: bool,
}

/// A watchdog slot: the run currently executing on one worker thread.
/// Registration and cancellation are serialized by the slot mutex, so the
/// watchdog can never cancel a *newer* run than the one it observed.
struct ActiveRun {
    started: Instant,
    cancel: Arc<AtomicBool>,
}

type WatchdogSlots = Vec<Mutex<Option<ActiveRun>>>;

/// A runnable campaign.
#[derive(Debug, Clone)]
pub struct Campaign {
    config: CampaignConfig,
}

impl Campaign {
    /// Creates a campaign from its configuration, validating it.
    pub fn try_new(config: CampaignConfig) -> Result<Self, CampaignError> {
        if config.runs == 0 {
            return Err(CampaignError::ZeroRuns);
        }
        if config.faults == 0 || config.faults > config.cluster.cells() {
            return Err(CampaignError::CardinalityTooLarge {
                faults: config.faults,
                cluster: config.cluster,
            });
        }
        if config.target == InjectionTarget::TagArray
            && !matches!(
                config.component,
                HwComponent::L1D | HwComponent::L1I | HwComponent::L2
            )
        {
            return Err(CampaignError::TagArrayUnsupported {
                component: config.component,
            });
        }
        if let Some(adaptive) = &config.adaptive {
            adaptive.validate()?;
        }
        Ok(Self { config })
    }

    /// Creates a campaign from its configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see [`Campaign::try_new`] for
    /// the non-panicking form).
    pub fn new(config: CampaignConfig) -> Self {
        match Self::try_new(config) {
            Ok(campaign) => campaign,
            Err(e) => panic!("{e}"),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &CampaignConfig {
        &self.config
    }

    /// Executes the golden run, reporting a non-clean exit as
    /// [`CampaignError::GoldenRunFailed`].
    fn golden(&self, program: &Program) -> Result<(Vec<u8>, u32, u64, u64), CampaignError> {
        let r = Simulator::new(self.config.core, program).run(u64::MAX / 8);
        match r.end {
            RunEnd::Exited { code } => Ok((r.output, code, r.cycles, r.instructions)),
            end => Err(CampaignError::GoldenRunFailed {
                workload: self.config.workload,
                end,
            }),
        }
    }

    /// Executes one injection run. Returns the run record plus the
    /// fast-path flags (oracle skip / snapshot restore / early mask).
    ///
    /// The oracle check is sound because a skipped run would have been
    /// cycle-identical to the golden run (see [`LivenessOracle`]): its
    /// detail record — `Masked`, `cycles == fault_free_cycles` — is exactly
    /// what full simulation would have produced. The reconvergence early
    /// exit is sound for the same reason, established *after* the fault
    /// instead of before it: once every reachable bit matches the golden
    /// checkpoint, determinism makes the rest of the run identical to the
    /// golden run, so it is `Masked` with exactly `fault_free_cycles`.
    #[allow(clippy::too_many_arguments)]
    fn one_run(
        &self,
        program: &Program,
        run_index: usize,
        fault_free_cycles: u64,
        golden_output: &[u8],
        golden_code: u32,
        geometry: Geometry,
        oracle: Option<&LivenessOracle>,
        snapshots: Option<&SnapshotStore>,
        cancel: &Arc<AtomicBool>,
    ) -> (RunDetail, RunExtras) {
        let cfg = &self.config;
        if let Some(hook) = &cfg.run_hook {
            (hook.0)(run_index);
        }
        // Independent per-run RNG: deterministic under any thread schedule.
        // The draw order (injection cycle, then mask) must not depend on the
        // oracle or the snapshot store, so skipped, fast-forwarded and
        // fully-simulated runs all see identical faults.
        let run_seed = derive_run_seed(cfg.seed, run_index);
        let mut gen = MaskGenerator::seeded(run_seed, cfg.cluster);
        let inject_at = gen.injection_cycle(fault_free_cycles);
        let mask = gen.generate(geometry, cfg.faults);
        let mut extras = RunExtras::default();
        if let Some(o) = oracle {
            if o.provably_masked(&mask.coords, inject_at) {
                extras.oracle_skip = true;
                let detail = RunDetail {
                    index: run_index,
                    inject_cycle: inject_at,
                    mask,
                    effect: FaultEffect::Masked,
                    cycles: fault_free_cycles,
                };
                return (detail, extras);
            }
        }
        let (effect, cycles, run_extras) = self.run_injection(
            program,
            &mask.coords,
            inject_at,
            fault_free_cycles,
            golden_output,
            golden_code,
            snapshots,
            Some(cancel),
        );
        extras.snapshot_restore = run_extras.snapshot_restore;
        extras.snapshot_early_masked = run_extras.snapshot_early_masked;
        let detail = RunDetail {
            index: run_index,
            inject_cycle: inject_at,
            mask,
            effect,
            cycles,
        };
        (detail, extras)
    }

    /// Simulates exactly one injection: flip `coords` at `inject_at` under
    /// the configured target, classify against the golden reference. The
    /// deterministic tail of [`Campaign::one_run`], and — via
    /// [`Campaign::probe_injection`] — the primitive the exhaustive
    /// (per-equivalence-class) engine drives with chosen fault sites
    /// instead of seed-drawn ones.
    #[allow(clippy::too_many_arguments)]
    fn run_injection(
        &self,
        program: &Program,
        coords: &[BitCoord],
        inject_at: u64,
        fault_free_cycles: u64,
        golden_output: &[u8],
        golden_code: u32,
        snapshots: Option<&SnapshotStore>,
        cancel: Option<&Arc<AtomicBool>>,
    ) -> (FaultEffect, u64, RunExtras) {
        let cfg = &self.config;
        let mut extras = RunExtras::default();
        let mut sim = Simulator::new(cfg.core, program);
        if let Some(store) = snapshots {
            // Fast-forward: skip the fault-free prefix by restoring the
            // nearest golden checkpoint at or before the injection cycle.
            sim.restore(store.nearest_at_or_before(inject_at));
            extras.snapshot_restore = true;
        }
        if let Some(cancel) = cancel {
            sim.set_cancel_flag(Arc::clone(cancel));
        }
        let limit = fault_free_cycles * cfg.timeout_factor;
        // The injection point precedes the fault-free end, so the run cannot
        // have finished yet.
        if sim.run_until_cycle(inject_at).is_none() {
            match cfg.target {
                InjectionTarget::DataArray => sim.inject_flips(cfg.component, coords),
                InjectionTarget::TagArray => sim.inject_tag_flips(cfg.component, coords),
            }
        }
        let end = match snapshots {
            None => sim.run_until_cycle(limit),
            Some(store) => {
                let (end, early) = run_with_reconvergence(&mut sim, store, limit);
                if early {
                    extras.snapshot_early_masked = true;
                    return (FaultEffect::Masked, fault_free_cycles, extras);
                }
                end
            }
        };
        let result = mbu_cpu::RunResult {
            end: end.unwrap_or(RunEnd::CycleLimit),
            output: sim.output().to_vec(),
            cycles: sim.cycle(),
            instructions: sim.instructions(),
        };
        let effect = classify(&result, golden_output, golden_code);
        (effect, result.cycles, extras)
    }

    /// [`Campaign::run_injection`] inside the isolation boundary, for
    /// callers that choose the fault site deterministically (the exhaustive
    /// engine): panics inside the simulated run classify as
    /// [`FaultEffect::Assert`] with zero cycles, mirroring the sampled
    /// path.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn probe_injection(
        &self,
        program: &Program,
        coords: &[BitCoord],
        inject_at: u64,
        fault_free_cycles: u64,
        golden_output: &[u8],
        golden_code: u32,
        snapshots: Option<&SnapshotStore>,
    ) -> (FaultEffect, u64) {
        install_quiet_panic_hook();
        let outcome = IN_ISOLATED_RUN.with(|flag| {
            flag.set(true);
            let r = panic::catch_unwind(AssertUnwindSafe(|| {
                self.run_injection(
                    program,
                    coords,
                    inject_at,
                    fault_free_cycles,
                    golden_output,
                    golden_code,
                    snapshots,
                    None,
                )
            }));
            flag.set(false);
            r
        });
        match outcome {
            Ok((effect, cycles, _)) => (effect, cycles),
            Err(_) => (FaultEffect::Assert, 0),
        }
    }

    /// Executes one injection run inside the isolation boundary: panics are
    /// captured (and classified as [`FaultEffect::Assert`]), watchdog
    /// cancellations are logged.
    ///
    /// `catch_unwind` unwind-safety audit: the closure captures `&self`
    /// (immutable configuration), `&Program` (immutable), the golden
    /// reference slices (immutable) and the `cancel` flag (atomic). All
    /// mutable state — simulator, mask generator — lives *inside* the
    /// closure and is dropped on unwind, so nothing observable can be left
    /// half-updated; the `AssertUnwindSafe` is sound.
    #[allow(clippy::too_many_arguments)]
    fn one_run_isolated(
        &self,
        program: &Program,
        run_index: usize,
        fault_free_cycles: u64,
        golden_output: &[u8],
        golden_code: u32,
        geometry: Geometry,
        oracle: Option<&LivenessOracle>,
        snapshots: Option<&SnapshotStore>,
        cancel: &Arc<AtomicBool>,
    ) -> (RunDetail, RunExtras, Option<Anomaly>) {
        install_quiet_panic_hook();
        let outcome = IN_ISOLATED_RUN.with(|flag| {
            flag.set(true);
            let r = panic::catch_unwind(AssertUnwindSafe(|| {
                self.one_run(
                    program,
                    run_index,
                    fault_free_cycles,
                    golden_output,
                    golden_code,
                    geometry,
                    oracle,
                    snapshots,
                    cancel,
                )
            }));
            flag.set(false);
            r
        });
        match outcome {
            Ok((detail, extras)) => {
                let anomaly = if cancel.load(Ordering::Relaxed) {
                    Some(Anomaly {
                        run_index,
                        run_seed: derive_run_seed(self.config.seed, run_index),
                        kind: AnomalyKind::WallClock,
                        message: format!(
                            "cancelled after exceeding the {:?} wall-clock budget",
                            self.config.run_wall_budget.unwrap_or_default()
                        ),
                    })
                } else {
                    None
                };
                (detail, extras, anomaly)
            }
            Err(payload) => {
                // A panic is the software image of a hardware assert: an
                // internal invariant tripped by the injected corruption.
                let detail = RunDetail {
                    index: run_index,
                    inject_cycle: 0,
                    mask: FaultMask {
                        coords: Vec::new(),
                        origin: BitCoord::new(0, 0),
                        cluster: self.config.cluster,
                    },
                    effect: FaultEffect::Assert,
                    cycles: 0,
                };
                let anomaly = Anomaly {
                    run_index,
                    run_seed: derive_run_seed(self.config.seed, run_index),
                    kind: AnomalyKind::Panic,
                    message: payload_message(payload.as_ref()),
                };
                (detail, RunExtras::default(), Some(anomaly))
            }
        }
    }

    /// Executes the injection runs `[start, end)` in parallel (work-stealing
    /// over an atomic index; deterministic for a given seed regardless of
    /// thread count), merging into the caller's accumulators.
    #[allow(clippy::too_many_arguments)]
    fn run_batch(
        &self,
        program: &Program,
        range: std::ops::Range<usize>,
        cycles: u64,
        golden_output: &[u8],
        golden_code: u32,
        geometry: Geometry,
        oracle: Option<&LivenessOracle>,
        snapshots: Option<&SnapshotStore>,
        counts: &mut ClassCounts,
        details: &mut Vec<RunDetail>,
        anomalies: &mut AnomalyLog,
        oracle_skips: &mut u64,
        snap_restores: &mut u64,
        snap_early_masked: &mut u64,
    ) -> Result<(), CampaignError> {
        let cfg = &self.config;
        let threads = if cfg.threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            cfg.threads
        }
        .min(range.len())
        .max(1);
        let next = AtomicUsize::new(range.start);
        let slots: WatchdogSlots = (0..threads).map(|_| Mutex::new(None)).collect();
        let watchdog_stop = AtomicBool::new(false);
        let mut worker_panicked = false;
        std::thread::scope(|scope| {
            if let Some(budget) = cfg.run_wall_budget {
                let slots = &slots;
                let watchdog_stop = &watchdog_stop;
                scope.spawn(move || watchdog(slots, budget, watchdog_stop));
            }
            let mut handles = Vec::new();
            for slot in &slots {
                let next = &next;
                let range = &range;
                handles.push(scope.spawn(move || {
                    let mut local = ClassCounts::new();
                    let mut local_details = Vec::new();
                    let mut local_anomalies = AnomalyLog::new();
                    let mut local_extras = (0u64, 0u64, 0u64);
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= range.end {
                            break;
                        }
                        let cancel = Arc::new(AtomicBool::new(false));
                        *slot.lock().unwrap_or_else(|e| e.into_inner()) = Some(ActiveRun {
                            started: Instant::now(),
                            cancel: Arc::clone(&cancel),
                        });
                        let (detail, extras, anomaly) = self.one_run_isolated(
                            program,
                            i,
                            cycles,
                            golden_output,
                            golden_code,
                            geometry,
                            oracle,
                            snapshots,
                            &cancel,
                        );
                        *slot.lock().unwrap_or_else(|e| e.into_inner()) = None;
                        local.record(detail.effect);
                        local_extras.0 += u64::from(extras.oracle_skip);
                        local_extras.1 += u64::from(extras.snapshot_restore);
                        local_extras.2 += u64::from(extras.snapshot_early_masked);
                        if let Some(a) = anomaly {
                            local_anomalies.record(a);
                        }
                        if cfg.collect_details {
                            local_details.push(detail);
                        }
                    }
                    (local, local_details, local_anomalies, local_extras)
                }));
            }
            for h in handles {
                match h.join() {
                    Ok((local, local_details, local_anomalies, local_extras)) => {
                        counts.merge(&local);
                        details.extend(local_details);
                        anomalies.merge(local_anomalies);
                        *oracle_skips += local_extras.0;
                        *snap_restores += local_extras.1;
                        *snap_early_masked += local_extras.2;
                    }
                    // A panic *outside* the per-run isolation boundary is an
                    // engine bug; salvage the other workers' results and
                    // report it as a typed error below.
                    Err(_) => worker_panicked = true,
                }
            }
            watchdog_stop.store(true, Ordering::Relaxed);
        });
        if worker_panicked {
            return Err(CampaignError::WorkerPanicked);
        }
        Ok(())
    }

    /// The achieved error margin of `counts` over the component's fault
    /// population, with the measured AVF (clamped to `[0.01, 0.99]`) as the
    /// probability estimate.
    fn achieved_margin(
        &self,
        counts: &ClassCounts,
        fault_free_cycles: u64,
        z: f64,
    ) -> Result<f64, CampaignError> {
        campaign_margin(self.config.component, counts, fault_free_cycles, z)
    }

    /// Runs the whole campaign (parallel, deterministic), reporting failures
    /// as [`CampaignError`] instead of panicking.
    ///
    /// With [`CampaignConfig::adaptive`] set, runs execute in batches and
    /// the campaign stops as soon as the achieved margin (measured AVF as
    /// `p`) meets the target — see [`AdaptiveSpec`].
    pub fn try_run(&self) -> Result<CampaignResult, CampaignError> {
        self.try_run_with_artifacts(None)
    }

    /// Builds the golden artifacts this campaign would otherwise compute
    /// inside [`Campaign::try_run`]: the fault-free output/counters and —
    /// when [`CampaignConfig::use_snapshots`] is set — a recorded
    /// [`SnapshotStore`] under [`CampaignConfig::snapshot_spec`].
    ///
    /// A sweep builds these once per `(core, workload)` pair and passes the
    /// same value to [`Campaign::try_run_with_artifacts`] for every campaign
    /// targeting that workload, eliminating the per-campaign golden and
    /// recording runs.
    pub fn build_artifacts(&self) -> Result<GoldenArtifacts, CampaignError> {
        let cfg = &self.config;
        let program = cfg.workload.program();
        let spec = cfg.use_snapshots.then_some(cfg.snapshot_spec);
        GoldenArtifacts::build(cfg.core, &program, spec).map_err(|end| {
            CampaignError::GoldenRunFailed {
                workload: cfg.workload,
                end,
            }
        })
    }

    /// [`Campaign::try_run`] with optional pre-built golden artifacts.
    ///
    /// With `Some(artifacts)` the golden run (and, with snapshots enabled,
    /// the recording run) is skipped: the reference output, counters and
    /// checkpoint store come from the artifacts. The simulator is
    /// deterministic, so the artifacts are bit-identical to what a private
    /// golden run would have produced — classifications, anomaly logs and
    /// details do not depend on which path supplied them. Artifacts built
    /// for a different core, program or snapshot spec are rejected with
    /// [`CampaignError::ArtifactMismatch`] rather than silently
    /// misclassifying every run.
    pub fn try_run_with_artifacts(
        &self,
        artifacts: Option<&GoldenArtifacts>,
    ) -> Result<CampaignResult, CampaignError> {
        self.execute(artifacts, None)
    }

    /// Runs only the run-range `range` of this campaign — the execution
    /// primitive behind distributed sweep shards.
    ///
    /// Per-run seeds derive from the campaign seed and the *absolute* run
    /// index alone, so the runs of `range` are classified bit-identically
    /// to the same indices inside a full [`Campaign::try_run`]; summing the
    /// [`ClassCounts`] of any disjoint cover of `0..runs` reproduces the
    /// full campaign's counts exactly. The returned result carries only the
    /// range's counts/details/anomalies (plus the golden counters, which
    /// are range-independent); its `achieved_margin` is over the partial
    /// counts and is recomputed from merged counts by the shard merge.
    ///
    /// # Errors
    ///
    /// Returns [`CampaignError::InvalidRunRange`] for an empty or
    /// out-of-bounds range, and [`CampaignError::InvalidAdaptiveSpec`] for
    /// a partial range of an adaptive campaign: early stopping depends on
    /// the global run order, so adaptive campaigns are never split.
    pub fn try_run_range_with_artifacts(
        &self,
        range: std::ops::Range<usize>,
        artifacts: Option<&GoldenArtifacts>,
    ) -> Result<CampaignResult, CampaignError> {
        let cfg = &self.config;
        if range.start >= range.end || range.end > cfg.runs {
            return Err(CampaignError::InvalidRunRange {
                start: range.start,
                end: range.end,
                runs: cfg.runs,
            });
        }
        if cfg.adaptive.is_some() && (range.start != 0 || range.end != cfg.runs) {
            return Err(CampaignError::InvalidAdaptiveSpec {
                reason: "adaptive campaigns cannot be split into partial run-ranges",
            });
        }
        self.execute(artifacts, Some(range))
    }

    /// Rejects golden artifacts built for a different campaign (wrong core
    /// configuration, wrong program, or a missing/mismatched snapshot
    /// store) — shared by the sampled executor and the exhaustive engine.
    pub(crate) fn validate_artifacts(
        &self,
        program: &Program,
        artifacts: &GoldenArtifacts,
    ) -> Result<(), CampaignError> {
        let cfg = &self.config;
        if *artifacts.core() != cfg.core {
            return Err(CampaignError::ArtifactMismatch {
                reason: "artifacts were built for a different core configuration",
            });
        }
        if artifacts.program() != program {
            return Err(CampaignError::ArtifactMismatch {
                reason: "artifacts were built for a different program",
            });
        }
        if cfg.use_snapshots {
            if artifacts.snapshot_store().is_none() {
                return Err(CampaignError::ArtifactMismatch {
                    reason: "campaign uses snapshots but the artifacts carry no store",
                });
            }
            if artifacts.snapshot_spec() != Some(cfg.snapshot_spec) {
                return Err(CampaignError::ArtifactMismatch {
                    reason: "artifacts' snapshot store was recorded under a different spec",
                });
            }
        }
        Ok(())
    }

    /// Shared body of [`Campaign::try_run_with_artifacts`] (`range: None`)
    /// and [`Campaign::try_run_range_with_artifacts`] (`range: Some`).
    fn execute(
        &self,
        artifacts: Option<&GoldenArtifacts>,
        range: Option<std::ops::Range<usize>>,
    ) -> Result<CampaignResult, CampaignError> {
        let cfg = &self.config;
        let program = cfg.workload.program();
        if let Some(a) = artifacts {
            self.validate_artifacts(&program, a)?;
        }
        // Golden reference: from the shared artifacts, or one private run.
        let owned_golden = match artifacts {
            Some(_) => None,
            None => Some(self.golden(&program)?),
        };
        let (golden_output, golden_code, cycles, instructions): (&[u8], u32, u64, u64) =
            match (&owned_golden, artifacts) {
                (Some((o, c, cy, i)), _) => (o, *c, *cy, *i),
                (None, Some(a)) => (a.output(), a.exit_code(), a.cycles(), a.instructions()),
                (None, None) => unreachable!("one golden source always exists"),
            };
        // Target geometry is config-determined; compute it once instead of
        // per run so the oracle fast path can skip Simulator construction.
        let geometry = {
            let sim = Simulator::new(cfg.core, &program);
            match cfg.target {
                InjectionTarget::DataArray => sim.component_geometry(cfg.component),
                InjectionTarget::TagArray => sim.tag_geometry(cfg.component),
            }
        };
        // One fault-free observation run buys the provably-masked pre-filter
        // for every injection run. Build failures (e.g. an observation run
        // that does not exit cleanly) silently disable the fast path: the
        // campaign is then merely slower, never wrong.
        let oracle = if cfg.use_liveness_oracle && cfg.target == InjectionTarget::DataArray {
            LivenessOracle::build(cfg.core, &program, cfg.component).ok()
        } else {
            None
        };
        let oracle = oracle.as_ref();
        // One extra golden (recording) run buys checkpointed fast-forwarding
        // and reconvergence-based early exit for every injection run — paid
        // here only when no shared store came with the artifacts.
        let owned_store = if cfg.use_snapshots && artifacts.is_none() {
            Some(SnapshotStore::record_golden(
                cfg.core,
                &program,
                cycles,
                cfg.snapshot_spec,
            ))
        } else {
            None
        };
        let snapshots: Option<&SnapshotStore> = if cfg.use_snapshots {
            match artifacts {
                Some(a) => a.snapshot_store().map(|s| s.as_ref()),
                None => owned_store.as_ref(),
            }
        } else {
            None
        };
        let mut counts = ClassCounts::new();
        let mut details: Vec<RunDetail> = Vec::new();
        let mut anomalies = AnomalyLog::new();
        if let Some(store) = snapshots {
            let thinned = store.stats().thinned;
            if thinned > 0 {
                anomalies.record(Anomaly {
                    run_index: 0,
                    run_seed: cfg.seed,
                    kind: AnomalyKind::SnapshotMemCap,
                    message: format!(
                        "snapshot store exceeded its {} byte cap; thinned {}× to a {}-cycle \
                         interval ({} checkpoints, {} bytes retained)",
                        cfg.snapshot_spec.mem_cap_bytes.unwrap_or(0),
                        thinned,
                        store.interval(),
                        store.len(),
                        store.retained_bytes(),
                    ),
                });
            }
        }
        let mut oracle_skips = 0u64;
        let mut snap_restores = 0u64;
        let mut snap_early_masked = 0u64;
        let (range_start, range_end) = match &range {
            Some(r) => (r.start, r.end),
            None => (0, cfg.runs),
        };
        let mut executed = range_start;
        while executed < range_end {
            let end = match &cfg.adaptive {
                None => range_end,
                Some(a) => (executed + a.batch).min(range_end),
            };
            self.run_batch(
                &program,
                executed..end,
                cycles,
                golden_output,
                golden_code,
                geometry,
                oracle,
                snapshots,
                &mut counts,
                &mut details,
                &mut anomalies,
                &mut oracle_skips,
                &mut snap_restores,
                &mut snap_early_masked,
            )?;
            executed = end;
            if let Some(a) = &cfg.adaptive {
                if executed >= a.min_runs
                    && self.achieved_margin(&counts, cycles, a.z)? <= a.target_margin
                {
                    break;
                }
            }
        }
        let z = cfg.adaptive.as_ref().map(|a| a.z).unwrap_or(stats::Z_99);
        let achieved_margin = Some(self.achieved_margin(&counts, cycles, z)?);
        details.sort_by_key(|d| d.index);
        anomalies.sort();
        Ok(CampaignResult {
            workload: cfg.workload,
            component: cfg.component,
            faults: cfg.faults,
            counts,
            fault_free_cycles: cycles,
            fault_free_instructions: instructions,
            details: if cfg.collect_details {
                Some(details)
            } else {
                None
            },
            anomalies,
            oracle_skips,
            achieved_margin,
            snapshot_stats: snapshots.map(|s| SnapshotStats {
                restores: snap_restores,
                early_masked: snap_early_masked,
                ..s.stats()
            }),
        })
    }

    /// Runs the whole campaign (parallel, deterministic).
    ///
    /// # Panics
    ///
    /// Panics if the golden run fails or a worker dies (see
    /// [`Campaign::try_run`] for the non-panicking form).
    pub fn run(&self) -> CampaignResult {
        match self.try_run() {
            Ok(result) => result,
            Err(e) => panic!("{e}"),
        }
    }
}

/// Runs a post-injection simulator to `limit`, pausing at every golden
/// checkpoint cycle for a reconvergence check. Returns the run end (if the
/// machine finished) and whether a check proved the run masked.
///
/// The stall-fuse counter is owned here and threaded through every segment
/// ([`Simulator::run_until_cycle_resumable`]), so a livelocked run trips
/// the fuse after exactly as many commit-less cycles as an unsegmented
/// [`Simulator::run_until_cycle`] call would — segmentation cannot change
/// a classification.
fn run_with_reconvergence(
    sim: &mut Simulator,
    store: &SnapshotStore,
    limit: u64,
) -> (Option<RunEnd>, bool) {
    let mut stalled = 0u64;
    loop {
        match store.next_check_after(sim.cycle()).filter(|&c| c < limit) {
            None => return (sim.run_until_cycle_resumable(limit, &mut stalled), false),
            Some(check) => {
                let end = sim.run_until_cycle_resumable(check, &mut stalled);
                if end.is_some() {
                    return (end, false);
                }
                if sim.cycle() < check {
                    // The cooperative cancel flag tripped mid-segment (the
                    // wall-clock watchdog): surface the unfinished run the
                    // same way `run_until_cycle` does.
                    return (None, false);
                }
                if let Some(golden) = store.golden_at(check) {
                    if sim.converged_with(golden) {
                        return (None, true);
                    }
                }
            }
        }
    }
}

/// The watchdog loop: periodically scans the worker slots and cancels any
/// run older than `budget`. Exits promptly once `stop` is raised.
fn watchdog(slots: &WatchdogSlots, budget: Duration, stop: &AtomicBool) {
    // Poll a few times per budget so overshoot stays proportional, but stay
    // responsive to shutdown even with long budgets.
    let poll = (budget / 8).clamp(Duration::from_millis(1), Duration::from_millis(100));
    while !stop.load(Ordering::Relaxed) {
        std::thread::sleep(poll);
        for slot in slots {
            let guard = slot.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(active) = guard.as_ref() {
                if active.started.elapsed() >= budget {
                    active.cancel.store(true, Ordering::Relaxed);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(workload: Workload, component: HwComponent, faults: usize) -> CampaignResult {
        Campaign::new(
            CampaignConfig::new(workload, component, faults)
                .runs(24)
                .seed(7),
        )
        .run()
    }

    #[test]
    fn campaign_counts_match_run_count() {
        let r = small(Workload::Stringsearch, HwComponent::RegFile, 1);
        assert_eq!(r.counts.total(), 24);
        assert!(r.fault_free_cycles > 1000);
        assert!(
            r.anomalies.is_empty(),
            "healthy campaign must be anomaly-free"
        );
    }

    #[test]
    fn results_are_deterministic_across_thread_counts() {
        let base = CampaignConfig::new(Workload::Stringsearch, HwComponent::L1D, 2)
            .runs(16)
            .seed(123);
        let a = Campaign::new(base.clone().threads(1)).run();
        let b = Campaign::new(base.threads(4)).run();
        assert_eq!(a.counts, b.counts);
    }

    #[test]
    fn run_hook_accepts_stateful_closures() {
        // The hook takes any `Fn` closure, not just fn pointers: capture an
        // atomic counter and check every run index was observed exactly once.
        let seen = Arc::new(AtomicUsize::new(0));
        let seen_in_hook = Arc::clone(&seen);
        let r = Campaign::new(
            CampaignConfig::new(Workload::Stringsearch, HwComponent::RegFile, 1)
                .runs(12)
                .seed(7)
                .threads(3)
                .with_run_hook(move |_| {
                    seen_in_hook.fetch_add(1, Ordering::Relaxed);
                }),
        )
        .run();
        assert_eq!(r.counts.total(), 12);
        assert_eq!(seen.load(Ordering::Relaxed), 12);
    }

    #[test]
    fn different_seeds_generally_differ() {
        let base = CampaignConfig::new(Workload::Stringsearch, HwComponent::DTlb, 3).runs(32);
        let a = Campaign::new(base.clone().seed(1)).run();
        let b = Campaign::new(base.seed(2)).run();
        // Not guaranteed in principle, but overwhelmingly likely for a
        // vulnerable component.
        assert!(a.counts != b.counts || a.counts.masked == 32);
    }

    #[test]
    fn large_structures_mostly_mask_single_bits() {
        // The L2 is 4 Mbit; a short workload touches a tiny fraction, so
        // most single-bit faults must be masked.
        let r = small(Workload::Stringsearch, HwComponent::L2, 1);
        assert!(
            r.counts.fraction(FaultEffect::Masked) > 0.7,
            "expected mostly masked, got {}",
            r.counts
        );
    }

    #[test]
    #[should_panic(expected = "at least one run")]
    fn zero_runs_rejected() {
        let _ = Campaign::new(CampaignConfig::new(Workload::Sha, HwComponent::L1D, 1).runs(0));
    }

    #[test]
    #[should_panic(expected = "fit the cluster")]
    fn oversized_cardinality_rejected() {
        let _ = Campaign::new(CampaignConfig::new(Workload::Sha, HwComponent::L1D, 10));
    }

    #[test]
    fn try_new_reports_typed_errors() {
        let zero =
            Campaign::try_new(CampaignConfig::new(Workload::Sha, HwComponent::L1D, 1).runs(0));
        assert_eq!(zero.unwrap_err(), CampaignError::ZeroRuns);
        let oversized = Campaign::try_new(CampaignConfig::new(Workload::Sha, HwComponent::L1D, 10));
        assert!(matches!(
            oversized.unwrap_err(),
            CampaignError::CardinalityTooLarge { faults: 10, .. }
        ));
        let tags = Campaign::try_new(
            CampaignConfig::new(Workload::Sha, HwComponent::ITlb, 1)
                .target(InjectionTarget::TagArray),
        );
        assert_eq!(
            tags.unwrap_err(),
            CampaignError::TagArrayUnsupported {
                component: HwComponent::ITlb
            }
        );
    }
}

#[cfg(test)]
mod extension_tests {
    use super::*;

    #[test]
    fn tag_array_campaign_runs_and_classifies() {
        let r = Campaign::new(
            CampaignConfig::new(Workload::Stringsearch, HwComponent::L1D, 2)
                .runs(16)
                .seed(31)
                .target(InjectionTarget::TagArray),
        )
        .run();
        assert_eq!(r.counts.total(), 16);
    }

    #[test]
    #[should_panic(expected = "only defined for caches")]
    fn tag_array_rejected_for_tlbs() {
        let _ = Campaign::new(
            CampaignConfig::new(Workload::Sha, HwComponent::DTlb, 1)
                .target(InjectionTarget::TagArray),
        );
    }

    #[test]
    fn in_order_core_is_slower_but_correct() {
        let p = Workload::Stringsearch.program();
        let ooo = Simulator::new(CoreConfig::cortex_a9_like(), &p).run(u64::MAX / 8);
        let ino = Simulator::new(CoreConfig::in_order_a9(), &p).run(u64::MAX / 8);
        assert_eq!(ooo.output, ino.output, "architectural results must agree");
        assert!(
            ino.cycles > ooo.cycles,
            "in-order issue must cost cycles ({} vs {})",
            ino.cycles,
            ooo.cycles
        );
    }

    #[test]
    fn quad_bit_campaign_is_supported() {
        // The paper folds >=4-bit rates into the triple class; the injector
        // itself supports any cardinality that fits the cluster.
        let r = Campaign::new(
            CampaignConfig::new(Workload::Stringsearch, HwComponent::RegFile, 4)
                .runs(12)
                .seed(8),
        )
        .run();
        assert_eq!(r.counts.total(), 12);
    }
}

#[cfg(test)]
mod detail_tests {
    use super::*;

    #[test]
    fn details_cover_every_run_in_order() {
        let r = Campaign::new(
            CampaignConfig::new(Workload::Stringsearch, HwComponent::RegFile, 2)
                .runs(20)
                .seed(11)
                .collect_details(true),
        )
        .run();
        let details = r.details.as_ref().expect("details requested");
        assert_eq!(details.len(), 20);
        for (i, d) in details.iter().enumerate() {
            assert_eq!(d.index, i);
            assert_eq!(d.mask.cardinality(), 2);
            assert!(d.inject_cycle < r.fault_free_cycles);
            assert!(d.cycles <= r.fault_free_cycles * 4 + 1);
        }
        // The class counts must agree with the detail records.
        let mut counts = ClassCounts::new();
        for d in details {
            counts.record(d.effect);
        }
        assert_eq!(counts, r.counts);
    }

    #[test]
    fn details_absent_by_default() {
        let r = Campaign::new(
            CampaignConfig::new(Workload::Stringsearch, HwComponent::RegFile, 1).runs(4),
        )
        .run();
        assert!(r.details.is_none());
    }
}

#[cfg(test)]
mod resilience_tests {
    use super::*;

    fn panic_every_fifth(index: usize) {
        if index.is_multiple_of(5) {
            panic!("mock simulator invariant violated in run {index}");
        }
    }

    #[test]
    fn panicking_runs_classify_as_assert_and_campaign_completes() {
        let r = Campaign::new(
            CampaignConfig::new(Workload::Stringsearch, HwComponent::RegFile, 1)
                .runs(20)
                .seed(5)
                .with_run_hook(panic_every_fifth)
                .collect_details(true),
        )
        .run();
        // Every run completes; indices 0, 5, 10, 15 panicked.
        assert_eq!(r.counts.total(), 20);
        assert!(
            r.counts.assert_ >= 4,
            "panicked runs classify as Assert: {}",
            r.counts
        );
        assert_eq!(r.anomalies.len(), 4);
        for (a, expected_index) in r.anomalies.entries().iter().zip([0usize, 5, 10, 15]) {
            assert_eq!(a.run_index, expected_index);
            assert_eq!(a.kind, AnomalyKind::Panic);
            assert_eq!(a.run_seed, derive_run_seed(5, expected_index));
            assert!(
                a.message.contains("mock simulator invariant"),
                "payload preserved: {}",
                a.message
            );
        }
        let details = r.details.as_ref().expect("details requested");
        for d in details {
            if d.index.is_multiple_of(5) {
                assert_eq!(d.effect, FaultEffect::Assert);
            }
        }
    }

    #[test]
    fn deterministic_across_thread_counts_with_panicking_runs() {
        let base = CampaignConfig::new(Workload::Stringsearch, HwComponent::RegFile, 2)
            .runs(24)
            .seed(9)
            .with_run_hook(panic_every_fifth)
            .collect_details(true);
        let one = Campaign::new(base.clone().threads(1)).run();
        let two = Campaign::new(base.clone().threads(2)).run();
        let eight = Campaign::new(base.threads(8)).run();
        assert_eq!(one, two);
        assert_eq!(one, eight);
    }

    #[test]
    fn golden_run_failure_is_a_typed_error() {
        // An absurd timeout factor cannot make the golden run fail — instead
        // exercise the path directly through a config whose workload is
        // healthy but whose golden result is checked: the error type is
        // already covered by unit tests in `error`; here we make sure a
        // healthy golden run does NOT error.
        let r = Campaign::new(
            CampaignConfig::new(Workload::Stringsearch, HwComponent::RegFile, 1).runs(2),
        )
        .try_run();
        assert!(r.is_ok());
    }

    fn stall_hard(index: usize) {
        if index == 1 {
            // Long enough for the watchdog to observe, but bounded so a
            // broken watchdog doesn't hang the suite.
            std::thread::sleep(Duration::from_millis(600));
        }
    }

    #[test]
    fn watchdog_cancels_over_budget_runs() {
        let r = Campaign::new(
            CampaignConfig::new(Workload::Stringsearch, HwComponent::RegFile, 1)
                .runs(3)
                .seed(2)
                .threads(1)
                .run_wall_budget(Some(Duration::from_millis(100)))
                .with_run_hook(stall_hard),
        )
        .run();
        assert_eq!(r.counts.total(), 3);
        // Run 1 slept through its budget: cancelled → Timeout + anomaly.
        // (A slow or loaded host may additionally cancel a healthy run, so
        // assert containment, not exact equality.)
        assert!(
            r.counts.timeout >= 1,
            "watchdog must cancel the stalled run: {}",
            r.counts
        );
        let wall: Vec<_> = r
            .anomalies
            .entries()
            .iter()
            .filter(|a| a.kind == AnomalyKind::WallClock)
            .collect();
        assert!(!wall.is_empty(), "cancellation must be logged");
        assert!(
            wall.iter().any(|a| a.run_index == 1),
            "the stalled run must be among the cancelled: {:?}",
            wall
        );
    }

    #[test]
    fn watchdog_disabled_means_no_wall_clock_anomalies() {
        let r = Campaign::new(
            CampaignConfig::new(Workload::Stringsearch, HwComponent::RegFile, 1)
                .runs(4)
                .seed(3)
                .run_wall_budget(None),
        )
        .run();
        assert!(r.anomalies.is_empty());
    }
}

#[cfg(test)]
mod snapshot_campaign_tests {
    use super::*;

    #[test]
    fn snapshot_campaign_is_bit_identical_to_plain() {
        let base = CampaignConfig::new(Workload::Stringsearch, HwComponent::RegFile, 2)
            .runs(20)
            .seed(41)
            .collect_details(true);
        let plain = Campaign::new(base.clone()).run();
        let fast = Campaign::new(base.use_snapshots(true)).run();
        assert_eq!(plain.counts, fast.counts);
        assert_eq!(plain.details, fast.details);
        assert_eq!(plain.anomalies, fast.anomalies);
        let stats = fast.snapshot_stats.expect("stats present when enabled");
        assert!(stats.snapshots >= 2);
        assert!(stats.restores > 0, "runs must fast-forward: {stats:?}");
        assert!(plain.snapshot_stats.is_none());
    }

    #[test]
    fn snapshot_mem_cap_degrades_gracefully_and_is_logged() {
        let base = CampaignConfig::new(Workload::Stringsearch, HwComponent::DTlb, 1)
            .runs(12)
            .seed(5)
            .collect_details(true);
        let plain = Campaign::new(base.clone()).run();
        let capped = Campaign::new(base.use_snapshots(true).snapshot_spec(SnapshotSpec {
            interval: Some(512),
            // Far below what a 512-cycle interval retains: forces thinning.
            mem_cap_bytes: Some(100_000),
        }))
        .run();
        assert_eq!(plain.counts, capped.counts, "thinning never reclassifies");
        assert_eq!(plain.details, capped.details);
        let stats = capped.snapshot_stats.expect("stats present");
        assert!(stats.thinned >= 1, "cap must thin the store: {stats:?}");
        assert!(
            capped
                .anomalies
                .entries()
                .iter()
                .any(|a| a.kind == AnomalyKind::SnapshotMemCap),
            "cap degradation must be surfaced in the anomaly log"
        );
    }

    #[test]
    fn early_masked_runs_report_golden_cycles() {
        // A large, mostly-dead structure: most faults mask, so reconvergence
        // must fire and the early-exited runs must record exactly the golden
        // cycle count (what full simulation of a masked run produces).
        let r = Campaign::new(
            CampaignConfig::new(Workload::Stringsearch, HwComponent::L2, 1)
                .runs(16)
                .seed(13)
                .use_snapshots(true)
                .collect_details(true),
        )
        .run();
        let stats = r.snapshot_stats.expect("stats present");
        assert!(
            stats.early_masked > 0,
            "mostly-masked L2 campaign must reconverge early: {stats:?}"
        );
        for d in r.details.as_ref().unwrap() {
            if d.effect == FaultEffect::Masked {
                assert_eq!(d.cycles, r.fault_free_cycles);
            }
        }
    }
}

#[cfg(test)]
mod adaptive_tests {
    use super::*;

    #[test]
    fn invalid_adaptive_specs_are_rejected() {
        let base = || CampaignConfig::new(Workload::Stringsearch, HwComponent::L1D, 1).runs(100);
        let bad_margin = AdaptiveSpec {
            target_margin: 0.0,
            ..AdaptiveSpec::paper()
        };
        assert!(matches!(
            Campaign::try_new(base().adaptive(Some(bad_margin))).unwrap_err(),
            CampaignError::InvalidAdaptiveSpec { .. }
        ));
        let bad_z = AdaptiveSpec {
            z: -1.0,
            ..AdaptiveSpec::paper()
        };
        assert!(matches!(
            Campaign::try_new(base().adaptive(Some(bad_z))).unwrap_err(),
            CampaignError::InvalidAdaptiveSpec { .. }
        ));
        let bad_batch = AdaptiveSpec {
            batch: 0,
            ..AdaptiveSpec::paper()
        };
        assert!(matches!(
            Campaign::try_new(base().adaptive(Some(bad_batch))).unwrap_err(),
            CampaignError::InvalidAdaptiveSpec { .. }
        ));
        let bad_min = AdaptiveSpec {
            min_runs: 0,
            ..AdaptiveSpec::paper()
        };
        assert!(matches!(
            Campaign::try_new(base().adaptive(Some(bad_min))).unwrap_err(),
            CampaignError::InvalidAdaptiveSpec { .. }
        ));
        assert!(Campaign::try_new(base().adaptive(Some(AdaptiveSpec::paper()))).is_ok());
    }

    /// ISSUE 3 acceptance: a high-mask campaign under adaptive sampling
    /// stops measurably earlier than the paper's fixed 2 000 runs while
    /// still achieving the paper's 2.88 % margin.
    #[test]
    fn adaptive_stops_high_mask_campaign_early_with_paper_margin() {
        let r = Campaign::new(
            CampaignConfig::new(Workload::Stringsearch, HwComponent::L2, 1)
                .runs(2000)
                .seed(17)
                .use_liveness_oracle(true)
                .adaptive(Some(AdaptiveSpec::paper())),
        )
        .run();
        let margin = r.achieved_margin.expect("margin always computed");
        assert!(
            r.counts.total() < 2000,
            "adaptive sampling must stop early, ran all {} runs",
            r.counts.total()
        );
        assert!(
            margin <= 0.0288,
            "achieved margin {margin} must meet the paper's 2.88 % target"
        );
        // Near-fully-masked L2 campaigns converge fast: one or two batches.
        assert!(
            r.counts.total() <= 400,
            "expected convergence within a few batches, got {}",
            r.counts.total()
        );
    }

    #[test]
    fn adaptive_campaign_is_deterministic_across_thread_counts() {
        let base = CampaignConfig::new(Workload::Stringsearch, HwComponent::L2, 1)
            .runs(600)
            .seed(23)
            .adaptive(Some(AdaptiveSpec {
                target_margin: 0.0288,
                z: stats::Z_99,
                min_runs: 50,
                batch: 50,
            }));
        let a = Campaign::new(base.clone().threads(1)).run();
        let b = Campaign::new(base.threads(4)).run();
        assert_eq!(a.counts, b.counts);
        assert_eq!(a.achieved_margin, b.achieved_margin);
    }

    #[test]
    fn fixed_campaigns_still_report_achieved_margin() {
        let r = Campaign::new(
            CampaignConfig::new(Workload::Stringsearch, HwComponent::RegFile, 1)
                .runs(24)
                .seed(7),
        )
        .run();
        assert_eq!(r.counts.total(), 24);
        let margin = r
            .achieved_margin
            .expect("fixed campaigns report margin too");
        assert!(margin > 0.0 && margin < 1.0, "got {margin}");
    }

    #[test]
    fn adaptive_never_exceeds_configured_runs_cap() {
        // A small, vulnerable structure with a loose cap: the margin check
        // may never trigger, but the cap still bounds the campaign.
        let r = Campaign::new(
            CampaignConfig::new(Workload::Stringsearch, HwComponent::RegFile, 2)
                .runs(120)
                .seed(29)
                .adaptive(Some(AdaptiveSpec {
                    target_margin: 0.001,
                    z: stats::Z_99,
                    min_runs: 40,
                    batch: 40,
                })),
        )
        .run();
        assert_eq!(r.counts.total(), 120, "cap must bound adaptive campaigns");
    }
}
