//! Statistical fault-injection campaigns (paper §III.A).
//!
//! A campaign fixes a (workload, component, fault cardinality) triple and
//! performs `runs` independent injection simulations:
//!
//! 1. one fault-free **golden run** establishes the reference output and the
//!    fault-free execution time `T`;
//! 2. each injection run draws a random injection cycle in `[0, T)` and a
//!    random fault mask, simulates up to the injection point, applies the
//!    bit flips, and continues until exit, crash, assert, or the timeout
//!    limit of `4 × T` (paper §III.C);
//! 3. outcomes are classified and aggregated into [`ClassCounts`].
//!
//! Runs are distributed over worker threads; results are deterministic for
//! a given seed regardless of thread count, because each run's RNG is
//! seeded from `(campaign seed, run index)`.

use crate::classify::{classify, ClassCounts, FaultEffect};
use crate::mask::{ClusterSpec, FaultMask, MaskGenerator};
use mbu_cpu::{CoreConfig, HwComponent, RunEnd, Simulator};
use mbu_isa::Program;
use mbu_workloads::Workload;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Which SRAM array of the target component to inject into.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum InjectionTarget {
    /// The component's storage/data array — the paper's target (Table VIII
    /// bit counts).
    #[default]
    DataArray,
    /// A cache's tag array (tag + valid + dirty bits) — the ablation target
    /// for tag-protection studies; only valid for the three caches.
    TagArray,
}

impl fmt::Display for InjectionTarget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InjectionTarget::DataArray => f.write_str("data array"),
            InjectionTarget::TagArray => f.write_str("tag array"),
        }
    }
}

/// Configuration of one injection campaign.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// The workload to run.
    pub workload: Workload,
    /// The hardware structure to inject into.
    pub component: HwComponent,
    /// Fault cardinality (bits flipped per injection), 1–3 in the paper.
    pub faults: usize,
    /// Number of injection runs (the paper uses 2 000; see [`crate::stats`]).
    pub runs: usize,
    /// Campaign seed; same seed ⇒ same results.
    pub seed: u64,
    /// Cluster window for spatial multi-bit faults.
    pub cluster: ClusterSpec,
    /// Core configuration.
    pub core: CoreConfig,
    /// Timeout limit as a multiple of the fault-free execution time.
    pub timeout_factor: u64,
    /// Worker threads (0 ⇒ available parallelism).
    pub threads: usize,
    /// Which array of the component to inject into.
    pub target: InjectionTarget,
    /// Collect a per-run fault list ([`RunDetail`]) in the result.
    pub collect_details: bool,
}

impl CampaignConfig {
    /// Creates a campaign with the paper's defaults (3 × 3 cluster,
    /// Cortex-A9-like core, 4 × timeout, 200 runs).
    pub fn new(workload: Workload, component: HwComponent, faults: usize) -> Self {
        Self {
            workload,
            component,
            faults,
            runs: 200,
            seed: 0x6EF1_2019,
            cluster: ClusterSpec::DEFAULT,
            core: CoreConfig::cortex_a9_like(),
            timeout_factor: 4,
            threads: 0,
            target: InjectionTarget::DataArray,
            collect_details: false,
        }
    }

    /// Sets the number of runs.
    pub fn runs(mut self, runs: usize) -> Self {
        self.runs = runs;
        self
    }

    /// Sets the campaign seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the worker-thread count.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the cluster window.
    pub fn cluster(mut self, cluster: ClusterSpec) -> Self {
        self.cluster = cluster;
        self
    }

    /// Targets the cache tag array instead of the data array (ablation).
    pub fn target(mut self, target: InjectionTarget) -> Self {
        self.target = target;
        self
    }

    /// Collects the per-run fault list in the result.
    pub fn collect_details(mut self, collect: bool) -> Self {
        self.collect_details = collect;
        self
    }
}

/// One injection run's record (the classic fault-list entry).
#[derive(Debug, Clone, PartialEq)]
pub struct RunDetail {
    /// Run index within the campaign.
    pub index: usize,
    /// Cycle the mask was applied at.
    pub inject_cycle: u64,
    /// The applied fault mask.
    pub mask: FaultMask,
    /// Classified outcome.
    pub effect: FaultEffect,
    /// Cycles the faulty run took.
    pub cycles: u64,
}

/// Aggregated result of a campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignResult {
    /// The configuration that produced this result.
    pub workload: Workload,
    /// Target component.
    pub component: HwComponent,
    /// Fault cardinality.
    pub faults: usize,
    /// Class counts over all runs.
    pub counts: ClassCounts,
    /// Fault-free execution time in cycles.
    pub fault_free_cycles: u64,
    /// Fault-free committed instructions.
    pub fault_free_instructions: u64,
    /// Per-run fault list, present when
    /// [`CampaignConfig::collect_details`] was enabled.
    pub details: Option<Vec<RunDetail>>,
}

impl CampaignResult {
    /// AVF of this campaign (`1 − masked fraction`).
    pub fn avf(&self) -> f64 {
        self.counts.avf()
    }
}

impl fmt::Display for CampaignResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} / {} / {}-bit: {}",
            self.component, self.workload, self.faults, self.counts
        )
    }
}

/// A runnable campaign.
#[derive(Debug, Clone)]
pub struct Campaign {
    config: CampaignConfig,
}

impl Campaign {
    /// Creates a campaign from its configuration.
    ///
    /// # Panics
    ///
    /// Panics if `faults` is zero or exceeds the cluster capacity, or if
    /// `runs` is zero.
    pub fn new(config: CampaignConfig) -> Self {
        assert!(config.runs > 0, "campaign needs at least one run");
        assert!(
            config.faults >= 1 && config.faults <= config.cluster.cells(),
            "fault cardinality must fit the cluster"
        );
        if config.target == InjectionTarget::TagArray {
            assert!(
                matches!(
                    config.component,
                    HwComponent::L1D | HwComponent::L1I | HwComponent::L2
                ),
                "tag-array injection is only defined for caches"
            );
        }
        Self { config }
    }

    /// The configuration.
    pub fn config(&self) -> &CampaignConfig {
        &self.config
    }

    /// Executes the golden run.
    ///
    /// # Panics
    ///
    /// Panics if the fault-free run does not exit cleanly — that would be a
    /// workload or simulator bug, not a fault effect.
    fn golden(&self, program: &Program) -> (Vec<u8>, u32, u64, u64) {
        let r = Simulator::new(self.config.core, program).run(u64::MAX / 8);
        match r.end {
            RunEnd::Exited { code } => (r.output, code, r.cycles, r.instructions),
            other => panic!(
                "fault-free run of {} must exit cleanly, got {other:?}",
                self.config.workload
            ),
        }
    }

    /// Executes one injection run.
    fn one_run(
        &self,
        program: &Program,
        run_index: usize,
        fault_free_cycles: u64,
        golden_output: &[u8],
        golden_code: u32,
    ) -> RunDetail {
        let cfg = &self.config;
        // Independent per-run RNG: deterministic under any thread schedule.
        let run_seed = cfg
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(run_index as u64 + 1);
        let mut gen = MaskGenerator::seeded(run_seed, cfg.cluster);
        let mut sim = Simulator::new(cfg.core, program);
        let inject_at = gen.injection_cycle(fault_free_cycles);
        let geometry = match cfg.target {
            InjectionTarget::DataArray => sim.component_geometry(cfg.component),
            InjectionTarget::TagArray => sim.tag_geometry(cfg.component),
        };
        let mask = gen.generate(geometry, cfg.faults);
        let limit = fault_free_cycles * cfg.timeout_factor;
        // The injection point precedes the fault-free end, so the run cannot
        // have finished yet.
        if sim.run_until_cycle(inject_at).is_none() {
            match cfg.target {
                InjectionTarget::DataArray => sim.inject_flips(cfg.component, &mask.coords),
                InjectionTarget::TagArray => sim.inject_tag_flips(cfg.component, &mask.coords),
            }
        }
        let end = sim.run_until_cycle(limit).unwrap_or(RunEnd::CycleLimit);
        let result = mbu_cpu::RunResult {
            end,
            output: sim.output().to_vec(),
            cycles: sim.cycle(),
            instructions: sim.instructions(),
        };
        RunDetail {
            index: run_index,
            inject_cycle: inject_at,
            mask,
            effect: classify(&result, golden_output, golden_code),
            cycles: result.cycles,
        }
    }

    /// Runs the whole campaign (parallel, deterministic).
    pub fn run(&self) -> CampaignResult {
        let cfg = &self.config;
        let program = cfg.workload.program();
        let (golden_output, golden_code, cycles, instructions) = self.golden(&program);
        let threads = if cfg.threads == 0 {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        } else {
            cfg.threads
        }
        .min(cfg.runs);
        let next = AtomicUsize::new(0);
        let mut counts = ClassCounts::new();
        let mut details: Vec<RunDetail> = Vec::new();
        crossbeam::thread::scope(|scope| {
            let mut handles = Vec::new();
            for _ in 0..threads {
                let program = &program;
                let golden_output = &golden_output;
                let next = &next;
                handles.push(scope.spawn(move |_| {
                    let mut local = ClassCounts::new();
                    let mut local_details = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= cfg.runs {
                            break;
                        }
                        let detail =
                            self.one_run(program, i, cycles, golden_output, golden_code);
                        local.record(detail.effect);
                        if cfg.collect_details {
                            local_details.push(detail);
                        }
                    }
                    (local, local_details)
                }));
            }
            for h in handles {
                let (local, local_details) = h.join().expect("campaign worker panicked");
                counts.merge(&local);
                details.extend(local_details);
            }
        })
        .expect("campaign thread scope failed");
        details.sort_by_key(|d| d.index);
        CampaignResult {
            workload: cfg.workload,
            component: cfg.component,
            faults: cfg.faults,
            counts,
            fault_free_cycles: cycles,
            fault_free_instructions: instructions,
            details: if cfg.collect_details { Some(details) } else { None },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(workload: Workload, component: HwComponent, faults: usize) -> CampaignResult {
        Campaign::new(CampaignConfig::new(workload, component, faults).runs(24).seed(7)).run()
    }

    #[test]
    fn campaign_counts_match_run_count() {
        let r = small(Workload::Stringsearch, HwComponent::RegFile, 1);
        assert_eq!(r.counts.total(), 24);
        assert!(r.fault_free_cycles > 1000);
    }

    #[test]
    fn results_are_deterministic_across_thread_counts() {
        let base = CampaignConfig::new(Workload::Stringsearch, HwComponent::L1D, 2)
            .runs(16)
            .seed(123);
        let a = Campaign::new(base.clone().threads(1)).run();
        let b = Campaign::new(base.threads(4)).run();
        assert_eq!(a.counts, b.counts);
    }

    #[test]
    fn different_seeds_generally_differ() {
        let base = CampaignConfig::new(Workload::Stringsearch, HwComponent::DTlb, 3).runs(32);
        let a = Campaign::new(base.clone().seed(1)).run();
        let b = Campaign::new(base.seed(2)).run();
        // Not guaranteed in principle, but overwhelmingly likely for a
        // vulnerable component.
        assert!(a.counts != b.counts || a.counts.masked == 32);
    }

    #[test]
    fn large_structures_mostly_mask_single_bits() {
        // The L2 is 4 Mbit; a short workload touches a tiny fraction, so
        // most single-bit faults must be masked.
        let r = small(Workload::Stringsearch, HwComponent::L2, 1);
        assert!(
            r.counts.fraction(FaultEffect::Masked) > 0.7,
            "expected mostly masked, got {}",
            r.counts
        );
    }

    #[test]
    #[should_panic(expected = "at least one run")]
    fn zero_runs_rejected() {
        let _ = Campaign::new(
            CampaignConfig::new(Workload::Sha, HwComponent::L1D, 1).runs(0),
        );
    }

    #[test]
    #[should_panic(expected = "fit the cluster")]
    fn oversized_cardinality_rejected() {
        let _ = Campaign::new(CampaignConfig::new(Workload::Sha, HwComponent::L1D, 10));
    }
}

#[cfg(test)]
mod extension_tests {
    use super::*;

    #[test]
    fn tag_array_campaign_runs_and_classifies() {
        let r = Campaign::new(
            CampaignConfig::new(Workload::Stringsearch, HwComponent::L1D, 2)
                .runs(16)
                .seed(31)
                .target(InjectionTarget::TagArray),
        )
        .run();
        assert_eq!(r.counts.total(), 16);
    }

    #[test]
    #[should_panic(expected = "only defined for caches")]
    fn tag_array_rejected_for_tlbs() {
        let _ = Campaign::new(
            CampaignConfig::new(Workload::Sha, HwComponent::DTlb, 1)
                .target(InjectionTarget::TagArray),
        );
    }

    #[test]
    fn in_order_core_is_slower_but_correct() {
        let p = Workload::Stringsearch.program();
        let ooo = Simulator::new(CoreConfig::cortex_a9_like(), &p).run(u64::MAX / 8);
        let ino = Simulator::new(CoreConfig::in_order_a9(), &p).run(u64::MAX / 8);
        assert_eq!(ooo.output, ino.output, "architectural results must agree");
        assert!(
            ino.cycles > ooo.cycles,
            "in-order issue must cost cycles ({} vs {})",
            ino.cycles,
            ooo.cycles
        );
    }

    #[test]
    fn quad_bit_campaign_is_supported() {
        // The paper folds >=4-bit rates into the triple class; the injector
        // itself supports any cardinality that fits the cluster.
        let r = Campaign::new(
            CampaignConfig::new(Workload::Stringsearch, HwComponent::RegFile, 4)
                .runs(12)
                .seed(8),
        )
        .run();
        assert_eq!(r.counts.total(), 12);
    }
}

#[cfg(test)]
mod detail_tests {
    use super::*;

    #[test]
    fn details_cover_every_run_in_order() {
        let r = Campaign::new(
            CampaignConfig::new(Workload::Stringsearch, HwComponent::RegFile, 2)
                .runs(20)
                .seed(11)
                .collect_details(true),
        )
        .run();
        let details = r.details.as_ref().expect("details requested");
        assert_eq!(details.len(), 20);
        for (i, d) in details.iter().enumerate() {
            assert_eq!(d.index, i);
            assert_eq!(d.mask.cardinality(), 2);
            assert!(d.inject_cycle < r.fault_free_cycles);
            assert!(d.cycles <= r.fault_free_cycles * 4 + 1);
        }
        // The class counts must agree with the detail records.
        let mut counts = ClassCounts::new();
        for d in details {
            counts.record(d.effect);
        }
        assert_eq!(counts, r.counts);
    }

    #[test]
    fn details_absent_by_default() {
        let r = Campaign::new(
            CampaignConfig::new(Workload::Stringsearch, HwComponent::RegFile, 1).runs(4),
        )
        .run();
        assert!(r.details.is_none());
    }
}
