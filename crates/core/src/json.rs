//! A minimal hand-rolled JSON value and parser.
//!
//! The workspace carries no serialization dependency (the build must work
//! fully offline), so every layer that speaks JSON — the distributed-sweep
//! wire protocol, the HTTP service API, report serialization — shares this
//! one value type. It has one deliberate twist: numbers are kept as *raw
//! tokens* ([`Json::Num`] holds the literal text), so a 64-bit campaign
//! seed or an `f64` margin round-trips bit-exactly instead of being
//! squeezed through a lossy common numeric type.

use std::fmt;

/// A JSON syntax error, with the byte offset it was detected at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the input where the defect was detected.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at offset {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

/// A minimal JSON value. Numbers are raw source tokens so integer and
/// float round-trips are bit-exact.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, as its literal token text.
    Num(String),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (insertion-ordered; duplicate keys are never emitted).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// A `Num` from a `u64`.
    pub fn u64(v: u64) -> Json {
        Json::Num(v.to_string())
    }

    /// A `Num` from a `usize`.
    pub fn usize(v: usize) -> Json {
        Json::Num(v.to_string())
    }

    /// A `Num` from an `f64` (shortest-roundtrip formatting).
    pub fn f64(v: f64) -> Json {
        Json::Num(v.to_string())
    }

    /// A `Str` from anything string-like.
    pub fn str(v: impl Into<String>) -> Json {
        Json::Str(v.into())
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a `Num` holding one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(s) => s.parse().ok(),
            _ => None,
        }
    }

    /// The value as a `usize`, if it is a `Num` holding one.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Json::Num(s) => s.parse().ok(),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is a `Num`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(s) => s.parse().ok(),
            _ => None,
        }
    }

    /// The value as a `&str`, if it is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a `bool`, if it is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an `Arr`.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes to compact JSON text.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(s) => out.push_str(s),
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => {
                            out.push_str(&format!("\\u{:04x}", c as u32));
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    Json::Str(k.clone()).write(out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses JSON text.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] on any syntax error, including trailing
    /// non-whitespace.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(JsonError {
                message: "trailing bytes".into(),
                offset: p.pos,
            });
        }
        Ok(v)
    }
}

/// Recursive-descent JSON parser over a byte slice.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, what: &str) -> JsonError {
        JsonError {
            message: what.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(b) => Err(self.err(&format!("unexpected byte 0x{b:02x}"))),
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut saw_digit = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => {
                    saw_digit = true;
                    self.pos += 1;
                }
                b'.' | b'e' | b'E' | b'+' | b'-' => self.pos += 1,
                _ => break,
            }
        }
        if !saw_digit {
            return Err(self.err("number with no digits"));
        }
        let token = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("sliced on ASCII boundaries")
            .to_string();
        // Validate the token parses as a float (every JSON number does);
        // the raw text is what is stored.
        token
            .parse::<f64>()
            .map_err(|_| self.err("malformed number"))?;
        Ok(Json::Num(token))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            if self.pos + 5 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| self.err("non-ASCII \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogates are not emitted by any producer in
                            // this workspace; reject rather than mis-decode.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("\\u escape is not a scalar value"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so slicing
                    // on char boundaries is safe).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_roundtrips_u64_exactly() {
        let v = Json::u64(u64::MAX);
        assert_eq!(v.encode(), "18446744073709551615");
        let back = Json::parse(&v.encode()).unwrap();
        assert_eq!(back.as_u64(), Some(u64::MAX));
    }

    #[test]
    fn json_roundtrips_f64_exactly() {
        // 0.0288f32 widened to f64: a value whose shortest round-trip
        // needs many digits.
        for v in [0.0288_f32 as f64, f64::MIN_POSITIVE, 1.0 / 3.0] {
            let back = Json::parse(&Json::f64(v).encode()).unwrap();
            assert_eq!(back.as_f64(), Some(v), "bit-exact float roundtrip");
        }
    }

    #[test]
    fn json_strings_escape_and_roundtrip() {
        let s = "line\nquote\"back\\slash\ttab\u{1}control ünïcode";
        let encoded = Json::Str(s.into()).encode();
        assert_eq!(Json::parse(&encoded).unwrap(), Json::Str(s.into()));
    }

    #[test]
    fn json_rejects_trailing_garbage_and_truncation() {
        assert!(Json::parse("{\"a\":1}x").is_err());
        assert!(Json::parse("{\"a\":").is_err());
        assert!(Json::parse("[1,2").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn errors_carry_offsets() {
        let e = Json::parse("{\"a\":1}x").unwrap_err();
        assert_eq!(e.offset, 7);
        assert!(e.to_string().contains("offset 7"));
    }
}
