//! Accelerated-beam emulation (extension).
//!
//! The paper's companion study (Chatzidimitriou et al., DSN 2019, ref \[32\])
//! compares microarchitectural fault injection against neutron-beam
//! experiments. Under a beam, strikes arrive as a **Poisson process** over
//! the whole run, each strike upsets 1–3 adjacent bits with the
//! technology's MBU-rate distribution (Table VI), and a single run can
//! absorb several independent strikes. This module emulates that protocol
//! on the simulator: instead of one fault of fixed cardinality per run, each
//! run draws `K ~ Poisson(λ)` strike events at uniform random cycles, with
//! per-strike cardinality sampled from the node's rates.
//!
//! Comparing a beam campaign's AVF with the Eq. 3 aggregate of three
//! fixed-cardinality campaigns validates the paper's single-fault
//! methodology: at realistic fluxes (λ ≪ 1) the two must agree, because
//! multi-strike runs are rare.

use crate::classify::{classify, ClassCounts};
use crate::mask::{ClusterSpec, MaskGenerator};
use crate::rng::Rng64;
use crate::tech::TechNode;
use mbu_cpu::{CoreConfig, HwComponent, RunEnd, Simulator};
use mbu_workloads::Workload;
use std::fmt;

/// Configuration of a beam-emulation campaign.
#[derive(Debug, Clone)]
pub struct BeamConfig {
    /// The workload under beam.
    pub workload: Workload,
    /// The struck component.
    pub component: HwComponent,
    /// Expected number of strikes per run (Poisson mean λ).
    pub flux: f64,
    /// Technology node providing the per-strike cardinality distribution.
    pub node: TechNode,
    /// Number of beam runs.
    pub runs: usize,
    /// Campaign seed.
    pub seed: u64,
    /// Cluster window per strike.
    pub cluster: ClusterSpec,
    /// Core configuration.
    pub core: CoreConfig,
    /// Timeout limit as a multiple of fault-free time.
    pub timeout_factor: u64,
}

impl BeamConfig {
    /// A beam campaign with λ = 1 at the given node.
    pub fn new(workload: Workload, component: HwComponent, node: TechNode) -> Self {
        Self {
            workload,
            component,
            flux: 1.0,
            node,
            runs: 200,
            seed: 0xBEA4_2019,
            cluster: ClusterSpec::DEFAULT,
            core: CoreConfig::cortex_a9_like(),
            timeout_factor: 4,
        }
    }

    /// Sets the Poisson mean.
    pub fn flux(mut self, flux: f64) -> Self {
        self.flux = flux;
        self
    }

    /// Sets the run count.
    pub fn runs(mut self, runs: usize) -> Self {
        self.runs = runs;
        self
    }

    /// Sets the seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Result of a beam campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct BeamResult {
    /// Outcome counts over all runs (zero-strike runs are masked by
    /// construction).
    pub counts: ClassCounts,
    /// Total strikes delivered across the campaign.
    pub total_strikes: u64,
    /// Runs that received no strike.
    pub quiet_runs: u64,
    /// Runs that received two or more strikes.
    pub multi_strike_runs: u64,
    /// Fault-free execution time.
    pub fault_free_cycles: u64,
}

impl BeamResult {
    /// AVF over all beamed runs.
    pub fn avf(&self) -> f64 {
        self.counts.avf()
    }

    /// AVF conditioned on at least one strike (comparable to injection
    /// campaigns, which always strike).
    pub fn avf_given_struck(&self) -> f64 {
        let struck = self.counts.total() - self.quiet_runs;
        if struck == 0 {
            0.0
        } else {
            (self.counts.total() - self.counts.masked) as f64 / struck as f64
        }
    }
}

impl fmt::Display for BeamResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "beam: {} ({} strikes, {} quiet, {} multi-strike; AVF|struck {:.2}%)",
            self.counts,
            self.total_strikes,
            self.quiet_runs,
            self.multi_strike_runs,
            self.avf_given_struck() * 100.0
        )
    }
}

/// Knuth's Poisson sampler (exact for the small λ used here).
fn poisson(rng: &mut Rng64, lambda: f64) -> u32 {
    let l = (-lambda).exp();
    let mut k = 0u32;
    let mut p = 1.0f64;
    loop {
        p *= rng.gen::<f64>();
        if p <= l {
            return k;
        }
        k += 1;
    }
}

/// Samples a strike cardinality (1–3 bits) from the node's MBU rates.
fn strike_cardinality(rng: &mut Rng64, node: TechNode) -> usize {
    let r = node.mbu_rates();
    let x: f64 = rng.gen();
    if x < r[0] {
        1
    } else if x < r[0] + r[1] {
        2
    } else {
        3
    }
}

/// Runs a beam-emulation campaign (single-threaded; beam campaigns are
/// typically small validation runs).
///
/// # Panics
///
/// Panics if the fault-free run does not exit cleanly, or on invalid
/// configuration (`runs` = 0, non-positive flux).
pub fn run_beam(config: &BeamConfig) -> BeamResult {
    assert!(config.runs > 0, "beam campaign needs runs");
    assert!(config.flux > 0.0, "flux must be positive");
    let program = config.workload.program();
    let golden = Simulator::new(config.core, &program).run(u64::MAX / 8);
    let RunEnd::Exited { code: golden_code } = golden.end else {
        panic!("fault-free run of {} must exit cleanly", config.workload);
    };
    let mut counts = ClassCounts::new();
    let mut total_strikes = 0u64;
    let mut quiet_runs = 0u64;
    let mut multi = 0u64;
    for i in 0..config.runs {
        let mut rng = Rng64::seed_from_u64(
            config
                .seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(i as u64 + 1),
        );
        let strikes = poisson(&mut rng, config.flux);
        total_strikes += strikes as u64;
        if strikes == 0 {
            quiet_runs += 1;
        }
        if strikes >= 2 {
            multi += 1;
        }
        // Strike times, sorted.
        let mut times: Vec<u64> = (0..strikes)
            .map(|_| rng.gen_range(0..golden.cycles))
            .collect();
        times.sort_unstable();
        let mut gen = MaskGenerator::seeded(rng.gen(), config.cluster);
        let mut sim = Simulator::new(config.core, &program);
        let mut ended = None;
        for t in times {
            if let Some(end) = sim.run_until_cycle(t) {
                ended = Some(end);
                break;
            }
            let cardinality = strike_cardinality(&mut rng, config.node);
            let mask = gen.generate(sim.component_geometry(config.component), cardinality);
            sim.inject_flips(config.component, &mask.coords);
        }
        let end = ended
            .or_else(|| sim.run_until_cycle(golden.cycles * config.timeout_factor))
            .unwrap_or(RunEnd::CycleLimit);
        let result = mbu_cpu::RunResult {
            end,
            output: sim.output().to_vec(),
            cycles: sim.cycle(),
            instructions: sim.instructions(),
        };
        counts.record(classify(&result, &golden.output, golden_code));
    }
    BeamResult {
        counts,
        total_strikes,
        quiet_runs,
        multi_strike_runs: multi,
        fault_free_cycles: golden.cycles,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_mean_is_close_to_lambda() {
        let mut rng = Rng64::seed_from_u64(7);
        let n = 4000;
        let total: u64 = (0..n).map(|_| poisson(&mut rng, 1.5) as u64).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 1.5).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn cardinality_follows_node_rates() {
        let mut rng = Rng64::seed_from_u64(8);
        let n = 4000;
        let mut counts = [0u32; 3];
        for _ in 0..n {
            counts[strike_cardinality(&mut rng, TechNode::N22) - 1] += 1;
        }
        let single = counts[0] as f64 / n as f64;
        assert!((single - 0.553).abs() < 0.03, "single rate {single}");
        assert!(counts[2] > 0, "triple-bit strikes must occur at 22 nm");
    }

    #[test]
    fn beam_campaign_runs_and_accounts_strikes() {
        let r = run_beam(
            &BeamConfig::new(Workload::Stringsearch, HwComponent::RegFile, TechNode::N22)
                .runs(30)
                .seed(3),
        );
        assert_eq!(r.counts.total(), 30);
        assert!(
            r.total_strikes >= 10,
            "λ=1 over 30 runs delivers strikes ({} seen)",
            r.total_strikes
        );
        assert!(r.avf_given_struck() >= r.avf() - 1e-12);
    }

    #[test]
    fn at_250nm_all_strikes_are_single_bit() {
        let mut rng = Rng64::seed_from_u64(9);
        for _ in 0..200 {
            assert_eq!(strike_cardinality(&mut rng, TechNode::N250), 1);
        }
    }

    #[test]
    fn beam_is_deterministic() {
        let mk = || {
            run_beam(
                &BeamConfig::new(Workload::Stringsearch, HwComponent::DTlb, TechNode::N32)
                    .runs(15)
                    .seed(77),
            )
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn higher_flux_strikes_more() {
        let low = run_beam(
            &BeamConfig::new(Workload::Stringsearch, HwComponent::L1D, TechNode::N22)
                .runs(20)
                .flux(0.2)
                .seed(5),
        );
        let high = run_beam(
            &BeamConfig::new(Workload::Stringsearch, HwComponent::L1D, TechNode::N22)
                .runs(20)
                .flux(3.0)
                .seed(5),
        );
        assert!(high.total_strikes > low.total_strikes);
        assert!(high.quiet_runs <= low.quiet_runs);
    }
}
