//! Property-based tests of the injector and analysis invariants.

use mbu_gefin::avf::{weighted_avf, ComponentAvf};
use mbu_gefin::classify::{ClassCounts, FaultEffect};
use mbu_gefin::mask::{ClusterSpec, MaskGenerator};
use mbu_gefin::stats::{error_margin, sample_size, Z_99};
use mbu_gefin::tech::{node_avf, TechNode};
use mbu_sram::Geometry;
use proptest::prelude::*;
use std::collections::BTreeSet;

proptest! {
    /// Masks always have exactly N distinct in-bounds flips inside one
    /// cluster window, for arbitrary geometries and cluster shapes.
    #[test]
    fn mask_invariants(
        seed in any::<u64>(),
        rows in 3usize..512,
        cols in 3usize..512,
        crows in 1usize..5,
        ccols in 1usize..5,
        cardinality_sel in any::<prop::sample::Index>()
    ) {
        let cluster = ClusterSpec::new(crows, ccols);
        let geometry = Geometry::new(rows, cols);
        let max_n = cluster.cells().min(geometry.total_bits());
        let n = 1 + cardinality_sel.index(max_n);
        let mut gen = MaskGenerator::seeded(seed, cluster);
        let mask = gen.generate(geometry, n);
        prop_assert_eq!(mask.cardinality(), n);
        let set: BTreeSet<_> = mask.coords.iter().collect();
        prop_assert_eq!(set.len(), n, "flips must be distinct");
        for c in &mask.coords {
            prop_assert!(geometry.contains(c.row, c.col));
            prop_assert!(c.row >= mask.origin.row && c.row < mask.origin.row + mask.cluster.rows);
            prop_assert!(c.col >= mask.origin.col && c.col < mask.origin.col + mask.cluster.cols);
        }
    }

    /// Class fractions are a probability distribution and AVF = 1 − masked.
    #[test]
    fn class_counts_distribution(
        masked in 0u64..10_000,
        sdc in 0u64..10_000,
        crash in 0u64..10_000,
        timeout in 0u64..10_000,
        assert_ in 0u64..10_000
    ) {
        let c = ClassCounts { masked, sdc, crash, timeout, assert_ };
        prop_assume!(c.total() > 0);
        let sum: f64 = FaultEffect::ALL.iter().map(|&e| c.fraction(e)).sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
        prop_assert!((c.avf() - (1.0 - c.fraction(FaultEffect::Masked))).abs() < 1e-12);
        prop_assert!(c.avf() >= 0.0 && c.avf() <= 1.0);
    }

    /// Eq. 2 is a convex combination: bounded by min/max of its inputs and
    /// invariant under weight scaling.
    #[test]
    fn weighted_avf_is_convex_and_scale_invariant(
        samples in proptest::collection::vec((0.0f64..=1.0, 1u64..1_000_000), 1..16),
        scale in 1u64..1000
    ) {
        let w = weighted_avf(&samples);
        let lo = samples.iter().map(|(a, _)| *a).fold(f64::INFINITY, f64::min);
        let hi = samples.iter().map(|(a, _)| *a).fold(0.0, f64::max);
        prop_assert!(w >= lo - 1e-12 && w <= hi + 1e-12);
        let scaled: Vec<(f64, u64)> = samples.iter().map(|&(a, t)| (a, t * scale)).collect();
        prop_assert!((weighted_avf(&scaled) - w).abs() < 1e-9);
    }

    /// Eq. 3 is a convex combination of the three cardinality AVFs, for
    /// every node.
    #[test]
    fn node_avf_is_convex(s in 0.0f64..=1.0, d in 0.0f64..=1.0, t in 0.0f64..=1.0) {
        let a = ComponentAvf::new(s, d, t);
        let lo = s.min(d).min(t);
        let hi = s.max(d).max(t);
        for node in TechNode::ALL {
            let v = node_avf(&a, node);
            prop_assert!(v >= lo - 1e-12 && v <= hi + 1e-12, "{node}: {v}");
        }
        prop_assert!((node_avf(&a, TechNode::N250) - s).abs() < 1e-12);
    }

    /// sample_size and error_margin are mutually consistent: the margin of
    /// the computed sample size never exceeds the requested margin.
    #[test]
    fn sampling_formulas_are_inverse(
        population in 100u64..1_000_000_000,
        margin_mill in 5u32..200, // 0.5 % .. 20 %
        p_pct in 1u32..100
    ) {
        let margin = margin_mill as f64 / 1000.0;
        let p = p_pct as f64 / 100.0;
        let n = sample_size(population, margin, Z_99, p).unwrap().min(population);
        let achieved = error_margin(population, n, Z_99, p).unwrap();
        prop_assert!(achieved <= margin + 1e-9, "n={n}: achieved {achieved} > requested {margin}");
        // One fewer sample must not do better than the requested margin.
        if n > 1 && n < population {
            let worse = error_margin(population, n - 1, Z_99, p).unwrap();
            prop_assert!(worse >= achieved);
        }
    }

    /// Injection cycles are uniform over the fault-free window (bounds).
    #[test]
    fn injection_cycles_in_bounds(seed in any::<u64>(), cycles in 1u64..1_000_000) {
        let mut gen = MaskGenerator::seeded(seed, ClusterSpec::DEFAULT);
        for _ in 0..16 {
            prop_assert!(gen.injection_cycle(cycles) < cycles);
        }
    }
}
