//! Bit-accurate SRAM array modeling for microarchitecture-level fault injection.
//!
//! Every hardware structure that the fault injector can target (cache data
//! arrays, cache tag arrays, TLB entry arrays, the physical register file) is
//! backed by a [`BitArray`]: a two-dimensional grid of bits with an explicit
//! *physical geometry* (rows × columns). The geometry is what makes **spatial**
//! multi-bit faults meaningful — a particle strike upsets a cluster of
//! physically adjacent cells, so the injector needs to know which bits are
//! neighbours.
//!
//! The paper (§III.B) models a fault as a set of bit flips inside an `X × Y`
//! cluster placed at a random position of the SRAM array; this crate provides
//! the array side of that contract (addressing, flipping, geometry queries)
//! while the cluster/mask logic lives in the `mbu-gefin` crate.
//!
//! # Example
//!
//! ```
//! use mbu_sram::{BitArray, Geometry};
//!
//! let mut array = BitArray::new(Geometry::new(4, 8));
//! array.write_word(1, 0, 8, 0xA5);
//! assert_eq!(array.read_word(1, 0, 8), 0xA5);
//! array.flip(1, 0); // particle strike on bit (row 1, col 0)
//! assert_eq!(array.read_word(1, 0, 8), 0xA4);
//! ```

#![forbid(unsafe_code)]

pub mod cow;
pub mod probe;

pub use cow::CowVec;
pub use probe::LivenessProbe;

use std::fmt;

/// Physical geometry of an SRAM array: `rows × cols` bit cells.
///
/// The geometry determines spatial adjacency for multi-bit upset modeling.
/// Bits in the same row and neighbouring columns (or the same column and
/// neighbouring rows) are physically adjacent.
///
/// # Example
///
/// ```
/// use mbu_sram::Geometry;
/// let g = Geometry::new(256, 1024);
/// assert_eq!(g.total_bits(), 262_144); // a 32 KB cache data array
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Geometry {
    rows: usize,
    cols: usize,
}

impl Geometry {
    /// Creates a geometry of `rows × cols` bits.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "geometry dimensions must be nonzero");
        Self { rows, cols }
    }

    /// Number of bit rows (word lines).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of bit columns (bit lines).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of bits in the array.
    pub fn total_bits(&self) -> usize {
        self.rows * self.cols
    }

    /// Maps a `(row, col)` coordinate to a linear bit index (row-major).
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is out of bounds.
    pub fn linear_index(&self, row: usize, col: usize) -> usize {
        assert!(
            row < self.rows && col < self.cols,
            "bit coordinate out of bounds"
        );
        row * self.cols + col
    }

    /// Maps a linear bit index back to a `(row, col)` coordinate.
    ///
    /// # Panics
    ///
    /// Panics if `index >= total_bits()`.
    pub fn coordinate(&self, index: usize) -> (usize, usize) {
        assert!(index < self.total_bits(), "linear bit index out of bounds");
        (index / self.cols, index % self.cols)
    }

    /// Returns `true` if `(row, col)` lies inside the array.
    pub fn contains(&self, row: usize, col: usize) -> bool {
        row < self.rows && col < self.cols
    }
}

impl fmt::Display for Geometry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{} bits", self.rows, self.cols)
    }
}

/// A coordinate of a single bit cell inside a [`BitArray`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BitCoord {
    /// Row (word line) of the cell.
    pub row: usize,
    /// Column (bit line) of the cell.
    pub col: usize,
}

impl BitCoord {
    /// Creates a bit coordinate.
    pub fn new(row: usize, col: usize) -> Self {
        Self { row, col }
    }
}

impl fmt::Display for BitCoord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.row, self.col)
    }
}

/// A two-dimensional, bit-addressable SRAM array.
///
/// Storage is row-major and packed into `u64` words. All bit addressing is in
/// `(row, col)` physical coordinates so that fault clusters can be placed at
/// physically meaningful positions.
///
/// # Example
///
/// ```
/// use mbu_sram::{BitArray, Geometry};
/// let mut a = BitArray::new(Geometry::new(2, 64));
/// a.write_word(0, 0, 64, u64::MAX);
/// assert_eq!(a.count_ones(), 64);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitArray {
    geometry: Geometry,
    words: Vec<u64>,
}

impl BitArray {
    /// Creates a zero-initialized array with the given geometry.
    pub fn new(geometry: Geometry) -> Self {
        let nwords = geometry.total_bits().div_ceil(64);
        Self {
            geometry,
            words: vec![0; nwords],
        }
    }

    /// The physical geometry of this array.
    pub fn geometry(&self) -> Geometry {
        self.geometry
    }

    #[inline]
    fn locate(&self, row: usize, col: usize) -> (usize, u32) {
        let idx = self.geometry.linear_index(row, col);
        (idx / 64, (idx % 64) as u32)
    }

    /// Reads the bit at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is out of bounds.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> bool {
        let (w, b) = self.locate(row, col);
        (self.words[w] >> b) & 1 == 1
    }

    /// Sets the bit at `(row, col)` to `value`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is out of bounds.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, value: bool) {
        let (w, b) = self.locate(row, col);
        if value {
            self.words[w] |= 1 << b;
        } else {
            self.words[w] &= !(1 << b);
        }
    }

    /// Flips (inverts) the bit at `(row, col)` — the particle-strike primitive.
    ///
    /// Returns the *new* value of the bit.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is out of bounds.
    #[inline]
    pub fn flip(&mut self, row: usize, col: usize) -> bool {
        let (w, b) = self.locate(row, col);
        self.words[w] ^= 1 << b;
        (self.words[w] >> b) & 1 == 1
    }

    /// Flips every coordinate in `coords`.
    ///
    /// # Panics
    ///
    /// Panics if any coordinate is out of bounds.
    pub fn flip_all<I>(&mut self, coords: I)
    where
        I: IntoIterator<Item = BitCoord>,
    {
        for c in coords {
            self.flip(c.row, c.col);
        }
    }

    /// Reads `width` bits (≤ 64) starting at `(row, col)` within a single row,
    /// least-significant bit first.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or > 64, or if `col + width` exceeds the row.
    pub fn read_word(&self, row: usize, col: usize, width: usize) -> u64 {
        assert!(width > 0 && width <= 64, "width must be in 1..=64");
        assert!(
            col + width <= self.geometry.cols,
            "word read crosses row boundary"
        );
        let mut v = 0u64;
        for i in 0..width {
            if self.get(row, col + i) {
                v |= 1 << i;
            }
        }
        v
    }

    /// Writes the low `width` bits (≤ 64) of `value` starting at `(row, col)`
    /// within a single row, least-significant bit first.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or > 64, or if `col + width` exceeds the row.
    pub fn write_word(&mut self, row: usize, col: usize, width: usize, value: u64) {
        assert!(width > 0 && width <= 64, "width must be in 1..=64");
        assert!(
            col + width <= self.geometry.cols,
            "word write crosses row boundary"
        );
        for i in 0..width {
            self.set(row, col + i, (value >> i) & 1 == 1);
        }
    }

    /// Reads an entire row as bytes (little-endian bit order within bytes).
    ///
    /// The row width must be a multiple of 8.
    ///
    /// # Panics
    ///
    /// Panics if the row is out of bounds or the width is not byte-aligned.
    pub fn read_row_bytes(&self, row: usize) -> Vec<u8> {
        assert!(
            self.geometry.cols.is_multiple_of(8),
            "row width must be byte-aligned"
        );
        let mut out = Vec::with_capacity(self.geometry.cols / 8);
        for byte in 0..self.geometry.cols / 8 {
            out.push(self.read_word(row, byte * 8, 8) as u8);
        }
        out
    }

    /// Writes an entire row from bytes (little-endian bit order within bytes).
    ///
    /// # Panics
    ///
    /// Panics if `bytes` does not exactly fill the row.
    pub fn write_row_bytes(&mut self, row: usize, bytes: &[u8]) {
        assert!(
            self.geometry.cols.is_multiple_of(8),
            "row width must be byte-aligned"
        );
        assert_eq!(
            bytes.len() * 8,
            self.geometry.cols,
            "bytes must exactly fill the row"
        );
        for (byte, &b) in bytes.iter().enumerate() {
            self.write_word(row, byte * 8, 8, b as u64);
        }
    }

    /// Number of set bits in the whole array.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Resets every bit to zero.
    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
    }
}

/// Trait implemented by hardware structures that expose an injectable SRAM
/// surface to the fault injector.
///
/// The injector only needs two capabilities: discovering the physical geometry
/// (so fault clusters can be placed in bounds) and flipping a set of bit
/// cells. Structures with multiple internal arrays (e.g. a cache with data and
/// tag arrays) expose a single logical geometry and map coordinates
/// internally.
pub trait Injectable {
    /// Geometry of the injectable bit surface.
    fn injectable_geometry(&self) -> Geometry;

    /// Flips the bit at the given coordinate of the injectable surface.
    ///
    /// # Panics
    ///
    /// Implementations may panic if the coordinate is outside
    /// [`Self::injectable_geometry`].
    fn inject_flip(&mut self, coord: BitCoord);
}

impl Injectable for BitArray {
    fn injectable_geometry(&self) -> Geometry {
        self.geometry
    }

    fn inject_flip(&mut self, coord: BitCoord) {
        self.flip(coord.row, coord.col);
    }
}

/// Trait implemented by hardware structures whose complete mutable state can
/// be captured as an owned, bit-exact checkpoint.
///
/// A snapshot must cover *every* bit of state that influences future
/// behaviour — array contents, replacement metadata, counters — so that
/// restoring it and continuing is cycle-for-cycle identical to never having
/// stopped. Structures built from smaller `Snapshot` pieces (a memory
/// hierarchy, a whole core) compose their states structurally.
pub trait Snapshot {
    /// The owned checkpoint type.
    type State;

    /// Captures a bit-exact copy of all mutable state.
    fn snapshot(&self) -> Self::State;
}

/// Trait implemented by structures that can be rewound to a previously
/// captured [`Snapshot::State`].
pub trait Restorable: Snapshot {
    /// Overwrites all mutable state with the checkpoint.
    ///
    /// After `restore`, the structure must be indistinguishable from the one
    /// the state was captured from.
    fn restore(&mut self, state: &Self::State);
}

impl Snapshot for BitArray {
    type State = BitArray;

    fn snapshot(&self) -> BitArray {
        self.clone()
    }
}

impl Restorable for BitArray {
    fn restore(&mut self, state: &BitArray) {
        self.clone_from(state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_linear_roundtrip() {
        let g = Geometry::new(7, 13);
        for r in 0..7 {
            for c in 0..13 {
                assert_eq!(g.coordinate(g.linear_index(r, c)), (r, c));
            }
        }
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn geometry_rejects_zero() {
        let _ = Geometry::new(0, 4);
    }

    #[test]
    fn set_get_flip() {
        let mut a = BitArray::new(Geometry::new(3, 70));
        assert!(!a.get(2, 69));
        a.set(2, 69, true);
        assert!(a.get(2, 69));
        assert!(!a.flip(2, 69));
        assert!(!a.get(2, 69));
        assert!(a.flip(2, 69));
        assert_eq!(a.count_ones(), 1);
    }

    #[test]
    fn word_roundtrip_across_u64_boundary() {
        // Row width 100 -> second row starts mid-u64-word.
        let mut a = BitArray::new(Geometry::new(4, 100));
        a.write_word(1, 90, 10, 0x3FF);
        assert_eq!(a.read_word(1, 90, 10), 0x3FF);
        a.write_word(2, 0, 64, 0xDEAD_BEEF_CAFE_F00D);
        assert_eq!(a.read_word(2, 0, 64), 0xDEAD_BEEF_CAFE_F00D);
        // Neighbouring rows untouched.
        assert_eq!(a.read_word(0, 90, 10), 0);
        assert_eq!(a.read_word(3, 0, 64), 0);
    }

    #[test]
    fn row_bytes_roundtrip() {
        let mut a = BitArray::new(Geometry::new(2, 32));
        a.write_row_bytes(1, &[0x12, 0x34, 0x56, 0x78]);
        assert_eq!(a.read_row_bytes(1), vec![0x12, 0x34, 0x56, 0x78]);
        assert_eq!(a.read_row_bytes(0), vec![0, 0, 0, 0]);
    }

    #[test]
    fn flip_all_applies_each_coord() {
        let mut a = BitArray::new(Geometry::new(3, 3));
        a.flip_all([
            BitCoord::new(0, 0),
            BitCoord::new(1, 1),
            BitCoord::new(2, 2),
        ]);
        assert_eq!(a.count_ones(), 3);
        assert!(a.get(1, 1));
    }

    #[test]
    fn clear_zeroes_everything() {
        let mut a = BitArray::new(Geometry::new(2, 9));
        a.write_word(0, 0, 9, 0x1FF);
        a.clear();
        assert_eq!(a.count_ones(), 0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oob_get_panics() {
        let a = BitArray::new(Geometry::new(2, 2));
        a.get(2, 0);
    }

    #[test]
    #[should_panic(expected = "crosses row boundary")]
    fn word_crossing_row_panics() {
        let a = BitArray::new(Geometry::new(2, 16));
        a.read_word(0, 10, 8);
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let mut a = BitArray::new(Geometry::new(4, 100));
        a.write_word(1, 90, 10, 0x2AB);
        let saved = a.snapshot();
        a.clear();
        a.write_word(3, 0, 64, u64::MAX);
        a.restore(&saved);
        assert_eq!(a, saved);
        assert_eq!(a.read_word(1, 90, 10), 0x2AB);
    }
}
