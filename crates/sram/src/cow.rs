//! Copy-on-write array storage for zero-copy snapshot restore.
//!
//! A [`CowVec`] wraps its element vector in an [`Arc`], so cloning — which
//! is exactly what checkpointing ([`crate::Snapshot`]) and rewinding
//! ([`crate::Restorable`]) do — is O(1) and shares the underlying
//! allocation. The first mutation after a clone ([`CowVec::make_mut`])
//! unshares the whole array via [`Arc::make_mut`]; an array a run never
//! writes is never copied. This extends the page-granular copy-on-write
//! scheme of the DRAM model to the dense SRAM arrays (cache data / tag /
//! LRU, the physical register file), where whole-array granularity is the
//! right trade: the arrays are small (hundreds of bytes to a few KB), so
//! one copy on first touch beats per-line bookkeeping on every access.
//!
//! Sharing is observable ([`CowVec::is_shared_with`]), which buys two more
//! wins: equality and convergence checks compare shared arrays by pointer
//! without touching their bytes, and snapshot-store memory accounting
//! ([`CowVec::retained_bytes`]) charges an array shared with the previous
//! checkpoint zero bytes.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

use crate::{Restorable, Snapshot};

/// A clone-sharing, copy-on-first-write array.
///
/// # Example
///
/// ```
/// use mbu_sram::CowVec;
///
/// let mut a = CowVec::new(vec![0u8; 64]);
/// let snap = a.clone(); // O(1): shares the allocation
/// assert!(a.is_shared_with(&snap));
/// a.make_mut()[3] = 7; // first write copies the array once
/// assert!(!a.is_shared_with(&snap));
/// assert_eq!(snap[3], 0, "the snapshot is unaffected");
/// assert_eq!(a[3], 7);
/// ```
#[derive(Clone)]
pub struct CowVec<T> {
    inner: Arc<Vec<T>>,
}

impl<T> CowVec<T> {
    /// Wraps a vector.
    pub fn new(values: Vec<T>) -> Self {
        Self {
            inner: Arc::new(values),
        }
    }

    /// The elements as a read-only slice (also available through `Deref`).
    pub fn as_slice(&self) -> &[T] {
        &self.inner
    }

    /// Whether this array and `other` share the same allocation — true
    /// right after a clone, false once either side has been written.
    pub fn is_shared_with(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }

    /// Heap bytes of the element storage.
    pub fn heap_bytes(&self) -> usize {
        self.inner.len() * std::mem::size_of::<T>()
    }

    /// Retained heap bytes of this array when `prev` is an already-retained
    /// checkpoint: an allocation shared with `prev` is charged zero.
    pub fn retained_bytes(&self, prev: Option<&Self>) -> usize {
        if prev.is_some_and(|p| self.is_shared_with(p)) {
            0
        } else {
            self.heap_bytes()
        }
    }
}

impl<T: Clone> CowVec<T> {
    /// Mutable access to the elements, unsharing (copying the whole array)
    /// first if the allocation is shared with a snapshot.
    pub fn make_mut(&mut self) -> &mut [T] {
        Arc::make_mut(&mut self.inner).as_mut_slice()
    }
}

impl<T> Deref for CowVec<T> {
    type Target = [T];

    fn deref(&self) -> &[T] {
        &self.inner
    }
}

impl<T: fmt::Debug> fmt::Debug for CowVec<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// Semantic equality over the elements, with a pointer-equality fast path
/// for arrays still sharing one allocation.
impl<T: PartialEq> PartialEq for CowVec<T> {
    fn eq(&self, other: &Self) -> bool {
        self.is_shared_with(other) || *self.inner == *other.inner
    }
}

impl<T: Eq> Eq for CowVec<T> {}

impl<T: Clone> Snapshot for CowVec<T> {
    type State = CowVec<T>;

    fn snapshot(&self) -> CowVec<T> {
        // O(1): shares the allocation until the next write.
        self.clone()
    }
}

impl<T: Clone> Restorable for CowVec<T> {
    fn restore(&mut self, state: &CowVec<T>) {
        // O(1): drops this side's allocation (if unshared) and re-shares.
        self.inner = Arc::clone(&state.inner);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_shares_until_first_write() {
        let mut a = CowVec::new(vec![1u32, 2, 3]);
        let snap = a.snapshot();
        assert!(a.is_shared_with(&snap));
        assert_eq!(snap.retained_bytes(Some(&a)), 0);
        a.make_mut()[1] = 9;
        assert!(!a.is_shared_with(&snap));
        assert_eq!(a.as_slice(), &[1, 9, 3]);
        assert_eq!(snap.as_slice(), &[1, 2, 3]);
        assert_eq!(snap.retained_bytes(Some(&a)), 12);
        assert_eq!(snap.retained_bytes(None), 12);
    }

    #[test]
    fn restore_reshares_the_snapshot_allocation() {
        let mut a = CowVec::new(vec![0u8; 8]);
        let snap = a.snapshot();
        a.make_mut()[0] = 0xFF;
        assert_ne!(a, snap);
        a.restore(&snap);
        assert!(a.is_shared_with(&snap), "restore must re-share, not copy");
        assert_eq!(a, snap);
    }

    #[test]
    fn equality_is_semantic_not_pointer() {
        let a = CowVec::new(vec![5u8; 4]);
        let b = CowVec::new(vec![5u8; 4]);
        assert!(!a.is_shared_with(&b));
        assert_eq!(a, b, "distinct allocations with equal bytes are equal");
        let c = CowVec::new(vec![6u8; 4]);
        assert_ne!(a, c);
    }

    #[test]
    fn make_mut_without_sharing_does_not_copy() {
        let mut a = CowVec::new(vec![1u8, 2]);
        let p = a.as_slice().as_ptr();
        a.make_mut()[0] = 3;
        assert_eq!(a.as_slice().as_ptr(), p, "unshared write must be in place");
    }
}
