//! Liveness-observation hooks for SRAM-like storage arrays (ACE analysis).
//!
//! A [`LivenessProbe`] receives the *event stream* of one storage structure
//! — writes, reads, invalidations — during a fault-free run. From that
//! stream an observer (the `mbu-ace` crate) reconstructs per-field live
//! intervals: a bit is *live* (ACE — required for Architecturally Correct
//! Execution) from a write until its last read before the next overwrite,
//! and *dead* (un-ACE) everywhere else. Analytical AVF and the campaign
//! fast-path oracle both derive from these intervals.
//!
//! Probes are deliberately dumb byte-pushers on the hot path: every hook
//! takes the current cycle plus a `(row, col, width)` column range in the
//! structure's *logical* geometry (one row per register / cache line / TLB
//! entry). Interpretation — field fate-sharing, interval merging — happens
//! on the observer side. Structures call the hooks only when a probe is
//! attached, so an unprobed simulation pays a branch per event at most.

use std::any::Any;

/// Observer of one storage array's read/write/invalidate event stream.
///
/// Events arrive in nondecreasing cycle order. Coordinates are logical:
/// `row` is the register / line / entry index and `[col, col + width)` the
/// bit range touched. Implementations must be conservative about anything
/// they do not model — the campaign oracle treats "possibly live" as live.
pub trait LivenessProbe: Send {
    /// `width` bits at `(row, col)` were overwritten with a new value.
    fn on_write(&mut self, now: u64, row: usize, col: usize, width: usize);

    /// `width` bits at `(row, col)` were read (observed). A read makes the
    /// current value live from its defining write through this cycle.
    fn on_read(&mut self, now: u64, row: usize, col: usize, width: usize);

    /// `width` bits at `(row, col)` became architecturally dead without
    /// being overwritten (e.g. a physical register returned to the free
    /// list, a flushed TLB entry).
    fn on_invalidate(&mut self, now: u64, row: usize, col: usize, width: usize);

    /// A write known to replace a (possibly still-valid) previous value —
    /// a cache fill over a victim, a TLB fill over the round-robin slot.
    /// Defaults to [`LivenessProbe::on_write`]; observers that track
    /// overwrite-of-unread-value statistics can override it.
    fn on_overwrite(&mut self, now: u64, row: usize, col: usize, width: usize) {
        self.on_write(now, row, col, width);
    }

    /// Recovers the concrete observer after a run (downcast support for
    /// detach-and-finish flows).
    fn into_any(self: Box<Self>) -> Box<dyn Any>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct CountingProbe {
        writes: usize,
        reads: usize,
        invalidates: usize,
    }

    impl LivenessProbe for CountingProbe {
        fn on_write(&mut self, _now: u64, _row: usize, _col: usize, _width: usize) {
            self.writes += 1;
        }
        fn on_read(&mut self, _now: u64, _row: usize, _col: usize, _width: usize) {
            self.reads += 1;
        }
        fn on_invalidate(&mut self, _now: u64, _row: usize, _col: usize, _width: usize) {
            self.invalidates += 1;
        }
        fn into_any(self: Box<Self>) -> Box<dyn Any> {
            self
        }
    }

    #[test]
    fn default_overwrite_delegates_to_write() {
        let mut p = CountingProbe::default();
        p.on_overwrite(3, 0, 0, 8);
        assert_eq!(p.writes, 1);
    }

    #[test]
    fn into_any_recovers_concrete_type() {
        let p: Box<dyn LivenessProbe> = Box::new(CountingProbe::default());
        let concrete = p.into_any().downcast::<CountingProbe>().expect("downcast");
        assert_eq!(concrete.reads, 0);
    }
}
