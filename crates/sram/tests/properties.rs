//! Property-based tests of the SRAM bit-array invariants.

use mbu_sram::{BitArray, BitCoord, Geometry, Injectable};
use proptest::prelude::*;

fn geometry_strategy() -> impl Strategy<Value = Geometry> {
    (1usize..64, 1usize..200).prop_map(|(r, c)| Geometry::new(r, c))
}

proptest! {
    /// (row, col) ↔ linear index is a bijection.
    #[test]
    fn linear_index_bijection(g in geometry_strategy(), idx in any::<prop::sample::Index>()) {
        let i = idx.index(g.total_bits());
        let (r, c) = g.coordinate(i);
        prop_assert!(g.contains(r, c));
        prop_assert_eq!(g.linear_index(r, c), i);
    }

    /// Flip is an involution: flipping twice restores the array.
    #[test]
    fn flip_is_involution(
        g in geometry_strategy(),
        seeds in proptest::collection::vec(any::<prop::sample::Index>(), 1..20)
    ) {
        let mut a = BitArray::new(g);
        // Randomize contents first.
        for (k, s) in seeds.iter().enumerate() {
            let (r, c) = g.coordinate(s.index(g.total_bits()));
            a.set(r, c, k % 2 == 0);
        }
        let before = a.clone();
        let coords: Vec<BitCoord> = seeds
            .iter()
            .map(|s| {
                let (r, c) = g.coordinate(s.index(g.total_bits()));
                BitCoord::new(r, c)
            })
            .collect();
        a.flip_all(coords.clone());
        a.flip_all(coords);
        prop_assert_eq!(a, before);
    }

    /// Word writes read back exactly and do not disturb other rows.
    #[test]
    fn word_roundtrip_isolated(
        rows in 2usize..16,
        cols in 64usize..128,
        row in any::<prop::sample::Index>(),
        col in any::<prop::sample::Index>(),
        width in 1usize..=64,
        value in any::<u64>()
    ) {
        let g = Geometry::new(rows, cols);
        let row = row.index(rows);
        let col = col.index(cols - width + 1);
        let mut a = BitArray::new(g);
        let masked = if width == 64 { value } else { value & ((1 << width) - 1) };
        a.write_word(row, col, width, value);
        prop_assert_eq!(a.read_word(row, col, width), masked);
        prop_assert_eq!(a.count_ones(), masked.count_ones() as usize);
        for other in 0..rows {
            if other != row {
                prop_assert_eq!(a.read_word(other, 0, 64.min(cols)), 0);
            }
        }
    }

    /// The Injectable impl agrees with direct flips.
    #[test]
    fn injectable_matches_direct_flip(g in geometry_strategy(), idx in any::<prop::sample::Index>()) {
        let (r, c) = g.coordinate(idx.index(g.total_bits()));
        let mut a = BitArray::new(g);
        let mut b = BitArray::new(g);
        a.flip(r, c);
        b.inject_flip(BitCoord::new(r, c));
        prop_assert_eq!(b.injectable_geometry(), g);
        prop_assert_eq!(a, b);
    }

    /// Row-bytes round-trip for byte-aligned geometries.
    #[test]
    fn row_bytes_roundtrip(rows in 1usize..8, bytes_per_row in 1usize..16, row in any::<prop::sample::Index>(), data in proptest::collection::vec(any::<u8>(), 1..16)) {
        let g = Geometry::new(rows, bytes_per_row * 8);
        let row = row.index(rows);
        let mut a = BitArray::new(g);
        let mut payload = data;
        payload.resize(bytes_per_row, 0);
        a.write_row_bytes(row, &payload);
        prop_assert_eq!(a.read_row_bytes(row), payload);
    }
}
