//! Registry of the six injectable hardware components studied by the paper.

use std::fmt;
use std::str::FromStr;

/// The six hardware structures the paper injects faults into (§III.A):
/// together they hold more than 94 % of the CPU's memory cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum HwComponent {
    /// L1 data cache (data array).
    L1D,
    /// L1 instruction cache (data array).
    L1I,
    /// Unified L2 cache (data array).
    L2,
    /// Physical register file.
    RegFile,
    /// Data TLB.
    DTlb,
    /// Instruction TLB.
    ITlb,
}

impl HwComponent {
    /// All six components in the paper's presentation order.
    pub const ALL: [HwComponent; 6] = [
        HwComponent::L1D,
        HwComponent::L1I,
        HwComponent::L2,
        HwComponent::RegFile,
        HwComponent::DTlb,
        HwComponent::ITlb,
    ];

    /// The paper's display name.
    pub fn name(self) -> &'static str {
        match self {
            HwComponent::L1D => "L1D Cache",
            HwComponent::L1I => "L1I Cache",
            HwComponent::L2 => "L2 Cache",
            HwComponent::RegFile => "Register File",
            HwComponent::DTlb => "DTLB",
            HwComponent::ITlb => "ITLB",
        }
    }
}

impl fmt::Display for HwComponent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error returned when parsing an unknown component name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseComponentError(String);

impl fmt::Display for ParseComponentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown hardware component `{}`", self.0)
    }
}

impl std::error::Error for ParseComponentError {}

impl FromStr for HwComponent {
    type Err = ParseComponentError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "l1d" => Ok(HwComponent::L1D),
            "l1i" => Ok(HwComponent::L1I),
            "l2" => Ok(HwComponent::L2),
            "regfile" | "rf" | "prf" => Ok(HwComponent::RegFile),
            "dtlb" => Ok(HwComponent::DTlb),
            "itlb" => Ok(HwComponent::ITlb),
            other => Err(ParseComponentError(other.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_lists_six_components() {
        assert_eq!(HwComponent::ALL.len(), 6);
    }

    #[test]
    fn parse_roundtrip() {
        for c in HwComponent::ALL {
            let name = match c {
                HwComponent::L1D => "l1d",
                HwComponent::L1I => "l1i",
                HwComponent::L2 => "l2",
                HwComponent::RegFile => "regfile",
                HwComponent::DTlb => "dtlb",
                HwComponent::ITlb => "itlb",
            };
            assert_eq!(name.parse::<HwComponent>().unwrap(), c);
        }
        assert!("bogus".parse::<HwComponent>().is_err());
    }

    #[test]
    fn display_names() {
        assert_eq!(HwComponent::L1D.to_string(), "L1D Cache");
        assert_eq!(HwComponent::ITlb.to_string(), "ITLB");
    }
}
