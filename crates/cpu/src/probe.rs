//! Core-side liveness / occupancy probe attachment points (ACE analysis).
//!
//! [`SimProbes`] bundles everything an observer can attach to one
//! [`crate::Simulator`]: the full memory-side probe set
//! ([`mbu_mem::MemProbes`]), a [`mbu_sram::LivenessProbe`] on the physical
//! register file, and a [`PipelineProbe`] sampling per-cycle occupancy of
//! the queue structures (ROB, issue queue, store buffer). All slots are
//! optional; with nothing attached the simulator's hot path pays a single
//! branch per cycle.

use mbu_mem::MemProbes;
use mbu_sram::LivenessProbe;
use std::any::Any;
use std::fmt;

/// Observer of per-cycle pipeline-queue occupancy.
///
/// Called once per simulated cycle (before the cycle's stages run) with the
/// current number of valid entries in each queue structure. Occupancy is the
/// liveness proxy for queues whose entries live from allocate to
/// commit/squash: AVF ≈ mean occupancy / capacity (Mukherjee et al.,
/// "little's-law" ACE estimate).
pub trait PipelineProbe: Send {
    /// Occupancy sample at `cycle`: ROB entries, issue-queue entries and
    /// ROB entries holding a not-yet-committed store (the store buffer).
    fn on_cycle(&mut self, cycle: u64, rob: usize, iq: usize, store_buffer: usize);

    /// Recovers the concrete observer after a run.
    fn into_any(self: Box<Self>) -> Box<dyn Any>;
}

/// Everything attachable to one simulator run.
#[derive(Default)]
pub struct SimProbes {
    /// Memory-hierarchy probes (caches, TLBs).
    pub mem: MemProbes,
    /// Physical register file probe (rows = physical registers, 32 bit
    /// columns; a register's bits share fate, so events are whole-row).
    pub prf: Option<Box<dyn LivenessProbe>>,
    /// Pipeline-queue occupancy sampler.
    pub pipeline: Option<Box<dyn PipelineProbe>>,
}

impl SimProbes {
    /// Whether any probe is attached.
    pub fn any_attached(&self) -> bool {
        self.mem.any_attached() || self.prf.is_some() || self.pipeline.is_some()
    }
}

impl fmt::Debug for SimProbes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SimProbes")
            .field("mem", &self.mem)
            .field("prf", &self.prf.is_some())
            .field("pipeline", &self.pipeline.is_some())
            .finish()
    }
}
