//! Core configuration (the paper's Table I).

use mbu_mem::MemorySystemConfig;

/// Microarchitectural parameters of the modeled out-of-order core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreConfig {
    /// Instructions fetched (and decoded) per cycle.
    pub fetch_width: u32,
    /// Instructions issued to execution per cycle.
    pub issue_width: u32,
    /// Results written back per cycle.
    pub writeback_width: u32,
    /// Instructions committed per cycle.
    pub commit_width: u32,
    /// Physical integer registers.
    pub phys_regs: u32,
    /// Reorder-buffer entries.
    pub rob_entries: u32,
    /// Instruction-queue entries.
    pub iq_entries: u32,
    /// Decoded-instruction buffer between fetch and rename.
    pub decode_buffer: u32,
    /// Issue strictly in program order (in-order core ablation; the paper's
    /// conclusion notes the methodology also applies to in-order CPUs).
    pub in_order: bool,
    /// Predict conditional branches (bimodal, 1024 2-bit counters) and
    /// execute speculatively with mispredict squash — extension; the
    /// default (off) stalls fetch until branch resolution.
    pub branch_prediction: bool,
    /// Memory-hierarchy configuration.
    pub mem: MemorySystemConfig,
}

impl CoreConfig {
    /// The ARM Cortex-A9-like configuration of Table I: out-of-order,
    /// 2-wide fetch, 4-wide execute/writeback, 56 physical registers,
    /// 40-entry ROB, 32-entry IQ, 32 KB 4-way L1s, 512 KB 8-way L2,
    /// 32-entry TLBs.
    pub fn cortex_a9_like() -> Self {
        Self {
            fetch_width: 2,
            issue_width: 4,
            writeback_width: 4,
            commit_width: 4,
            phys_regs: 56,
            rob_entries: 40,
            iq_entries: 32,
            decode_buffer: 8,
            in_order: false,
            branch_prediction: false,
            mem: MemorySystemConfig::default(),
        }
    }

    /// The same machine with bimodal branch prediction and speculative
    /// execution enabled (extension; see the speculation ablation bench).
    pub fn speculative_a9() -> Self {
        Self {
            branch_prediction: true,
            ..Self::cortex_a9_like()
        }
    }

    /// The same machine with strictly in-order issue — the in-order-CPU
    /// extension the paper's conclusion mentions; everything else
    /// (structures, widths, memory) is unchanged.
    pub fn in_order_a9() -> Self {
        Self {
            in_order: true,
            ..Self::cortex_a9_like()
        }
    }

    /// A deliberately tiny configuration for stress-testing structural
    /// hazards (full ROB/IQ/free-list paths) in unit tests.
    pub fn tiny() -> Self {
        Self {
            fetch_width: 1,
            issue_width: 1,
            writeback_width: 1,
            commit_width: 1,
            phys_regs: 18,
            rob_entries: 4,
            iq_entries: 2,
            decode_buffer: 2,
            in_order: false,
            branch_prediction: false,
            mem: MemorySystemConfig::default(),
        }
    }

    /// Validates structural constraints.
    ///
    /// # Panics
    ///
    /// Panics if the configuration cannot support execution (fewer physical
    /// registers than architectural, zero-sized windows, …).
    pub fn validate(&self) {
        assert!(
            self.phys_regs >= 17,
            "need at least 17 physical registers (15 arch + 2 in flight)"
        );
        assert!(
            self.phys_regs <= 64,
            "physical register file is modeled up to 64 entries"
        );
        assert!(self.rob_entries >= 1 && self.iq_entries >= 1);
        assert!(self.fetch_width >= 1 && self.issue_width >= 1);
        assert!(self.writeback_width >= 1 && self.commit_width >= 1);
        assert!(self.decode_buffer >= self.fetch_width);
    }
}

impl Default for CoreConfig {
    fn default() -> Self {
        Self::cortex_a9_like()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_values() {
        let c = CoreConfig::cortex_a9_like();
        assert_eq!(c.fetch_width, 2);
        assert_eq!(c.issue_width, 4);
        assert_eq!(c.writeback_width, 4);
        assert_eq!(c.phys_regs, 56);
        assert_eq!(c.rob_entries, 40);
        assert_eq!(c.iq_entries, 32);
        c.validate();
    }

    #[test]
    #[should_panic(expected = "physical registers")]
    fn too_few_phys_regs_rejected() {
        let mut c = CoreConfig::cortex_a9_like();
        c.phys_regs = 15;
        c.validate();
    }
}
