//! The physical register file with register renaming.
//!
//! Architectural registers `r1`–`r15` are renamed onto a pool of physical
//! registers (56 in the Cortex-A9-like configuration). `r0` is never renamed
//! — reads of it are constant zero. The *value* array is the injectable
//! surface (`phys_regs × 32` bits); the ready bits, free list and rename map
//! are control logic, not SRAM cells, and are not injection targets (the
//! paper injects into the register file's storage cells).

use mbu_isa::Reg;
use mbu_sram::{BitCoord, CowVec, Geometry, Injectable, Restorable, Snapshot};
use std::collections::VecDeque;

/// Identifier of a physical register.
pub type PhysReg = u8;

/// Physical register file + rename machinery.
///
/// # Example
///
/// ```
/// use mbu_cpu::PhysRegFile;
/// use mbu_isa::Reg;
///
/// let mut prf = PhysRegFile::new(56);
/// let r1 = Reg::new(1);
/// let (new, _prev) = prf.allocate(r1).unwrap();
/// prf.write(new, 42);
/// let cur = prf.rename(r1).unwrap();
/// assert_eq!(prf.read(cur), 42);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhysRegFile {
    /// The injectable value array — copy-on-write, so a snapshot shares it
    /// until either side writes a register.
    values: CowVec<u32>,
    ready: Vec<bool>,
    free: VecDeque<PhysReg>,
    rename: [PhysReg; 16], // entry 0 unused (r0 is never renamed)
}

impl PhysRegFile {
    /// Creates a register file with `phys_regs` physical registers;
    /// `r1..r15` start mapped to physical registers `0..14` holding zero.
    ///
    /// # Panics
    ///
    /// Panics if `phys_regs` is not in `17..=64`.
    pub fn new(phys_regs: u32) -> Self {
        assert!(
            (17..=64).contains(&phys_regs),
            "phys_regs must be in 17..=64"
        );
        let n = phys_regs as usize;
        let mut rename = [0u8; 16];
        for (arch, slot) in rename.iter_mut().enumerate().skip(1) {
            *slot = (arch - 1) as PhysReg;
        }
        Self {
            values: CowVec::new(vec![0; n]),
            ready: vec![true; n],
            free: (15..phys_regs as u8).collect(),
            rename,
        }
    }

    /// Number of physical registers.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the register file is empty (never true; present for API
    /// completeness with `len`).
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Number of free physical registers.
    pub fn free_count(&self) -> usize {
        self.free.len()
    }

    /// Current physical mapping of an architectural register; `None` for `r0`.
    pub fn rename(&self, arch: Reg) -> Option<PhysReg> {
        if arch.is_zero() {
            None
        } else {
            Some(self.rename[arch.index() as usize])
        }
    }

    /// Allocates a fresh physical register for a write to `arch`, returning
    /// `(new, previous)` — the previous mapping is freed when the writing
    /// instruction commits. Returns `None` if the free list is empty
    /// (dispatch must stall) or `arch` is `r0`.
    pub fn allocate(&mut self, arch: Reg) -> Option<(PhysReg, PhysReg)> {
        if arch.is_zero() {
            return None;
        }
        let new = self.free.pop_front()?;
        let prev = self.rename[arch.index() as usize];
        self.rename[arch.index() as usize] = new;
        self.ready[new as usize] = false;
        Some((new, prev))
    }

    /// Reverses an [`PhysRegFile::allocate`] during a pipeline squash:
    /// restores the previous mapping of `arch` and returns `new` to the
    /// free pool.
    ///
    /// # Panics
    ///
    /// Panics if `arch` is `r0` or the current mapping is not `new` (squash
    /// must walk the ROB youngest-first).
    pub fn unallocate(&mut self, arch: Reg, new: PhysReg, prev: PhysReg) {
        assert!(!arch.is_zero(), "r0 is never renamed");
        assert_eq!(
            self.rename[arch.index() as usize],
            new,
            "squash must restore mappings youngest-first"
        );
        self.rename[arch.index() as usize] = prev;
        self.ready[new as usize] = true;
        self.free.push_front(new);
    }

    /// Returns a physical register to the free pool (at commit of the
    /// overwriting instruction).
    ///
    /// # Panics
    ///
    /// Panics if `phys` is out of range.
    pub fn release(&mut self, phys: PhysReg) {
        assert!(
            (phys as usize) < self.values.len(),
            "physical register out of range"
        );
        self.free.push_back(phys);
    }

    /// Whether a source operand is available. `None` (the `r0` source) is
    /// always ready.
    pub fn is_ready(&self, phys: Option<PhysReg>) -> bool {
        match phys {
            None => true,
            Some(p) => self.ready[p as usize],
        }
    }

    /// Reads a physical register value (`None` reads as zero).
    pub fn read_src(&self, phys: Option<PhysReg>) -> u32 {
        match phys {
            None => 0,
            Some(p) => self.values[p as usize],
        }
    }

    /// Reads a physical register value.
    pub fn read(&self, phys: PhysReg) -> u32 {
        self.values[phys as usize]
    }

    /// Writes a result and marks the register ready (writeback stage).
    pub fn write(&mut self, phys: PhysReg, value: u32) {
        self.values.make_mut()[phys as usize] = value;
        self.ready[phys as usize] = true;
    }

    /// Reads the committed architectural value of `arch` through the rename
    /// map (used by the syscall layer and tests).
    pub fn arch_value(&self, arch: Reg) -> u32 {
        match self.rename(arch) {
            None => 0,
            Some(p) => self.values[p as usize],
        }
    }

    /// Approximate heap bytes retained by one snapshot (clone) of this file.
    pub fn snapshot_bytes(&self) -> usize {
        self.values.len() * 4 + self.ready.len() + self.free.len() + self.rename.len()
    }

    /// Liveness-aware comparison against a golden checkpoint: `true` when
    /// every *reachable* bit of rename state equals `golden`.
    ///
    /// The rename map, ready bits and the free list (as a sequence — it
    /// determines future allocation order) must match exactly. Values are
    /// compared only for registers **not** on the free list: a free
    /// register's value cannot be read until it is re-allocated (which
    /// clears its ready bit) and then written, so a fault lingering in a
    /// freed register is dead state and must not block convergence.
    pub fn converged_with(&self, golden: &Self) -> bool {
        if self.rename != golden.rename || self.ready != golden.ready || self.free != golden.free {
            return false;
        }
        if self.values.is_shared_with(&golden.values) {
            // Copy-on-write array never written since the restore: identical
            // by construction.
            return true;
        }
        let mut free_mask = [0u64; 4];
        for &p in &self.free {
            free_mask[p as usize / 64] |= 1 << (p % 64);
        }
        self.values
            .iter()
            .zip(golden.values.iter())
            .enumerate()
            .all(|(i, (v, g))| free_mask[i / 64] >> (i % 64) & 1 == 1 || v == g)
    }
}

impl Snapshot for PhysRegFile {
    type State = PhysRegFile;

    fn snapshot(&self) -> PhysRegFile {
        self.clone()
    }
}

impl Restorable for PhysRegFile {
    fn restore(&mut self, state: &PhysRegFile) {
        self.clone_from(state);
    }
}

impl Injectable for PhysRegFile {
    /// One row per physical register, 32 bit columns.
    fn injectable_geometry(&self) -> Geometry {
        Geometry::new(self.values.len(), 32)
    }

    fn inject_flip(&mut self, coord: BitCoord) {
        assert!(
            coord.row < self.values.len() && coord.col < 32,
            "register-file injection out of bounds"
        );
        self.values.make_mut()[coord.row] ^= 1 << coord.col;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_state_maps_arch_regs() {
        let prf = PhysRegFile::new(56);
        assert_eq!(prf.rename(Reg::new(1)), Some(0));
        assert_eq!(prf.rename(Reg::new(15)), Some(14));
        assert_eq!(prf.rename(Reg::ZERO), None);
        assert_eq!(prf.free_count(), 41);
    }

    #[test]
    fn allocate_write_read_release_cycle() {
        let mut prf = PhysRegFile::new(18);
        let (n1, p1) = prf.allocate(Reg::new(3)).unwrap();
        assert_eq!(p1, 2);
        assert!(!prf.is_ready(Some(n1)));
        prf.write(n1, 99);
        assert!(prf.is_ready(Some(n1)));
        assert_eq!(prf.arch_value(Reg::new(3)), 99);
        prf.release(p1);
        // 18 regs: 3 free initially, one allocated, one released back.
        assert_eq!(prf.free_count(), 3);
    }

    #[test]
    fn free_list_exhaustion_returns_none() {
        let mut prf = PhysRegFile::new(17);
        assert!(prf.allocate(Reg::new(1)).is_some());
        assert!(prf.allocate(Reg::new(2)).is_some());
        assert!(prf.allocate(Reg::new(3)).is_none(), "only 2 free registers");
    }

    #[test]
    fn r0_never_allocates() {
        let mut prf = PhysRegFile::new(56);
        assert!(prf.allocate(Reg::ZERO).is_none());
        assert_eq!(prf.read_src(None), 0);
        assert!(prf.is_ready(None));
    }

    #[test]
    fn inject_flip_changes_value() {
        let mut prf = PhysRegFile::new(56);
        let p = prf.rename(Reg::new(5)).unwrap();
        prf.write(p, 0b100);
        prf.inject_flip(BitCoord::new(p as usize, 0));
        assert_eq!(prf.arch_value(Reg::new(5)), 0b101);
    }

    #[test]
    fn geometry_is_56x32() {
        let prf = PhysRegFile::new(56);
        let g = prf.injectable_geometry();
        assert_eq!((g.rows(), g.cols()), (56, 32));
    }

    #[test]
    fn convergence_ignores_free_register_values() {
        let prf = PhysRegFile::new(20);
        let golden = prf.snapshot();
        let mut faulty = prf.clone();
        // Registers 15.. are on the free list: a flip there is dead state.
        faulty.inject_flip(BitCoord::new(16, 5));
        assert!(faulty.converged_with(&golden));
        assert_ne!(faulty, golden, "bit-exact equality still sees the flip");
        // A flip in a mapped register is live.
        faulty.inject_flip(BitCoord::new(3, 5));
        assert!(!faulty.converged_with(&golden));
        faulty.inject_flip(BitCoord::new(3, 5));
        assert!(faulty.converged_with(&golden));
        // Allocating changes the rename map and free list: not converged.
        faulty.allocate(Reg::new(1)).unwrap();
        assert!(!faulty.converged_with(&golden));
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let mut prf = PhysRegFile::new(18);
        let (n, _) = prf.allocate(Reg::new(2)).unwrap();
        prf.write(n, 77);
        let saved = prf.snapshot();
        prf.allocate(Reg::new(3)).unwrap();
        prf.inject_flip(BitCoord::new(0, 0));
        assert_ne!(prf, saved);
        prf.restore(&saved);
        assert_eq!(prf, saved);
    }
}
