//! The physical register file with register renaming.
//!
//! Architectural registers `r1`–`r15` are renamed onto a pool of physical
//! registers (56 in the Cortex-A9-like configuration). `r0` is never renamed
//! — reads of it are constant zero. The *value* array is the injectable
//! surface (`phys_regs × 32` bits); the ready bits, free list and rename map
//! are control logic, not SRAM cells, and are not injection targets (the
//! paper injects into the register file's storage cells).

use mbu_isa::Reg;
use mbu_sram::{BitCoord, Geometry, Injectable};
use std::collections::VecDeque;

/// Identifier of a physical register.
pub type PhysReg = u8;

/// Physical register file + rename machinery.
///
/// # Example
///
/// ```
/// use mbu_cpu::PhysRegFile;
/// use mbu_isa::Reg;
///
/// let mut prf = PhysRegFile::new(56);
/// let r1 = Reg::new(1);
/// let (new, _prev) = prf.allocate(r1).unwrap();
/// prf.write(new, 42);
/// let cur = prf.rename(r1).unwrap();
/// assert_eq!(prf.read(cur), 42);
/// ```
#[derive(Debug, Clone)]
pub struct PhysRegFile {
    values: Vec<u32>,
    ready: Vec<bool>,
    free: VecDeque<PhysReg>,
    rename: [PhysReg; 16], // entry 0 unused (r0 is never renamed)
}

impl PhysRegFile {
    /// Creates a register file with `phys_regs` physical registers;
    /// `r1..r15` start mapped to physical registers `0..14` holding zero.
    ///
    /// # Panics
    ///
    /// Panics if `phys_regs` is not in `17..=64`.
    pub fn new(phys_regs: u32) -> Self {
        assert!(
            (17..=64).contains(&phys_regs),
            "phys_regs must be in 17..=64"
        );
        let n = phys_regs as usize;
        let mut rename = [0u8; 16];
        for (arch, slot) in rename.iter_mut().enumerate().skip(1) {
            *slot = (arch - 1) as PhysReg;
        }
        Self {
            values: vec![0; n],
            ready: vec![true; n],
            free: (15..phys_regs as u8).collect(),
            rename,
        }
    }

    /// Number of physical registers.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the register file is empty (never true; present for API
    /// completeness with `len`).
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Number of free physical registers.
    pub fn free_count(&self) -> usize {
        self.free.len()
    }

    /// Current physical mapping of an architectural register; `None` for `r0`.
    pub fn rename(&self, arch: Reg) -> Option<PhysReg> {
        if arch.is_zero() {
            None
        } else {
            Some(self.rename[arch.index() as usize])
        }
    }

    /// Allocates a fresh physical register for a write to `arch`, returning
    /// `(new, previous)` — the previous mapping is freed when the writing
    /// instruction commits. Returns `None` if the free list is empty
    /// (dispatch must stall) or `arch` is `r0`.
    pub fn allocate(&mut self, arch: Reg) -> Option<(PhysReg, PhysReg)> {
        if arch.is_zero() {
            return None;
        }
        let new = self.free.pop_front()?;
        let prev = self.rename[arch.index() as usize];
        self.rename[arch.index() as usize] = new;
        self.ready[new as usize] = false;
        Some((new, prev))
    }

    /// Reverses an [`PhysRegFile::allocate`] during a pipeline squash:
    /// restores the previous mapping of `arch` and returns `new` to the
    /// free pool.
    ///
    /// # Panics
    ///
    /// Panics if `arch` is `r0` or the current mapping is not `new` (squash
    /// must walk the ROB youngest-first).
    pub fn unallocate(&mut self, arch: Reg, new: PhysReg, prev: PhysReg) {
        assert!(!arch.is_zero(), "r0 is never renamed");
        assert_eq!(
            self.rename[arch.index() as usize],
            new,
            "squash must restore mappings youngest-first"
        );
        self.rename[arch.index() as usize] = prev;
        self.ready[new as usize] = true;
        self.free.push_front(new);
    }

    /// Returns a physical register to the free pool (at commit of the
    /// overwriting instruction).
    ///
    /// # Panics
    ///
    /// Panics if `phys` is out of range.
    pub fn release(&mut self, phys: PhysReg) {
        assert!(
            (phys as usize) < self.values.len(),
            "physical register out of range"
        );
        self.free.push_back(phys);
    }

    /// Whether a source operand is available. `None` (the `r0` source) is
    /// always ready.
    pub fn is_ready(&self, phys: Option<PhysReg>) -> bool {
        match phys {
            None => true,
            Some(p) => self.ready[p as usize],
        }
    }

    /// Reads a physical register value (`None` reads as zero).
    pub fn read_src(&self, phys: Option<PhysReg>) -> u32 {
        match phys {
            None => 0,
            Some(p) => self.values[p as usize],
        }
    }

    /// Reads a physical register value.
    pub fn read(&self, phys: PhysReg) -> u32 {
        self.values[phys as usize]
    }

    /// Writes a result and marks the register ready (writeback stage).
    pub fn write(&mut self, phys: PhysReg, value: u32) {
        self.values[phys as usize] = value;
        self.ready[phys as usize] = true;
    }

    /// Reads the committed architectural value of `arch` through the rename
    /// map (used by the syscall layer and tests).
    pub fn arch_value(&self, arch: Reg) -> u32 {
        match self.rename(arch) {
            None => 0,
            Some(p) => self.values[p as usize],
        }
    }
}

impl Injectable for PhysRegFile {
    /// One row per physical register, 32 bit columns.
    fn injectable_geometry(&self) -> Geometry {
        Geometry::new(self.values.len(), 32)
    }

    fn inject_flip(&mut self, coord: BitCoord) {
        assert!(
            coord.row < self.values.len() && coord.col < 32,
            "register-file injection out of bounds"
        );
        self.values[coord.row] ^= 1 << coord.col;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_state_maps_arch_regs() {
        let prf = PhysRegFile::new(56);
        assert_eq!(prf.rename(Reg::new(1)), Some(0));
        assert_eq!(prf.rename(Reg::new(15)), Some(14));
        assert_eq!(prf.rename(Reg::ZERO), None);
        assert_eq!(prf.free_count(), 41);
    }

    #[test]
    fn allocate_write_read_release_cycle() {
        let mut prf = PhysRegFile::new(18);
        let (n1, p1) = prf.allocate(Reg::new(3)).unwrap();
        assert_eq!(p1, 2);
        assert!(!prf.is_ready(Some(n1)));
        prf.write(n1, 99);
        assert!(prf.is_ready(Some(n1)));
        assert_eq!(prf.arch_value(Reg::new(3)), 99);
        prf.release(p1);
        // 18 regs: 3 free initially, one allocated, one released back.
        assert_eq!(prf.free_count(), 3);
    }

    #[test]
    fn free_list_exhaustion_returns_none() {
        let mut prf = PhysRegFile::new(17);
        assert!(prf.allocate(Reg::new(1)).is_some());
        assert!(prf.allocate(Reg::new(2)).is_some());
        assert!(prf.allocate(Reg::new(3)).is_none(), "only 2 free registers");
    }

    #[test]
    fn r0_never_allocates() {
        let mut prf = PhysRegFile::new(56);
        assert!(prf.allocate(Reg::ZERO).is_none());
        assert_eq!(prf.read_src(None), 0);
        assert!(prf.is_ready(None));
    }

    #[test]
    fn inject_flip_changes_value() {
        let mut prf = PhysRegFile::new(56);
        let p = prf.rename(Reg::new(5)).unwrap();
        prf.write(p, 0b100);
        prf.inject_flip(BitCoord::new(p as usize, 0));
        assert_eq!(prf.arch_value(Reg::new(5)), 0b101);
    }

    #[test]
    fn geometry_is_56x32() {
        let prf = PhysRegFile::new(56);
        let g = prf.injectable_geometry();
        assert_eq!((g.rows(), g.cols()), (56, 32));
    }
}
