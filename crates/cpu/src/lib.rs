//! Cycle-level out-of-order CPU model (ARM Cortex-A9-like, Table I).
//!
//! This crate is the gem5-O3 stand-in of the reproduction: a full
//! out-of-order core with register renaming over a 56-entry physical
//! register file, a 40-entry reorder buffer, a 32-entry instruction queue,
//! and fetch/issue/writeback widths of 2/4/4, running on top of the
//! `mbu-mem` cache/TLB hierarchy.
//!
//! Design points relevant to fault injection:
//!
//! * **Precise architectural state.** Faults (undefined instructions, page
//!   faults, division by zero, …) are recorded at execute but only raised
//!   when the faulting instruction reaches the head of the reorder buffer,
//!   so a fault injected into a squashed-dead value never crashes the run.
//! * **Register renaming.** A flipped physical-register bit only matters if
//!   the register holds a live (renamed or architecturally committed)
//!   value — exactly the liveness the paper's register-file AVF measures.
//! * **Stores drain at commit, loads issue speculatively** with conservative
//!   store-to-load disambiguation, so cache state sees the same traffic
//!   pattern an out-of-order machine produces.
//! * **Control flow stalls fetch until resolution** (no branch predictor —
//!   the paper injects no faults into speculation structures; see
//!   DESIGN.md for the documented divergence).
//!
//! The crate also defines [`HwComponent`], the registry of the six
//! injectable structures studied by the paper, and the [`Simulator`] API the
//! fault injector drives (run → flip bits mid-flight → run to completion).
//!
//! # Example
//!
//! ```
//! use mbu_cpu::{CoreConfig, Simulator};
//! use mbu_isa::asm::assemble;
//!
//! let program = assemble(
//!     ".text\nmain:\nli r3, 65\nli r2, 1\nsyscall\nli r2, 0\nli r3, 0\nsyscall\n",
//! )?;
//! let result = Simulator::new(CoreConfig::cortex_a9_like(), &program).run(100_000);
//! assert_eq!(result.output, b"A");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]

pub mod component;
pub mod config;
pub mod probe;
pub mod regfile;
pub mod sim;

pub use component::HwComponent;
pub use config::CoreConfig;
pub use probe::{PipelineProbe, SimProbes};
pub use regfile::PhysRegFile;
pub use sim::{Fault, PipelineStats, RunEnd, RunResult, SimSnapshot, Simulator};
