//! The cycle-level out-of-order simulator.
//!
//! Pipeline: fetch (2-wide, stalls on unresolved control flow) → decode →
//! rename/dispatch (into ROB + IQ) → issue (4-wide, out of order, operand
//! readiness + conservative store/load disambiguation) → execute (latency
//! per operation, memory through the cache hierarchy) → writeback (4-wide)
//! → commit (in order; faults, stores and syscalls take effect here).

use crate::component::HwComponent;
use crate::config::CoreConfig;
use crate::probe::{PipelineProbe, SimProbes};
use crate::regfile::{PhysReg, PhysRegFile};
use mbu_isa::instr::MemWidth;
use mbu_isa::interp::Trap;
use mbu_isa::program::Program;
use mbu_isa::{decode, sys, Instruction, Reg};
use mbu_mem::{MemFault, MemSnapshot, MemorySystem};
use mbu_sram::{BitCoord, Geometry, Injectable, LivenessProbe, Restorable, Snapshot};
use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Steps without a single committed instruction after which
/// [`Simulator::run_until_cycle`] gives up and reports [`RunEnd::CycleLimit`].
///
/// A fault-free workload commits continuously; the longest legitimate stall
/// (a chain of L2 misses) is a few hundred cycles. A fault that wedges the
/// pipeline (e.g. a corrupted ROB dependency) would otherwise burn the whole
/// `4 × T` budget one idle cycle at a time; the fuse converts such livelocks
/// into an early, still-deterministic `Timeout` classification.
const STALL_FUSE: u64 = 1 << 18;

/// How often (in steps) [`Simulator::run_until_cycle`] polls the cooperative
/// cancel flag. Power of two so the check compiles to a mask.
const CANCEL_POLL_INTERVAL: u64 = 1 << 10;

/// A pipeline-recorded fault, raised precisely at commit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Architectural trap — the program crashes (process crash).
    Trap(Trap),
    /// Physical address outside the system map — the simulator asserts
    /// (gem5's behaviour for corrupted translations, paper §IV.E).
    Assert {
        /// The impossible physical address.
        pa: u32,
    },
}

impl Fault {
    fn from_mem(pc: u32, fault: MemFault) -> Self {
        match fault {
            MemFault::PageFault { va } | MemFault::Protection { va, .. } => {
                Fault::Trap(Trap::Segfault { pc, addr: va })
            }
            MemFault::OutsideSystemMap { pa } => Fault::Assert { pa },
        }
    }
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Fault::Trap(t) => write!(f, "{t}"),
            Fault::Assert { pa } => write!(f, "simulator assert: pa 0x{pa:08x} outside system map"),
        }
    }
}

/// Why a simulation ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunEnd {
    /// Clean exit through `SYS_EXIT`.
    Exited {
        /// The exit code.
        code: u32,
    },
    /// The program crashed (architectural trap at commit).
    Crashed(Trap),
    /// The simulator asserted (impossible physical address).
    Assert {
        /// The impossible physical address.
        pa: u32,
    },
    /// The cycle limit expired (deadlock or livelock).
    CycleLimit,
}

/// Result of a simulation run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunResult {
    /// Why the run ended.
    pub end: RunEnd,
    /// Program output bytes.
    pub output: Vec<u8>,
    /// Cycles simulated.
    pub cycles: u64,
    /// Instructions committed.
    pub instructions: u64,
}

/// Microarchitectural counters of a run (performance-debugging aid and
/// input to the throughput benches; not part of the AVF methodology).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PipelineStats {
    /// L1I hits / misses.
    pub l1i: (u64, u64),
    /// L1D hits / misses.
    pub l1d: (u64, u64),
    /// L2 hits / misses.
    pub l2: (u64, u64),
    /// ITLB hits / misses.
    pub itlb: (u64, u64),
    /// DTLB hits / misses.
    pub dtlb: (u64, u64),
    /// Mispredicted (and squashed) conditional branches.
    pub mispredicts: u64,
}

impl PipelineStats {
    /// Hit rate of a `(hits, misses)` pair; 0 when untouched.
    pub fn hit_rate(pair: (u64, u64)) -> f64 {
        let total = pair.0 + pair.1;
        if total == 0 {
            0.0
        } else {
            pair.0 as f64 / total as f64
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SlotState {
    /// Waiting in the instruction queue.
    Waiting,
    /// Issued; completion scheduled.
    Executing,
    /// Complete; eligible for commit.
    Done,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct DestInfo {
    arch: Reg,
    new: PhysReg,
    prev: PhysReg,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct StoreOp {
    addr: u32,
    width: u32,
    value: u32,
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct RobEntry {
    pc: u32,
    instr: Option<Instruction>,
    state: SlotState,
    fault: Option<Fault>,
    srcs: [Option<PhysReg>; 2],
    nsrcs: u8,
    dest: Option<DestInfo>,
    result: Option<u32>,
    store: Option<StoreOp>,
    syscall: Option<(u32, u32)>,
    /// Target to resume fetch at when this stalling control instruction
    /// completes.
    redirect: Option<u32>,
    /// For a predicted conditional branch: the pc fetch continued at.
    predicted_next: Option<u32>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FetchStall {
    None,
    /// Waiting for the control instruction with this sequence number.
    Branch(u64),
    /// A fetch-path fault was enqueued; fetch stops until the run ends.
    Fault,
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct Decoded {
    pc: u32,
    result: Result<Instruction, Fault>,
    /// For a predicted conditional branch: the pc fetch continued at.
    predicted_next: Option<u32>,
}

/// The out-of-order CPU simulator.
///
/// See the [crate documentation](crate) for an end-to-end example.
pub struct Simulator {
    cfg: CoreConfig,
    mem: MemorySystem,
    prf: PhysRegFile,
    rob: VecDeque<RobEntry>,
    head_seq: u64,
    iq: Vec<u64>,
    decode_q: VecDeque<Decoded>,
    completions: Vec<(u64, u64)>,
    /// Scratch buffer reused by [`Simulator::writeback_stage`] every cycle;
    /// not architectural state (always drained), so excluded from snapshots.
    wb_due: Vec<u64>,
    fetch_pc: u32,
    fetch_stall: FetchStall,
    fetch_ready_at: u64,
    /// Bimodal 2-bit saturating direction counters (speculation extension).
    predictor: Vec<u8>,
    /// Mispredicted-and-squashed branch count.
    mispredicts: u64,
    commit_ready_at: u64,
    cycle: u64,
    committed: u64,
    output: Vec<u8>,
    end: Option<RunEnd>,
    /// Cooperative cancellation flag, polled by [`Simulator::run_until_cycle`].
    cancel: Option<Arc<AtomicBool>>,
    /// Register-file liveness probe (ACE analysis), if attached.
    prf_probe: Option<Box<dyn LivenessProbe>>,
    /// Pipeline-queue occupancy probe, if attached.
    pipeline_probe: Option<Box<dyn PipelineProbe>>,
    /// Whether any probe (core- or memory-side) is attached; gates the
    /// per-cycle probe bookkeeping so the unprobed hot path pays one branch.
    probes_attached: bool,
}

impl fmt::Debug for Simulator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Simulator")
            .field("cycle", &self.cycle)
            .field("pc", &self.fetch_pc)
            .field("committed", &self.committed)
            .field("rob", &self.rob.len())
            .finish_non_exhaustive()
    }
}

impl Simulator {
    /// Builds a simulator with `program` loaded (text/data in scattered
    /// physical frames, `sp` initialized to the stack top).
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid ([`CoreConfig::validate`]).
    pub fn new(cfg: CoreConfig, program: &Program) -> Self {
        cfg.validate();
        let mem = MemorySystem::for_program(cfg.mem, program);
        let mut prf = PhysRegFile::new(cfg.phys_regs);
        let sp_phys = prf.rename(Reg::SP).expect("sp is renamed");
        prf.write(sp_phys, mbu_isa::STACK_TOP);
        Self {
            cfg,
            mem,
            prf,
            rob: VecDeque::with_capacity(cfg.rob_entries as usize),
            head_seq: 0,
            iq: Vec::with_capacity(cfg.iq_entries as usize),
            decode_q: VecDeque::with_capacity(cfg.decode_buffer as usize),
            completions: Vec::new(),
            wb_due: Vec::new(),
            fetch_pc: program.entry,
            fetch_stall: FetchStall::None,
            fetch_ready_at: 0,
            predictor: vec![1; 1024], // weakly not-taken
            mispredicts: 0,
            commit_ready_at: 0,
            cycle: 0,
            committed: 0,
            output: Vec::new(),
            end: None,
            cancel: None,
            prf_probe: None,
            pipeline_probe: None,
            probes_attached: false,
        }
    }

    /// Attaches liveness/occupancy probes for a fault-free observation run.
    /// Probe events carry the simulator's cycle counter; detach with
    /// [`Simulator::detach_probes`] to recover the observers.
    pub fn attach_probes(&mut self, probes: SimProbes) {
        let SimProbes { mem, prf, pipeline } = probes;
        self.mem.attach_probes(mem);
        self.prf_probe = prf;
        self.pipeline_probe = pipeline;
        self.probes_attached = true;
    }

    /// Detaches all probes, returning the bundle for downcasting.
    pub fn detach_probes(&mut self) -> SimProbes {
        self.probes_attached = false;
        SimProbes {
            mem: self.mem.detach_probes().unwrap_or_default(),
            prf: self.prf_probe.take(),
            pipeline: self.pipeline_probe.take(),
        }
    }

    /// Installs a cooperative cancellation flag. While the flag is `false`
    /// the simulator runs normally; once another thread (e.g. a campaign
    /// watchdog) sets it, [`Simulator::run_until_cycle`] returns at the next
    /// poll point with the run still unfinished, which callers classify as a
    /// timeout. Polling is amortized over [`CANCEL_POLL_INTERVAL`] steps, so
    /// cancellation latency is bounded but not instant.
    pub fn set_cancel_flag(&mut self, cancel: Arc<AtomicBool>) {
        self.cancel = Some(cancel);
    }

    /// The configuration this simulator was built with.
    pub fn config(&self) -> &CoreConfig {
        &self.cfg
    }

    /// Cycles simulated so far.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Instructions committed so far.
    pub fn instructions(&self) -> u64 {
        self.committed
    }

    /// Program output so far.
    pub fn output(&self) -> &[u8] {
        &self.output
    }

    /// The memory system (test introspection; mutable for injection tests).
    pub fn memory_mut(&mut self) -> &mut MemorySystem {
        &mut self.mem
    }

    /// Microarchitectural counters accumulated so far.
    pub fn pipeline_stats(&self) -> PipelineStats {
        let c = |s: mbu_mem::CacheStats| (s.hits, s.misses);
        PipelineStats {
            l1i: c(self.mem.l1i.stats()),
            l1d: c(self.mem.l1d.stats()),
            l2: c(self.mem.l2.stats()),
            itlb: self.mem.itlb.stats(),
            dtlb: self.mem.dtlb.stats(),
            mispredicts: self.mispredicts,
        }
    }

    /// The physical register file (test introspection).
    pub fn regfile(&self) -> &PhysRegFile {
        &self.prf
    }

    /// Geometry of an injectable component's bit array.
    pub fn component_geometry(&self, component: HwComponent) -> Geometry {
        match component {
            HwComponent::L1D => self.mem.l1d.injectable_geometry(),
            HwComponent::L1I => self.mem.l1i.injectable_geometry(),
            HwComponent::L2 => self.mem.l2.injectable_geometry(),
            HwComponent::RegFile => self.prf.injectable_geometry(),
            HwComponent::DTlb => self.mem.dtlb.injectable_geometry(),
            HwComponent::ITlb => self.mem.itlb.injectable_geometry(),
        }
    }

    /// Flips the given bits of a component's storage array (the particle
    /// strike). Coordinates must be inside
    /// [`Simulator::component_geometry`].
    pub fn inject_flips(&mut self, component: HwComponent, coords: &[BitCoord]) {
        for &c in coords {
            match component {
                HwComponent::L1D => self.mem.l1d.inject_flip(c),
                HwComponent::L1I => self.mem.l1i.inject_flip(c),
                HwComponent::L2 => self.mem.l2.inject_flip(c),
                HwComponent::RegFile => self.prf.inject_flip(c),
                HwComponent::DTlb => self.mem.dtlb.inject_flip(c),
                HwComponent::ITlb => self.mem.itlb.inject_flip(c),
            }
        }
    }

    /// Geometry of a cache's *tag* array (extension/ablation target; the
    /// paper and the default campaigns inject into the data arrays).
    ///
    /// # Panics
    ///
    /// Panics for non-cache components.
    pub fn tag_geometry(&self, component: HwComponent) -> Geometry {
        match component {
            HwComponent::L1D => self.mem.l1d.tag_geometry(),
            HwComponent::L1I => self.mem.l1i.tag_geometry(),
            HwComponent::L2 => self.mem.l2.tag_geometry(),
            other => panic!("{other} has no tag array"),
        }
    }

    /// Flips bits of a cache's tag array (tag, valid and dirty bits) —
    /// the ablation path for tag-protection studies.
    ///
    /// # Panics
    ///
    /// Panics for non-cache components or out-of-range coordinates.
    pub fn inject_tag_flips(&mut self, component: HwComponent, coords: &[BitCoord]) {
        for &c in coords {
            match component {
                HwComponent::L1D => self.mem.l1d.inject_tag_flip(c),
                HwComponent::L1I => self.mem.l1i.inject_tag_flip(c),
                HwComponent::L2 => self.mem.l2.inject_tag_flip(c),
                other => panic!("{other} has no tag array"),
            }
        }
    }

    /// Reads a source physical register, reporting the read to the probe.
    /// Wrong-path reads are included — conservative for ACE analysis (a bit
    /// observed speculatively is *possibly* live).
    fn prf_read(&mut self, phys: Option<PhysReg>) -> u32 {
        if let (Some(probe), Some(p)) = (self.prf_probe.as_deref_mut(), phys) {
            probe.on_read(self.cycle, p as usize, 0, 32);
        }
        self.prf.read_src(phys)
    }

    /// Writes a physical register, reporting the write to the probe.
    fn prf_write(&mut self, phys: PhysReg, value: u32) {
        if let Some(probe) = self.prf_probe.as_deref_mut() {
            probe.on_write(self.cycle, phys as usize, 0, 32);
        }
        self.prf.write(phys, value);
    }

    /// Reports a register returning to the free list (its value is dead).
    fn prf_invalidate(&mut self, phys: PhysReg) {
        if let Some(probe) = self.prf_probe.as_deref_mut() {
            probe.on_invalidate(self.cycle, phys as usize, 0, 32);
        }
    }

    fn entry(&self, seq: u64) -> &RobEntry {
        &self.rob[(seq - self.head_seq) as usize]
    }

    fn entry_mut(&mut self, seq: u64) -> &mut RobEntry {
        let idx = (seq - self.head_seq) as usize;
        &mut self.rob[idx]
    }

    /// Squashes every instruction younger than `seq`: walks the ROB tail
    /// backwards restoring the rename map and the free list, drops their IQ
    /// slots and scheduled completions, and clears the front end.
    fn squash_younger_than(&mut self, seq: u64) {
        while self.head_seq + self.rob.len() as u64 > seq + 1 {
            let entry = self.rob.pop_back().expect("tail exists");
            if let Some(d) = entry.dest {
                self.prf_invalidate(d.new);
                self.prf.unallocate(d.arch, d.new, d.prev);
            }
        }
        self.iq.retain(|&s| s <= seq);
        self.completions.retain(|&(_, s)| s <= seq);
        self.decode_q.clear();
    }

    fn commit_stage(&mut self) {
        let mut committed_now = 0;
        while committed_now < self.cfg.commit_width && !self.rob.is_empty() {
            if self.cycle < self.commit_ready_at {
                break;
            }
            if self.rob[0].state != SlotState::Done {
                break;
            }
            // Faults are precise: raise at head.
            if let Some(fault) = self.rob[0].fault {
                self.end = Some(match fault {
                    Fault::Trap(t) => RunEnd::Crashed(t),
                    Fault::Assert { pa } => RunEnd::Assert { pa },
                });
                return;
            }
            if let Some(st) = self.rob[0].store {
                let pc = self.rob[0].pc;
                match self.mem.write(st.addr, st.width, st.value) {
                    Ok(t) => {
                        if t.latency > self.cfg.mem.l1d.hit_latency {
                            self.commit_ready_at = self.cycle + t.latency as u64;
                        }
                    }
                    Err(mf) => {
                        self.end = Some(match Fault::from_mem(pc, mf) {
                            Fault::Trap(t) => RunEnd::Crashed(t),
                            Fault::Assert { pa } => RunEnd::Assert { pa },
                        });
                        return;
                    }
                }
            }
            if let Some((num, arg)) = self.rob[0].syscall {
                let pc = self.rob[0].pc;
                match num {
                    sys::EXIT => {
                        self.committed += 1;
                        self.end = Some(RunEnd::Exited { code: arg });
                        return;
                    }
                    sys::PUTC => self.output.push(arg as u8),
                    sys::PUTW => self.output.extend_from_slice(&arg.to_le_bytes()),
                    other => {
                        self.end = Some(RunEnd::Crashed(Trap::BadSyscall { pc, number: other }));
                        return;
                    }
                }
            }
            if let Some(d) = self.rob[0].dest {
                self.prf_invalidate(d.prev);
                self.prf.release(d.prev);
            }
            self.rob.pop_front();
            self.head_seq += 1;
            self.committed += 1;
            committed_now += 1;
        }
    }

    fn writeback_stage(&mut self) {
        // Collect completions due this cycle, oldest first, up to the width.
        // The scratch buffer is reused across cycles to avoid a per-cycle
        // heap allocation on this hot path.
        let mut due = std::mem::take(&mut self.wb_due);
        due.clear();
        due.extend(
            self.completions
                .iter()
                .filter(|(c, _)| *c <= self.cycle)
                .map(|(_, s)| *s),
        );
        due.sort_unstable();
        due.truncate(self.cfg.writeback_width as usize);
        if due.is_empty() {
            self.wb_due = due;
            return;
        }
        self.completions.retain(|(_, s)| !due.contains(s));
        for &seq in &due {
            // An older mispredicted branch processed earlier in this loop
            // may have squashed this instruction.
            if seq >= self.head_seq + self.rob.len() as u64 {
                continue;
            }
            let (dest, result, redirect) = {
                let e = self.entry_mut(seq);
                e.state = SlotState::Done;
                (e.dest, e.result, e.redirect)
            };
            if let (Some(d), Some(v)) = (dest, result) {
                self.prf_write(d.new, v);
            } else if let Some(d) = dest {
                // Faulted producer: mark ready so dependents can issue; they
                // will never commit past the fault.
                self.prf_write(d.new, 0);
            }
            if let Some(target) = redirect {
                let predicted = self.entry(seq).predicted_next;
                match predicted {
                    None => {
                        if self.fetch_stall == FetchStall::Branch(seq) {
                            self.fetch_pc = target;
                            self.fetch_stall = FetchStall::None;
                        }
                    }
                    Some(predicted_next) => {
                        // Update the direction counter with the real outcome.
                        let pc = self.entry(seq).pc;
                        let actually_taken = target != pc.wrapping_add(4);
                        let idx = ((pc >> 2) as usize) & (self.predictor.len() - 1);
                        let ctr = &mut self.predictor[idx];
                        if actually_taken {
                            *ctr = (*ctr + 1).min(3);
                        } else {
                            *ctr = ctr.saturating_sub(1);
                        }
                        if predicted_next != target {
                            self.squash_younger_than(seq);
                            self.fetch_pc = target;
                            self.fetch_stall = FetchStall::None;
                            self.fetch_ready_at = self.cycle;
                            self.mispredicts += 1;
                        }
                    }
                }
            }
        }
        self.wb_due = due;
    }

    /// Conservative store→load disambiguation. Returns `None` if the load
    /// must wait, `Some(Some(v))` to forward `v`, `Some(None)` to read the
    /// cache.
    fn load_may_issue(&self, load_seq: u64, addr: u32, width: u32) -> Option<Option<u32>> {
        let mut forward: Option<u32> = None;
        for seq in self.head_seq..load_seq {
            let e = self.entry(seq);
            let is_store = e.instr.map(|i| i.is_store()).unwrap_or(false);
            if !is_store {
                continue;
            }
            match e.store {
                None => {
                    // Older store address unknown (not yet executed, or it
                    // faulted — in the fault case the load never commits, so
                    // waiting is safe only if the store eventually "resolves";
                    // faulted stores are Done with store == None, so skip).
                    if e.fault.is_some() {
                        continue;
                    }
                    return None;
                }
                Some(st) => {
                    let a0 = addr;
                    let a1 = addr + width;
                    let b0 = st.addr;
                    let b1 = st.addr + st.width;
                    if a1 <= b0 || b1 <= a0 {
                        continue; // disjoint
                    }
                    if st.addr == addr && st.width == width {
                        forward = Some(st.value); // most recent wins
                    } else {
                        return None; // partial overlap: wait for commit
                    }
                }
            }
        }
        Some(forward)
    }

    fn execute(&mut self, seq: u64) {
        let (instr, pc, srcs, nsrcs) = {
            let e = self.entry(seq);
            (
                e.instr.expect("issued entries decoded"),
                e.pc,
                e.srcs,
                e.nsrcs,
            )
        };
        let s0 = self.prf_read(srcs[0]);
        let s1 = if nsrcs > 1 { self.prf_read(srcs[1]) } else { 0 };
        let mut latency = instr.latency();
        let mut result: Option<u32> = None;
        let mut fault: Option<Fault> = None;
        let mut store: Option<StoreOp> = None;
        let mut syscall: Option<(u32, u32)> = None;
        let mut redirect: Option<u32> = None;
        match instr {
            Instruction::Nop => {}
            Instruction::Alu { op, .. } => match op.apply(s0, s1) {
                Some(v) => result = Some(v),
                None => fault = Some(Fault::Trap(Trap::DivisionByZero { pc })),
            },
            Instruction::AluImm { op, imm, .. } => result = Some(op.apply(s0, imm)),
            Instruction::Lui { imm, .. } => result = Some((imm as u32) << 16),
            Instruction::Load {
                width,
                signed,
                offset,
                ..
            } => {
                let addr = s0.wrapping_add(offset as i32 as u32);
                let bytes = width.bytes();
                if !addr.is_multiple_of(bytes) {
                    fault = Some(Fault::Trap(Trap::Misaligned { pc, addr }));
                } else {
                    // Forwarding decision was made by the issue stage.
                    match self.load_may_issue(seq, addr, bytes) {
                        Some(Some(v)) => result = Some(extend(v, width, signed)),
                        Some(None) => match self.mem.read(addr, bytes) {
                            Ok(t) => {
                                latency = latency.max(t.latency);
                                result = Some(extend(t.value, width, signed));
                            }
                            Err(mf) => fault = Some(Fault::from_mem(pc, mf)),
                        },
                        None => unreachable!("issue stage checked disambiguation"),
                    }
                }
            }
            Instruction::Store { width, offset, .. } => {
                let addr = s0.wrapping_add(offset as i32 as u32);
                let bytes = width.bytes();
                if !addr.is_multiple_of(bytes) {
                    fault = Some(Fault::Trap(Trap::Misaligned { pc, addr }));
                } else {
                    store = Some(StoreOp {
                        addr,
                        width: bytes,
                        value: s1,
                    });
                }
            }
            Instruction::Branch { cond, offset, .. } => {
                let taken = cond.eval(s0, s1);
                redirect = Some(if taken {
                    pc.wrapping_add(4)
                        .wrapping_add((offset as i32 as u32).wrapping_mul(4))
                } else {
                    pc.wrapping_add(4)
                });
            }
            Instruction::J { .. } => {}
            Instruction::Jal { .. } => result = Some(pc.wrapping_add(4)),
            Instruction::Jr { .. } => redirect = Some(s0),
            Instruction::Jalr { .. } => {
                redirect = Some(s0);
                result = Some(pc.wrapping_add(4));
            }
            Instruction::Syscall => syscall = Some((s0, s1)),
        }
        let e = self.entry_mut(seq);
        e.state = SlotState::Executing;
        e.result = result;
        e.fault = fault;
        e.store = store;
        e.syscall = syscall;
        e.redirect = redirect;
        self.completions
            .push((self.cycle + latency.max(1) as u64, seq));
    }

    fn issue_stage(&mut self) {
        let mut issued = 0;
        let mut i = 0;
        while i < self.iq.len() && issued < self.cfg.issue_width {
            let seq = self.iq[i];
            let ready = {
                let e = self.entry(seq);
                let mut ok = true;
                for s in 0..e.nsrcs as usize {
                    if !self.prf.is_ready(e.srcs[s]) {
                        ok = false;
                        break;
                    }
                }
                ok
            };
            if !ready {
                if self.cfg.in_order {
                    break; // strictly in-order: the oldest must issue first
                }
                i += 1;
                continue;
            }
            // Loads additionally need disambiguation against older stores.
            let load_info = {
                let e = self.entry(seq);
                match e.instr {
                    Some(Instruction::Load { width, offset, .. }) => {
                        Some((e.srcs[0], width, offset))
                    }
                    _ => None,
                }
            };
            if let Some((src, width, offset)) = load_info {
                let addr = self.prf_read(src).wrapping_add(offset as i32 as u32);
                let bytes = width.bytes();
                if addr.is_multiple_of(bytes) && self.load_may_issue(seq, addr, bytes).is_none() {
                    if self.cfg.in_order {
                        break;
                    }
                    i += 1;
                    continue;
                }
            }
            self.iq.remove(i);
            self.execute(seq);
            issued += 1;
        }
    }

    fn dispatch_stage(&mut self) {
        let mut dispatched = 0;
        while dispatched < self.cfg.fetch_width {
            if self.rob.len() >= self.cfg.rob_entries as usize {
                break;
            }
            let Some(front) = self.decode_q.front() else {
                break;
            };
            let seq = self.head_seq + self.rob.len() as u64;
            match &front.result {
                Err(_) => {
                    let d = self.decode_q.pop_front().expect("peeked");
                    let fault = d.result.err();
                    self.rob.push_back(RobEntry {
                        pc: d.pc,
                        instr: None,
                        state: SlotState::Done,
                        fault,
                        srcs: [None, None],
                        nsrcs: 0,
                        dest: None,
                        result: None,
                        store: None,
                        syscall: None,
                        redirect: None,
                        predicted_next: None,
                    });
                }
                Ok(instr) => {
                    if self.iq.len() >= self.cfg.iq_entries as usize {
                        break;
                    }
                    let needs_dest = instr.dest().is_some();
                    if needs_dest && self.prf.free_count() == 0 {
                        break;
                    }
                    let instr = *instr;
                    let d = self.decode_q.pop_front().expect("peeked");
                    // Rename sources against the current map *before*
                    // allocating the destination (handles `add r1, r1, r1`).
                    let sources = instr.sources();
                    let mut srcs = [None, None];
                    for (k, r) in sources.iter().take(2).enumerate() {
                        srcs[k] = self.prf.rename(*r);
                    }
                    let nsrcs = sources.len().min(2) as u8;
                    let dest = instr.dest().map(|arch| {
                        let (new, prev) = self.prf.allocate(arch).expect("free-list checked above");
                        DestInfo { arch, new, prev }
                    });
                    self.rob.push_back(RobEntry {
                        pc: d.pc,
                        instr: Some(instr),
                        state: SlotState::Waiting,
                        fault: None,
                        srcs,
                        nsrcs,
                        dest,
                        result: None,
                        store: None,
                        syscall: None,
                        redirect: None,
                        predicted_next: d.predicted_next,
                    });
                    self.iq.push(seq);
                }
            }
            dispatched += 1;
        }
    }

    fn fetch_stage(&mut self) {
        let mut fetched = 0;
        while fetched < self.cfg.fetch_width {
            if self.fetch_stall != FetchStall::None
                || self.cycle < self.fetch_ready_at
                || self.decode_q.len() >= self.cfg.decode_buffer as usize
            {
                break;
            }
            let pc = self.fetch_pc;
            if !pc.is_multiple_of(4) {
                self.decode_q.push_back(Decoded {
                    pc,
                    result: Err(Fault::Trap(Trap::Misaligned { pc, addr: pc })),
                    predicted_next: None,
                });
                self.fetch_stall = FetchStall::Fault;
                break;
            }
            match self.mem.fetch(pc) {
                Err(mf) => {
                    self.decode_q.push_back(Decoded {
                        pc,
                        result: Err(Fault::from_mem(pc, mf)),
                        predicted_next: None,
                    });
                    self.fetch_stall = FetchStall::Fault;
                    break;
                }
                Ok(t) => {
                    if t.latency > self.cfg.mem.l1i.hit_latency {
                        // I-cache miss / TLB walk: charge the latency to the
                        // front end.
                        self.fetch_ready_at = self.cycle + t.latency as u64;
                    }
                    match decode(t.value) {
                        Err(_) => {
                            self.decode_q.push_back(Decoded {
                                pc,
                                result: Err(Fault::Trap(Trap::UndefinedInstruction {
                                    pc,
                                    word: t.value,
                                })),
                                predicted_next: None,
                            });
                            self.fetch_stall = FetchStall::Fault;
                            break;
                        }
                        Ok(instr) => {
                            // Conditional branches: predict when speculation
                            // is enabled (targets are pc-relative, so no BTB
                            // is needed; indirect jumps still stall).
                            if self.cfg.branch_prediction {
                                if let Instruction::Branch { offset, .. } = instr {
                                    let idx = ((pc >> 2) as usize) & (self.predictor.len() - 1);
                                    let taken = self.predictor[idx] >= 2;
                                    let next = if taken {
                                        pc.wrapping_add(4)
                                            .wrapping_add((offset as i32 as u32).wrapping_mul(4))
                                    } else {
                                        pc.wrapping_add(4)
                                    };
                                    self.decode_q.push_back(Decoded {
                                        pc,
                                        result: Ok(instr),
                                        predicted_next: Some(next),
                                    });
                                    fetched += 1;
                                    self.fetch_pc = next;
                                    continue;
                                }
                            }
                            self.decode_q.push_back(Decoded {
                                pc,
                                result: Ok(instr),
                                predicted_next: None,
                            });
                            fetched += 1;
                            if instr.is_direct_jump() {
                                let target = match instr {
                                    Instruction::J { target } | Instruction::Jal { target } => {
                                        target << 2
                                    }
                                    _ => unreachable!(),
                                };
                                self.fetch_pc = target;
                                break; // redirected: stop fetching this cycle
                            } else if instr.is_control() {
                                // The sequence number it will get at dispatch:
                                let seq = self.head_seq
                                    + self.rob.len() as u64
                                    + self.decode_q.len() as u64
                                    - 1;
                                self.fetch_stall = FetchStall::Branch(seq);
                                break;
                            } else {
                                self.fetch_pc = pc.wrapping_add(4);
                            }
                        }
                    }
                }
            }
        }
    }

    /// Advances the machine by one cycle. Returns the run end if the
    /// simulation finished during this cycle.
    pub fn step(&mut self) -> Option<RunEnd> {
        if let Some(end) = self.end {
            return Some(end);
        }
        if self.probes_attached {
            self.mem.set_probe_cycle(self.cycle);
            if let Some(p) = self.pipeline_probe.as_deref_mut() {
                let sb = self.rob.iter().filter(|e| e.store.is_some()).count();
                p.on_cycle(self.cycle, self.rob.len(), self.iq.len(), sb);
            }
        }
        self.commit_stage();
        if self.end.is_none() {
            self.writeback_stage();
            self.issue_stage();
            self.dispatch_stage();
            self.fetch_stage();
        }
        self.cycle += 1;
        self.end
    }

    /// Runs until the cycle counter reaches `cycle` or the program ends.
    ///
    /// Two safety rails bound the loop beyond the plain cycle budget:
    ///
    /// * a **stall fuse** — [`STALL_FUSE`] consecutive cycles without a
    ///   commit end the run as [`RunEnd::CycleLimit`] (a wedged pipeline is a
    ///   livelock; burning the remaining budget would only waste wall-clock);
    /// * a **cancel poll** — if a flag installed via
    ///   [`Simulator::set_cancel_flag`] turns `true`, the loop exits early
    ///   with the run unfinished (`None` end unless it already ended).
    pub fn run_until_cycle(&mut self, cycle: u64) -> Option<RunEnd> {
        let mut stalled: u64 = 0;
        self.run_until_cycle_resumable(cycle, &mut stalled)
    }

    /// Like [`Simulator::run_until_cycle`], but with a caller-owned stall
    /// counter so a run can be split into segments (e.g. pausing at
    /// checkpoint cycles for reconvergence checks) while keeping the stall
    /// fuse *continuous* across the segments. A sequence of calls with the
    /// same `stalled` counter behaves exactly like one uninterrupted
    /// [`Simulator::run_until_cycle`] call over the combined range — the
    /// fuse trips after [`STALL_FUSE`] consecutive commit-less cycles
    /// regardless of how the range was segmented, which is what keeps
    /// fast-forwarded injection runs classification-identical to full runs.
    pub fn run_until_cycle_resumable(&mut self, cycle: u64, stalled: &mut u64) -> Option<RunEnd> {
        let mut last_committed = self.committed;
        let mut steps: u64 = 0;
        while self.end.is_none() && self.cycle < cycle {
            self.step();
            if self.committed == last_committed {
                *stalled += 1;
                if *stalled >= STALL_FUSE {
                    self.end = Some(RunEnd::CycleLimit);
                    break;
                }
            } else {
                last_committed = self.committed;
                *stalled = 0;
            }
            steps += 1;
            if steps.is_multiple_of(CANCEL_POLL_INTERVAL) {
                if let Some(cancel) = &self.cancel {
                    if cancel.load(Ordering::Relaxed) {
                        break;
                    }
                }
            }
        }
        self.end
    }

    /// Runs to completion or `max_cycles`, consuming the simulator.
    pub fn run(mut self, max_cycles: u64) -> RunResult {
        self.run_until_cycle(max_cycles);
        let end = self.end.unwrap_or(RunEnd::CycleLimit);
        RunResult {
            end,
            output: self.output,
            cycles: self.cycle,
            instructions: self.committed,
        }
    }

    /// Liveness-aware comparison against a checkpoint of the *fault-free*
    /// machine at the same cycle: `true` when every reachable bit of state —
    /// pipeline, register file, caches, TLBs, DRAM, pending output — matches.
    ///
    /// Because the simulator is deterministic, equality of all reachable
    /// state at cycle `c` implies every subsequent cycle is identical to the
    /// golden run, so the run is provably `Masked` and can stop early.
    /// Unreachable state (free physical registers, invalid cache lines and
    /// TLB entries) is excluded: it is always fully overwritten before it
    /// can be read, so a fault lingering there cannot change the future.
    pub fn converged_with(&self, golden: &SimSnapshot) -> bool {
        // Cheap scalar state first, memory arrays last.
        self.cycle == golden.cycle
            && self.committed == golden.committed
            && self.end == golden.end
            && self.head_seq == golden.head_seq
            && self.fetch_pc == golden.fetch_pc
            && self.fetch_stall == golden.fetch_stall
            && self.fetch_ready_at == golden.fetch_ready_at
            && self.commit_ready_at == golden.commit_ready_at
            && self.mispredicts == golden.mispredicts
            && self.output == golden.output
            && self.iq == golden.iq
            && same_completion_set(&self.completions, &golden.completions)
            && self.rob == golden.rob
            && self.decode_q == golden.decode_q
            && self.predictor == golden.predictor
            && self.prf.converged_with(&golden.prf)
            && self.mem.converged_with(&golden.mem)
    }
}

/// Writeback order depends only on the *set* of pending completions (they
/// are re-sorted by sequence number every cycle), so the comparison must not
/// be sensitive to insertion order.
fn same_completion_set(a: &[(u64, u64)], b: &[(u64, u64)]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    if a == b {
        return true;
    }
    // Sequence numbers are unique, so equal-length containment in one
    // direction is set equality; the sets are at most a few entries, so a
    // quadratic scan beats sorting two fresh allocations.
    a.iter().all(|x| b.contains(x))
}

/// A complete, bit-exact checkpoint of a [`Simulator`]: all pipeline state
/// (register file with rename map and free list, ROB, issue queue, decode
/// queue, in-flight completions, fetch/commit stall state, branch
/// predictor), the whole memory hierarchy ([`MemSnapshot`], with
/// copy-on-write DRAM pages), the syscall-shim output buffer and the
/// cycle/retire counters.
///
/// Non-architectural attachments — the cancel flag and liveness probes —
/// are deliberately excluded: restoring a snapshot into a fresh simulator
/// built for the same program and configuration reproduces execution
/// cycle-for-cycle.
#[derive(Debug, Clone, PartialEq)]
pub struct SimSnapshot {
    mem: MemSnapshot,
    prf: PhysRegFile,
    rob: VecDeque<RobEntry>,
    head_seq: u64,
    iq: Vec<u64>,
    decode_q: VecDeque<Decoded>,
    completions: Vec<(u64, u64)>,
    fetch_pc: u32,
    fetch_stall: FetchStall,
    fetch_ready_at: u64,
    predictor: Vec<u8>,
    mispredicts: u64,
    commit_ready_at: u64,
    cycle: u64,
    committed: u64,
    output: Vec<u8>,
    end: Option<RunEnd>,
}

impl SimSnapshot {
    /// The cycle this checkpoint was captured at.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Whether the captured machine had already finished its run.
    pub fn ended(&self) -> bool {
        self.end.is_some()
    }

    /// Approximate retained heap bytes of this checkpoint. DRAM pages shared
    /// with `prev` (an already-retained checkpoint) are not charged again.
    pub fn retained_bytes(&self, prev: Option<&Self>) -> usize {
        use std::mem::size_of;
        self.mem.retained_bytes(prev.map(|p| &p.mem))
            + self.prf.snapshot_bytes()
            + self.rob.len() * size_of::<RobEntry>()
            + self.iq.len() * 8
            + self.decode_q.len() * size_of::<Decoded>()
            + self.completions.len() * 16
            + self.predictor.len()
            + self.output.len()
            + size_of::<Self>()
    }
}

impl Snapshot for Simulator {
    type State = SimSnapshot;

    fn snapshot(&self) -> SimSnapshot {
        SimSnapshot {
            mem: self.mem.snapshot(),
            prf: self.prf.clone(),
            rob: self.rob.clone(),
            head_seq: self.head_seq,
            iq: self.iq.clone(),
            decode_q: self.decode_q.clone(),
            completions: self.completions.clone(),
            fetch_pc: self.fetch_pc,
            fetch_stall: self.fetch_stall,
            fetch_ready_at: self.fetch_ready_at,
            predictor: self.predictor.clone(),
            mispredicts: self.mispredicts,
            commit_ready_at: self.commit_ready_at,
            cycle: self.cycle,
            committed: self.committed,
            output: self.output.clone(),
            end: self.end,
        }
    }
}

impl Restorable for Simulator {
    fn restore(&mut self, state: &SimSnapshot) {
        self.mem.restore(&state.mem);
        self.prf.clone_from(&state.prf);
        self.rob.clone_from(&state.rob);
        self.head_seq = state.head_seq;
        self.iq.clone_from(&state.iq);
        self.decode_q.clone_from(&state.decode_q);
        self.completions.clone_from(&state.completions);
        self.fetch_pc = state.fetch_pc;
        self.fetch_stall = state.fetch_stall;
        self.fetch_ready_at = state.fetch_ready_at;
        self.predictor.clone_from(&state.predictor);
        self.mispredicts = state.mispredicts;
        self.commit_ready_at = state.commit_ready_at;
        self.cycle = state.cycle;
        self.committed = state.committed;
        self.output.clone_from(&state.output);
        self.end = state.end;
    }
}

fn extend(raw: u32, width: MemWidth, signed: bool) -> u32 {
    if !signed {
        return raw;
    }
    match width {
        MemWidth::Byte => raw as u8 as i8 as i32 as u32,
        MemWidth::Half => raw as u16 as i16 as i32 as u32,
        MemWidth::Word => raw,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbu_isa::asm::assemble;
    use mbu_isa::interp::{ArchInterpreter, StopReason};

    const EXIT0: &str = "li r2, 0\nli r3, 0\nsyscall\n";

    fn run_src(src: &str) -> RunResult {
        let p = assemble(src).expect("assemble");
        Simulator::new(CoreConfig::cortex_a9_like(), &p).run(1_000_000)
    }

    fn assert_matches_interpreter(src: &str) {
        let p = assemble(src).expect("assemble");
        let golden = ArchInterpreter::new(&p)
            .run(10_000_000)
            .expect("golden run");
        assert_eq!(
            golden.stop,
            StopReason::Exited { code: 0 },
            "golden must exit"
        );
        let r = Simulator::new(CoreConfig::cortex_a9_like(), &p).run(10_000_000);
        assert_eq!(
            r.end,
            RunEnd::Exited { code: 0 },
            "simulator must exit cleanly"
        );
        assert_eq!(
            r.output, golden.output,
            "outputs must match the golden model"
        );
    }

    #[test]
    fn exit_code_propagates() {
        let r = run_src(".text\nmain:\nli r2, 0\nli r3, 7\nsyscall\n");
        assert_eq!(r.end, RunEnd::Exited { code: 7 });
    }

    #[test]
    fn arithmetic_loop_matches_interpreter() {
        assert_matches_interpreter(&format!(
            ".text\nmain:\nli r1, 100\nli r4, 0\nloop:\nadd r4, r4, r1\naddi r1, r1, -1\nbnez r1, loop\nli r2, 2\nmv r3, r4\nsyscall\n{EXIT0}"
        ));
    }

    #[test]
    fn memory_traffic_matches_interpreter() {
        assert_matches_interpreter(&format!(
            r#".text
main:
    la   r1, buf
    li   r4, 64
    li   r5, 0
fill:
    mul  r6, r5, r5
    sw   r6, 0(r1)
    addi r1, r1, 4
    addi r5, r5, 1
    bne  r5, r4, fill
    la   r1, buf
    li   r5, 0
    li   r7, 0
sum:
    lw   r6, 0(r1)
    add  r7, r7, r6
    addi r1, r1, 4
    addi r5, r5, 1
    bne  r5, r4, sum
    li   r2, 2
    mv   r3, r7
    syscall
{EXIT0}
.data
buf: .space 256
"#
        ));
    }

    #[test]
    fn store_load_forwarding_is_correct() {
        assert_matches_interpreter(&format!(
            ".text\nmain:\nla r1, v\nli r4, 123\nsw r4, 0(r1)\nlw r5, 0(r1)\nli r2, 1\nmv r3, r5\nsyscall\n{EXIT0}\n.data\nv: .word 0\n"
        ));
    }

    #[test]
    fn partial_overlap_store_load() {
        // Byte store into a word then word load: partial overlap path.
        assert_matches_interpreter(&format!(
            ".text\nmain:\nla r1, v\nli r4, 0xAA\nsb r4, 1(r1)\nlw r5, 0(r1)\nli r2, 2\nmv r3, r5\nsyscall\n{EXIT0}\n.data\nv: .word 0x11223344\n"
        ));
    }

    #[test]
    fn function_calls_match() {
        assert_matches_interpreter(&format!(
            r#".text
main:
    li   r1, 9
    jal  square
    li   r2, 1
    mv   r3, r1
    syscall
{EXIT0}
square:
    mul  r1, r1, r1
    jr   ra
"#
        ));
    }

    #[test]
    fn undefined_instruction_crashes_precisely() {
        // A store writes 0xFF000000 (invalid opcode) over upcoming code? Text
        // is read-only, so instead jump into the data segment (no-exec).
        let r = run_src(".text\nmain:\nla r1, blob\njr r1\n.data\nblob: .word 0xFF000000\n");
        match r.end {
            RunEnd::Crashed(Trap::Segfault { .. }) => {} // no-exec page
            other => panic!("unexpected end {other:?}"),
        }
    }

    #[test]
    fn div_by_zero_crashes() {
        let r = run_src(".text\nmain:\nli r1, 5\nli r4, 0\ndiv r5, r1, r4\n");
        assert!(matches!(
            r.end,
            RunEnd::Crashed(Trap::DivisionByZero { .. })
        ));
    }

    #[test]
    fn misaligned_load_crashes() {
        let r = run_src(".text\nmain:\nla r1, v\nlw r5, 2(r1)\n.data\nv: .word 1, 2\n");
        assert!(matches!(r.end, RunEnd::Crashed(Trap::Misaligned { .. })));
    }

    #[test]
    fn unmapped_load_crashes() {
        let r = run_src(".text\nmain:\nli r1, 0x2F00\nlw r5, 0(r1)\n");
        assert!(matches!(r.end, RunEnd::Crashed(Trap::Segfault { .. })));
    }

    #[test]
    fn infinite_loop_hits_cycle_limit() {
        let p = assemble(".text\nmain:\nb main\n").unwrap();
        let r = Simulator::new(CoreConfig::cortex_a9_like(), &p).run(5_000);
        assert_eq!(r.end, RunEnd::CycleLimit);
        assert_eq!(r.cycles, 5_000);
    }

    #[test]
    fn tiny_config_still_correct_under_structural_hazards() {
        let src = format!(
            ".text\nmain:\nli r1, 30\nli r4, 1\nloop:\nmul r4, r4, r1\nrem r4, r4, r1\nadd r4, r4, r1\naddi r1, r1, -1\nbnez r1, loop\nli r2, 2\nmv r3, r4\nsyscall\n{EXIT0}"
        );
        let p = assemble(&src).unwrap();
        let golden = ArchInterpreter::new(&p).run(1_000_000).unwrap().output;
        let r = Simulator::new(CoreConfig::tiny(), &p).run(10_000_000);
        assert_eq!(r.end, RunEnd::Exited { code: 0 });
        assert_eq!(r.output, golden);
    }

    #[test]
    fn deterministic_across_runs() {
        let src =
            format!(".text\nmain:\nli r1, 50\nloop:\naddi r1, r1, -1\nbnez r1, loop\n{EXIT0}");
        let p = assemble(&src).unwrap();
        let a = Simulator::new(CoreConfig::cortex_a9_like(), &p).run(1_000_000);
        let b = Simulator::new(CoreConfig::cortex_a9_like(), &p).run(1_000_000);
        assert_eq!(a, b);
    }

    #[test]
    fn out_of_order_overlap_beats_serial_latency() {
        // Independent long-latency chains overlap under OoO issue; a
        // dependent chain of the same operations cannot.
        let indep = format!(
            ".text\nmain:\nli r1, 700\nli r4, 9\ndiv r5, r1, r4\ndiv r6, r4, r1\ndiv r7, r1, r4\ndiv r8, r4, r1\n{EXIT0}"
        );
        let dep = format!(
            ".text\nmain:\nli r1, 700\nli r4, 9\ndiv r5, r1, r4\ndiv r6, r1, r5\ndiv r7, r1, r6\ndiv r8, r1, r7\n{EXIT0}"
        );
        let run = |src: &str| {
            let p = assemble(src).unwrap();
            let r = Simulator::new(CoreConfig::cortex_a9_like(), &p).run(100_000);
            assert_eq!(r.end, RunEnd::Exited { code: 0 });
            r.cycles
        };
        let (ci, cd) = (run(&indep), run(&dep));
        assert!(
            ci + 12 <= cd,
            "independent divs ({ci} cycles) must overlap vs dependent chain ({cd} cycles)"
        );
    }

    #[test]
    fn regfile_injection_before_use_corrupts_output() {
        // r1 is never written: it reads its initial physical register, whose
        // value we corrupt before the run.
        let src = format!(".text\nmain:\nmv r3, r1\nli r2, 1\nsyscall\n{EXIT0}");
        let p = assemble(&src).unwrap();
        let mut sim = Simulator::new(CoreConfig::cortex_a9_like(), &p);
        let r1_phys = sim.regfile().rename(mbu_isa::Reg::new(1)).unwrap();
        sim.inject_flips(HwComponent::RegFile, &[BitCoord::new(r1_phys as usize, 6)]);
        let r = sim.run(100_000);
        assert_eq!(r.end, RunEnd::Exited { code: 0 });
        assert_eq!(r.output, vec![64]);
    }

    #[test]
    fn component_geometries_exposed() {
        let p = assemble(".text\nmain: nop\n").unwrap();
        let sim = Simulator::new(CoreConfig::cortex_a9_like(), &p);
        // Scaled experimental memory config: 2 KB L1s, 8 KB L2,
        // 4-entry ITLB / 8-entry DTLB.
        assert_eq!(
            sim.component_geometry(HwComponent::L1D).total_bits(),
            16_384
        );
        assert_eq!(sim.component_geometry(HwComponent::L2).total_bits(), 65_536);
        assert_eq!(
            sim.component_geometry(HwComponent::RegFile).total_bits(),
            56 * 32
        );
        assert_eq!(
            sim.component_geometry(HwComponent::ITlb).total_bits(),
            4 * 44
        );
        assert_eq!(
            sim.component_geometry(HwComponent::DTlb).total_bits(),
            8 * 44
        );
    }
}

#[cfg(test)]
mod edge_case_tests {
    use super::*;
    use mbu_isa::asm::assemble;

    const EXIT0: &str = "li r2, 0\nli r3, 0\nsyscall\n";

    #[test]
    fn misaligned_jump_target_crashes_at_fetch() {
        let r = {
            let p = assemble(".text\nmain:\nli r1, 0x00400002\njr r1\n").unwrap();
            Simulator::new(CoreConfig::cortex_a9_like(), &p).run(100_000)
        };
        assert!(
            matches!(r.end, RunEnd::Crashed(Trap::Misaligned { .. })),
            "{:?}",
            r.end
        );
    }

    #[test]
    fn jump_into_unmapped_text_crashes() {
        let p = assemble(".text\nmain:\nli r1, 0x00500000\njr r1\n").unwrap();
        let r = Simulator::new(CoreConfig::cortex_a9_like(), &p).run(100_000);
        assert!(
            matches!(r.end, RunEnd::Crashed(Trap::Segfault { .. })),
            "{:?}",
            r.end
        );
    }

    #[test]
    fn bad_syscall_number_crashes() {
        let p = assemble(&format!(
            ".text\nmain:\nli r2, 99\nli r3, 0\nsyscall\n{EXIT0}"
        ))
        .unwrap();
        let r = Simulator::new(CoreConfig::cortex_a9_like(), &p).run(100_000);
        assert!(matches!(
            r.end,
            RunEnd::Crashed(Trap::BadSyscall { number: 99, .. })
        ));
    }

    #[test]
    fn faulting_instruction_in_untaken_shadow_never_crashes() {
        // The divide-by-zero sits after the exit syscall; precise faults
        // mean it must never be architecturally visible.
        let src = format!(
            ".text\nmain:\nli r1, 1\nbnez r1, out\ndiv r4, r1, zero\nout:\n{EXIT0}div r4, r1, zero\n"
        );
        let p = assemble(&src).unwrap();
        let r = Simulator::new(CoreConfig::cortex_a9_like(), &p).run(100_000);
        assert_eq!(r.end, RunEnd::Exited { code: 0 });
    }

    #[test]
    fn output_order_is_program_order() {
        // Interleaved PUTC/PUTW syscalls commit in order even when younger
        // ALU work completes first.
        let src = ".text\nmain:\nli r2, 1\nli r3, 65\nsyscall\nli r1, 700\nli r4, 7\ndiv r5, r1, r4\nli r3, 66\nsyscall\nli r2, 0\nli r3, 0\nsyscall\n";
        let p = assemble(src).unwrap();
        let r = Simulator::new(CoreConfig::cortex_a9_like(), &p).run(100_000);
        assert_eq!(r.output, b"AB");
    }

    #[test]
    fn in_order_mode_serializes_issue() {
        // A dependent add blocks a younger independent divide: the OoO
        // machine hoists the divide past the stalled add, the in-order
        // machine cannot.
        let src = format!(
            ".text\nmain:\nli r1, 700\nli r4, 9\ndiv r5, r1, r4\nadd r6, r5, r1\ndiv r7, r4, r1\nadd r8, r7, r4\n{EXIT0}"
        );
        let p = assemble(&src).unwrap();
        let ooo = Simulator::new(CoreConfig::cortex_a9_like(), &p).run(100_000);
        let ino = Simulator::new(CoreConfig::in_order_a9(), &p).run(100_000);
        assert_eq!(ooo.end, RunEnd::Exited { code: 0 });
        assert_eq!(ino.end, RunEnd::Exited { code: 0 });
        assert!(
            ino.cycles >= ooo.cycles + 10,
            "in-order {} vs OoO {}",
            ino.cycles,
            ooo.cycles
        );
    }

    #[test]
    fn tag_geometry_exposed_for_caches_only() {
        let p = assemble(".text\nmain: nop\n").unwrap();
        let sim = Simulator::new(CoreConfig::cortex_a9_like(), &p);
        let g = sim.tag_geometry(HwComponent::L1D);
        assert_eq!(g.rows(), 64, "2 KB / 32 B lines");
        assert!(g.cols() > 20, "tag + valid + dirty bits");
    }

    #[test]
    #[should_panic(expected = "no tag array")]
    fn tag_geometry_panics_for_regfile() {
        let p = assemble(".text\nmain: nop\n").unwrap();
        let sim = Simulator::new(CoreConfig::cortex_a9_like(), &p);
        let _ = sim.tag_geometry(HwComponent::RegFile);
    }

    #[test]
    fn stack_accesses_work_through_hierarchy() {
        let src = format!(
            ".text\nmain:\naddi sp, sp, -16\nli r1, 0xABCD\nsw r1, 0(sp)\nsw r1, 12(sp)\nlw r3, 12(sp)\nli r2, 2\nsyscall\n{EXIT0}"
        );
        let p = assemble(&src).unwrap();
        let r = Simulator::new(CoreConfig::cortex_a9_like(), &p).run(1_000_000);
        assert_eq!(r.end, RunEnd::Exited { code: 0 });
        assert_eq!(r.output, 0xABCDu32.to_le_bytes().to_vec());
    }
}

#[cfg(test)]
mod speculation_tests {
    use super::*;
    use mbu_isa::asm::assemble;

    const EXIT0: &str = "li r2, 0\nli r3, 0\nsyscall\n";

    fn loop_program() -> mbu_isa::Program {
        assemble(&format!(
            ".text\nmain:\nli r1, 200\nli r4, 0\nloop:\nadd r4, r4, r1\naddi r1, r1, -1\nbnez r1, loop\nli r2, 2\nmv r3, r4\nsyscall\n{EXIT0}"
        ))
        .unwrap()
    }

    #[test]
    fn speculation_preserves_architectural_results() {
        let p = loop_program();
        let base = Simulator::new(CoreConfig::cortex_a9_like(), &p).run(1_000_000);
        let spec = Simulator::new(CoreConfig::speculative_a9(), &p).run(1_000_000);
        assert_eq!(base.end, RunEnd::Exited { code: 0 });
        assert_eq!(spec.end, base.end);
        assert_eq!(spec.output, base.output);
        assert_eq!(
            spec.instructions, base.instructions,
            "committed count is architectural"
        );
    }

    #[test]
    fn speculation_speeds_up_loops() {
        let p = loop_program();
        let base = Simulator::new(CoreConfig::cortex_a9_like(), &p).run(1_000_000);
        let spec = Simulator::new(CoreConfig::speculative_a9(), &p).run(1_000_000);
        assert!(
            spec.cycles * 10 < base.cycles * 9,
            "predicted back-edges must beat stall-on-branch ({} vs {})",
            spec.cycles,
            base.cycles
        );
    }

    #[test]
    fn mispredicts_are_counted_and_recovered() {
        // A data-dependent alternating branch defeats the bimodal predictor.
        let src = format!(
            ".text\nmain:\nli r1, 100\nli r4, 0\nli r5, 0\nloop:\nandi r6, r1, 1\nbeqz r6, even\naddi r4, r4, 3\nb next\neven:\naddi r5, r5, 7\nnext:\naddi r1, r1, -1\nbnez r1, loop\nli r2, 2\nadd r3, r4, r5\nsyscall\n{EXIT0}"
        );
        let p = assemble(&src).unwrap();
        let mut sim = Simulator::new(CoreConfig::speculative_a9(), &p);
        let end = sim.run_until_cycle(1_000_000);
        assert_eq!(end, Some(RunEnd::Exited { code: 0 }));
        assert!(
            sim.mispredicts > 20,
            "alternating branch must mispredict ({})",
            sim.mispredicts
        );
        assert_eq!(
            sim.output(),
            0u32.wrapping_add(50 * 3 + 50 * 7).to_le_bytes().as_slice()
        );
    }

    #[test]
    fn wrong_path_faults_never_crash() {
        // The not-taken fall-through leads straight into a division by zero
        // and a wild load; a predictor that guesses wrong must squash them.
        let src = format!(
            ".text\nmain:\nli r1, 50\nloop:\nli r4, 1\nbnez r4, safe\ndiv r5, r4, zero\nlw r6, 0(zero)\nsafe:\naddi r1, r1, -1\nbnez r1, loop\n{EXIT0}"
        );
        let p = assemble(&src).unwrap();
        let r = Simulator::new(CoreConfig::speculative_a9(), &p).run(1_000_000);
        assert_eq!(
            r.end,
            RunEnd::Exited { code: 0 },
            "speculative faults must be squashed"
        );
    }

    #[test]
    fn free_list_survives_heavy_squashing() {
        // Alternating branch with register writes on both paths: every
        // mispredict squashes renamed instructions; the free list must not
        // leak (run long enough that a leak of one register per squash
        // would deadlock the 56-entry file).
        let src = format!(
            ".text\nmain:\nli r1, 400\nloop:\nandi r6, r1, 1\nbeqz r6, even\naddi r4, r4, 1\naddi r5, r5, 2\naddi r7, r7, 3\nb next\neven:\naddi r8, r8, 4\naddi r9, r9, 5\naddi r10, r10, 6\nnext:\naddi r1, r1, -1\nbnez r1, loop\n{EXIT0}"
        );
        let p = assemble(&src).unwrap();
        let r = Simulator::new(CoreConfig::speculative_a9(), &p).run(10_000_000);
        assert_eq!(r.end, RunEnd::Exited { code: 0 });
    }

    #[test]
    fn speculative_runs_are_deterministic() {
        let p = loop_program();
        let a = Simulator::new(CoreConfig::speculative_a9(), &p).run(1_000_000);
        let b = Simulator::new(CoreConfig::speculative_a9(), &p).run(1_000_000);
        assert_eq!(a, b);
    }
}

#[cfg(test)]
mod stats_tests {
    use super::*;
    use mbu_isa::asm::assemble;

    #[test]
    fn pipeline_stats_accumulate_sensibly() {
        let src = ".text\nmain:\nli r1, 500\nla r5, buf\nloop:\nlw r6, 0(r5)\naddi r1, r1, -1\nbnez r1, loop\nli r2, 0\nli r3, 0\nsyscall\n.data\nbuf: .word 7\n";
        let p = assemble(src).unwrap();
        let mut sim = Simulator::new(CoreConfig::cortex_a9_like(), &p);
        sim.run_until_cycle(u64::MAX / 8);
        let st = sim.pipeline_stats();
        assert!(st.l1d.0 > 400, "hot loop load must hit L1D: {:?}", st.l1d);
        assert!(PipelineStats::hit_rate(st.l1d) > 0.99);
        assert!(PipelineStats::hit_rate(st.l1i) > 0.9);
        assert!(st.dtlb.0 > 400, "DTLB hot: {:?}", st.dtlb);
        assert_eq!(st.mispredicts, 0, "no speculation by default");
    }

    #[test]
    fn hit_rate_of_untouched_structure_is_zero() {
        assert_eq!(PipelineStats::hit_rate((0, 0)), 0.0);
        assert_eq!(PipelineStats::hit_rate((3, 1)), 0.75);
    }
}

#[cfg(test)]
mod snapshot_tests {
    use super::*;
    use mbu_isa::asm::assemble;

    fn busy_program() -> mbu_isa::Program {
        // A loop with loads, stores and branches so the ROB, store buffer,
        // caches and TLBs all carry in-flight state at most cycles.
        let src = ".text\nmain:\nli r1, 300\nla r5, buf\nloop:\nlw r6, 0(r5)\naddi r6, r6, 3\nsw r6, 0(r5)\naddi r5, r5, 4\nandi r7, r1, 63\nbnez r7, skip\nla r5, buf\nskip:\naddi r1, r1, -1\nbnez r1, loop\nli r2, 2\nmv r3, r6\nsyscall\nli r2, 0\nli r3, 0\nsyscall\n.data\nbuf: .space 512\n";
        assemble(src).unwrap()
    }

    #[test]
    fn snapshot_restore_resumes_cycle_identically() {
        let p = busy_program();
        let cfg = CoreConfig::cortex_a9_like();
        let uninterrupted = Simulator::new(cfg, &p).run(1_000_000);
        assert_eq!(uninterrupted.end, RunEnd::Exited { code: 0 });

        // Snapshot mid-flight, keep running: result must be unchanged.
        let mut sim = Simulator::new(cfg, &p);
        sim.run_until_cycle(137);
        let saved = sim.snapshot();
        assert_eq!(saved.cycle(), 137);
        assert!(!saved.ended());
        let resumed = sim.run(1_000_000);
        assert_eq!(resumed, uninterrupted);

        // Restore into a *fresh* simulator: identical continuation.
        let mut fresh = Simulator::new(cfg, &p);
        fresh.restore(&saved);
        assert_eq!(fresh.snapshot(), saved, "roundtrip must be bit-exact");
        let replayed = fresh.run(1_000_000);
        assert_eq!(replayed, uninterrupted);
    }

    #[test]
    fn restore_rewinds_a_diverged_machine() {
        let p = busy_program();
        let mut sim = Simulator::new(CoreConfig::cortex_a9_like(), &p);
        sim.run_until_cycle(100);
        let saved = sim.snapshot();
        sim.run_until_cycle(500);
        assert!(!sim.converged_with(&saved), "cycle count alone differs");
        sim.restore(&saved);
        assert!(sim.converged_with(&saved));
        assert_eq!(sim.snapshot(), saved);
    }

    #[test]
    fn segmented_run_matches_single_call() {
        let p = busy_program();
        let single = Simulator::new(CoreConfig::cortex_a9_like(), &p).run(1_000_000);

        let mut sim = Simulator::new(CoreConfig::cortex_a9_like(), &p);
        let mut stalled: u64 = 0;
        let mut at = 89;
        while sim.run_until_cycle_resumable(at, &mut stalled).is_none() {
            at += 89;
        }
        assert_eq!(sim.end, Some(single.end));
        assert_eq!(sim.cycle, single.cycles);
        assert_eq!(sim.committed, single.instructions);
        assert_eq!(sim.output, single.output);
    }

    #[test]
    fn convergence_ignores_dead_state_but_sees_live_faults() {
        let p = busy_program();
        let mut sim = Simulator::new(CoreConfig::cortex_a9_like(), &p);
        sim.run_until_cycle(200);
        let golden = sim.snapshot();
        assert!(sim.converged_with(&golden));

        // A flip in a free physical register is dead state: convergence
        // holds even though bit-exact equality does not.
        let free = sim.prf.free_count();
        assert!(free > 0, "busy loop still leaves free registers");
        let dead_row = sim.prf.len() - 1; // free list tail = highest reg
        sim.inject_flips(HwComponent::RegFile, &[BitCoord::new(dead_row, 13)]);
        assert!(sim.converged_with(&golden), "free-register flip is dead");
        assert_ne!(sim.snapshot(), golden);

        // A flip in DRAM-visible state (store target line) is live.
        sim.inject_flips(HwComponent::L1D, &[BitCoord::new(0, 0)]);
        let l1d_live = sim.converged_with(&golden);
        // Row 0 may or may not hold a valid line; flip it back and check a
        // committed-state divergence instead: the cycle counter.
        sim.inject_flips(HwComponent::L1D, &[BitCoord::new(0, 0)]);
        assert!(sim.converged_with(&golden) || !l1d_live);
        sim.step();
        assert!(
            !sim.converged_with(&golden),
            "cycle advanced: not converged"
        );
    }
}
