//! Property-based differential testing: the out-of-order core must match
//! the architectural interpreter on arbitrary generated programs.

use mbu_cpu::{CoreConfig, RunEnd, Simulator};
use mbu_isa::instr::{AluImmOp, AluOp, Instruction, MemWidth, Reg};
use mbu_isa::interp::{ArchInterpreter, StopReason};
use mbu_isa::{encode, Program, TEXT_BASE};
use proptest::prelude::*;

/// A generated body instruction: ALU / memory ops over r1..r11 and a
/// 1 KB scratch buffer addressed through r12.
#[derive(Debug, Clone, Copy)]
enum BodyOp {
    Alu(AluOp, u8, u8, u8),
    AluImm(AluImmOp, u8, u8, u16),
    Load(MemWidth, u8, u16),
    Store(MemWidth, u8, u16),
}

fn body_op() -> impl Strategy<Value = BodyOp> {
    let reg = 1u8..12;
    let alu = prop_oneof![
        Just(AluOp::Add),
        Just(AluOp::Sub),
        Just(AluOp::Mul),
        Just(AluOp::Mulhu),
        Just(AluOp::And),
        Just(AluOp::Or),
        Just(AluOp::Xor),
        Just(AluOp::Nor),
        Just(AluOp::Sll),
        Just(AluOp::Srl),
        Just(AluOp::Sra),
        Just(AluOp::Slt),
        Just(AluOp::Sltu),
    ];
    let alui = prop_oneof![
        Just(AluImmOp::Addi),
        Just(AluImmOp::Andi),
        Just(AluImmOp::Ori),
        Just(AluImmOp::Xori),
        Just(AluImmOp::Slti),
        Just(AluImmOp::Sltiu),
        Just(AluImmOp::Slli),
        Just(AluImmOp::Srli),
        Just(AluImmOp::Srai),
    ];
    let width = prop_oneof![
        Just(MemWidth::Byte),
        Just(MemWidth::Half),
        Just(MemWidth::Word)
    ];
    prop_oneof![
        (alu, reg.clone(), reg.clone(), reg.clone())
            .prop_map(|(op, rd, rs, rt)| BodyOp::Alu(op, rd, rs, rt)),
        (alui, reg.clone(), reg.clone(), any::<u16>())
            .prop_map(|(op, rd, rs, imm)| BodyOp::AluImm(op, rd, rs, imm)),
        (width.clone(), reg.clone(), 0u16..1024).prop_map(|(w, rd, off)| BodyOp::Load(w, rd, off)),
        (width, reg, 0u16..1024).prop_map(|(w, rt, off)| BodyOp::Store(w, rt, off)),
    ]
}

/// Builds a terminating program: init registers, run the body twice (as a
/// counted loop via straight-line duplication), emit a register checksum,
/// exit 0. Memory offsets are aligned to the access width.
fn build_program(body: &[BodyOp]) -> Program {
    let mut text = Vec::new();
    // r12 = scratch buffer base (the data segment).
    text.push(encode(Instruction::Lui {
        rd: Reg::new(12),
        imm: (mbu_isa::DATA_BASE >> 16) as u16,
    }));
    // Seed registers r1..r11 with distinct values.
    for r in 1..12u8 {
        text.push(encode(Instruction::AluImm {
            op: AluImmOp::Addi,
            rd: Reg::new(r),
            rs: Reg::ZERO,
            imm: (r as u16) * 1021,
        }));
    }
    for _ in 0..2 {
        for &op in body {
            let instr = match op {
                BodyOp::Alu(op, rd, rs, rt) => Instruction::Alu {
                    op,
                    rd: Reg::new(rd),
                    rs: Reg::new(rs),
                    rt: Reg::new(rt),
                },
                BodyOp::AluImm(op, rd, rs, imm) => Instruction::AluImm {
                    op,
                    rd: Reg::new(rd),
                    rs: Reg::new(rs),
                    imm,
                },
                BodyOp::Load(width, rd, off) => Instruction::Load {
                    width,
                    signed: true,
                    rd: Reg::new(rd),
                    rs: Reg::new(12),
                    offset: (off & !(width.bytes() as u16 - 1)) as i16,
                },
                BodyOp::Store(width, rt, off) => Instruction::Store {
                    width,
                    rt: Reg::new(rt),
                    rs: Reg::new(12),
                    offset: (off & !(width.bytes() as u16 - 1)) as i16,
                },
            };
            text.push(encode(instr));
        }
    }
    // Output a checksum of every register: r3 = r1 ^ .. ^ r11, PUTW.
    text.push(encode(Instruction::AluImm {
        op: AluImmOp::Addi,
        rd: Reg::new(3),
        rs: Reg::new(1),
        imm: 0,
    }));
    for r in 2..12u8 {
        text.push(encode(Instruction::Alu {
            op: AluOp::Xor,
            rd: Reg::new(3),
            rs: Reg::new(3),
            rt: Reg::new(r),
        }));
    }
    text.push(encode(Instruction::AluImm {
        op: AluImmOp::Addi,
        rd: Reg::new(2),
        rs: Reg::ZERO,
        imm: 2,
    }));
    text.push(encode(Instruction::Syscall));
    // exit(0)
    text.push(encode(Instruction::AluImm {
        op: AluImmOp::Addi,
        rd: Reg::new(2),
        rs: Reg::ZERO,
        imm: 0,
    }));
    text.push(encode(Instruction::AluImm {
        op: AluImmOp::Addi,
        rd: Reg::new(3),
        rs: Reg::ZERO,
        imm: 0,
    }));
    text.push(encode(Instruction::Syscall));
    Program::new(text, vec![0u8; 1024 + 4], TEXT_BASE)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Differential: the OoO core's architectural results equal the
    /// interpreter's, for arbitrary ALU/memory instruction mixes — this
    /// exercises renaming, out-of-order issue, store-buffer forwarding and
    /// the cache hierarchy against the simple golden model.
    #[test]
    fn ooo_core_matches_interpreter(body in proptest::collection::vec(body_op(), 1..60)) {
        let program = build_program(&body);
        let golden = ArchInterpreter::new(&program)
            .run(1_000_000)
            .expect("generated programs cannot fault");
        prop_assert_eq!(&golden.stop, &StopReason::Exited { code: 0 });
        for &cfg in &[CoreConfig::cortex_a9_like(), CoreConfig::tiny(), CoreConfig::in_order_a9(), CoreConfig::speculative_a9()] {
            let r = Simulator::new(cfg, &program).run(10_000_000);
            prop_assert_eq!(r.end, RunEnd::Exited { code: 0 });
            prop_assert_eq!(&r.output, &golden.output, "config {:?}", cfg.rob_entries);
        }
    }

    /// Fault-free runs are cycle-deterministic.
    #[test]
    fn runs_are_deterministic(body in proptest::collection::vec(body_op(), 1..20)) {
        let program = build_program(&body);
        let a = Simulator::new(CoreConfig::cortex_a9_like(), &program).run(10_000_000);
        let b = Simulator::new(CoreConfig::cortex_a9_like(), &program).run(10_000_000);
        prop_assert_eq!(a, b);
    }
}
