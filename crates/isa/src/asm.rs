//! A two-pass text assembler for the `mbusim` ISA.
//!
//! The workloads of the reproduction (`mbu-workloads`) are written in this
//! assembly dialect. Supported syntax:
//!
//! ```text
//! .text                       # code section (default)
//! main:                       # labels
//!     li   r1, 0x1234_5678    # pseudo: load 32-bit immediate
//!     la   r2, buffer         # pseudo: load symbol address
//!     lw   r3, 4(r2)          # loads/stores: offset(base)
//!     add  r3, r3, r1
//!     bnez r3, main           # branch pseudos
//!     syscall
//! .data
//! buffer: .word 1, 2, 3       # also .half .byte .ascii .space .align
//! ```
//!
//! Comments start with `#` or `;`. Numbers may be decimal, hexadecimal
//! (`0x…`), negative, and may contain `_` separators. Symbol operands accept
//! a `+offset`/`-offset` suffix (`table+8`).

use crate::instr::{AluImmOp, AluOp, BranchCond, Instruction, MemWidth, Reg};
use crate::program::{Program, DATA_BASE, TEXT_BASE};
use std::collections::BTreeMap;
use std::fmt;

/// Error produced while assembling, with the 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based line number in the source text.
    pub line: usize,
    /// Problem description.
    pub message: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "assembly error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for AsmError {}

type Result<T> = std::result::Result<T, AsmError>;

fn err<T>(line: usize, message: impl Into<String>) -> Result<T> {
    Err(AsmError {
        line,
        message: message.into(),
    })
}

/// Assembles source text into a [`Program`].
///
/// The entry point is the `main` label if defined, otherwise the start of the
/// text segment.
///
/// # Errors
///
/// Returns an [`AsmError`] pinpointing the offending line for syntax errors,
/// unknown mnemonics or registers, undefined labels, and out-of-range
/// immediates/branch offsets.
///
/// # Example
///
/// ```
/// let p = mbu_isa::asm::assemble(".text\nmain: li r1, 7\n syscall\n")?;
/// assert_eq!(p.text.len(), 2);
/// # Ok::<(), mbu_isa::asm::AsmError>(())
/// ```
pub fn assemble(source: &str) -> Result<Program> {
    let items = parse(source)?;
    let (symbols, text_len, data) = layout(&items)?;
    let mut text = Vec::with_capacity(text_len);
    for item in &items {
        if let Item::Code { line, stmt } = item {
            let pc = TEXT_BASE + (text.len() * 4) as u32;
            stmt.encode(*line, pc, &symbols, &mut text)?;
        }
    }
    debug_assert_eq!(text.len(), text_len);
    let entry = symbols.get("main").copied().unwrap_or(TEXT_BASE);
    let mut program = Program::new(text, data, entry);
    program.symbols = symbols;
    Ok(program)
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Section {
    Text,
    Data,
}

/// A numeric-or-symbolic operand (`123`, `0xFF`, `label`, `label+4`).
#[derive(Debug, Clone, PartialEq, Eq)]
enum Value {
    Num(i64),
    Sym(String, i64),
}

impl Value {
    fn resolve(&self, line: usize, symbols: &BTreeMap<String, u32>) -> Result<i64> {
        match self {
            Value::Num(n) => Ok(*n),
            Value::Sym(name, off) => match symbols.get(name) {
                Some(addr) => Ok(*addr as i64 + off),
                None => err(line, format!("undefined symbol `{name}`")),
            },
        }
    }
}

/// One parsed assembly statement (possibly a pseudo-instruction).
#[derive(Debug, Clone)]
enum Stmt {
    Real(Instruction),
    /// `li rd, value` / `la rd, symbol` — expands to 1 or 2 instructions.
    LoadImm {
        rd: Reg,
        value: Value,
        force_wide: bool,
    },
    /// Conditional branch to a label or numeric offset.
    Branch {
        cond: BranchCond,
        rs: Reg,
        rt: Reg,
        target: Value,
    },
    /// `j`/`jal` to a label or address.
    Jump {
        link: bool,
        target: Value,
    },
}

impl Stmt {
    /// Number of machine instructions this statement expands to.
    fn size(&self) -> usize {
        match self {
            Stmt::LoadImm {
                value, force_wide, ..
            } => {
                if *force_wide {
                    return 2;
                }
                match value {
                    Value::Num(n) if (-32768..=32767).contains(n) => 1,
                    Value::Num(n) if n & 0xFFFF == 0 && (*n as u64) <= u32::MAX as u64 => 1,
                    _ => 2,
                }
            }
            _ => 1,
        }
    }

    fn encode(
        &self,
        line: usize,
        pc: u32,
        symbols: &BTreeMap<String, u32>,
        out: &mut Vec<u32>,
    ) -> Result<()> {
        match self {
            Stmt::Real(i) => out.push(crate::instr::encode(*i)),
            Stmt::LoadImm {
                rd,
                value,
                force_wide,
            } => {
                let v = value.resolve(line, symbols)?;
                if !(-(1i64 << 31)..(1i64 << 32)).contains(&v) {
                    return err(line, format!("immediate {v} does not fit in 32 bits"));
                }
                let v32 = v as u32;
                if !force_wide && self.size() == 1 {
                    if (-32768..=32767).contains(&v) {
                        out.push(crate::instr::encode(Instruction::AluImm {
                            op: AluImmOp::Addi,
                            rd: *rd,
                            rs: Reg::ZERO,
                            imm: v32 as u16,
                        }));
                    } else {
                        out.push(crate::instr::encode(Instruction::Lui {
                            rd: *rd,
                            imm: (v32 >> 16) as u16,
                        }));
                    }
                } else {
                    out.push(crate::instr::encode(Instruction::Lui {
                        rd: *rd,
                        imm: (v32 >> 16) as u16,
                    }));
                    out.push(crate::instr::encode(Instruction::AluImm {
                        op: AluImmOp::Ori,
                        rd: *rd,
                        rs: *rd,
                        imm: (v32 & 0xFFFF) as u16,
                    }));
                }
            }
            Stmt::Branch {
                cond,
                rs,
                rt,
                target,
            } => {
                let t = target.resolve(line, symbols)?;
                let delta = t - (pc as i64 + 4);
                if delta % 4 != 0 {
                    return err(line, "branch target is not instruction-aligned");
                }
                let words = delta / 4;
                if !(-32768..=32767).contains(&words) {
                    return err(line, format!("branch offset {words} out of range"));
                }
                out.push(crate::instr::encode(Instruction::Branch {
                    cond: *cond,
                    rs: *rs,
                    rt: *rt,
                    offset: words as i16,
                }));
            }
            Stmt::Jump { link, target } => {
                let t = target.resolve(line, symbols)?;
                if t % 4 != 0 {
                    return err(line, "jump target is not instruction-aligned");
                }
                let word = (t / 4) as u64;
                if word > 0x00FF_FFFF {
                    return err(line, format!("jump target 0x{t:x} out of 26-bit range"));
                }
                let word = word as u32;
                out.push(crate::instr::encode(if *link {
                    Instruction::Jal { target: word }
                } else {
                    Instruction::J { target: word }
                }));
            }
        }
        Ok(())
    }
}

#[derive(Debug, Clone)]
enum Item {
    Code {
        line: usize,
        stmt: Stmt,
    },
    Label {
        line: usize,
        name: String,
        section: Section,
    },
    Data {
        bytes: Vec<u8>,
    },
    /// Alignment request inside the data section.
    DataAlign {
        to: usize,
    },
}

fn parse(source: &str) -> Result<Vec<Item>> {
    let mut items = Vec::new();
    let mut section = Section::Text;
    for (lineno, raw) in source.lines().enumerate() {
        let line = lineno + 1;
        let mut text = raw;
        if let Some(pos) = text.find(['#', ';']) {
            text = &text[..pos];
        }
        let mut text = text.trim();
        // Leading labels (possibly several).
        while let Some(colon) = text.find(':') {
            let (name, rest) = text.split_at(colon);
            let name = name.trim();
            if name.is_empty()
                || !name
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
            {
                break;
            }
            items.push(Item::Label {
                line,
                name: name.to_string(),
                section,
            });
            text = rest[1..].trim();
        }
        if text.is_empty() {
            continue;
        }
        if let Some(directive) = text.strip_prefix('.') {
            let (name, args) = match directive.find(char::is_whitespace) {
                Some(p) => (&directive[..p], directive[p..].trim()),
                None => (directive, ""),
            };
            match name {
                "text" => section = Section::Text,
                "data" => section = Section::Data,
                "word" | "half" | "byte" | "space" | "ascii" | "asciiz" | "align" => {
                    if section != Section::Data {
                        return err(line, format!(".{name} only allowed in .data section"));
                    }
                    parse_data_directive(line, name, args, &mut items)?;
                }
                other => return err(line, format!("unknown directive .{other}")),
            }
            continue;
        }
        if section != Section::Text {
            return err(line, "instructions only allowed in .text section");
        }
        let stmt = parse_instruction(line, text)?;
        items.push(Item::Code { line, stmt });
    }
    Ok(items)
}

fn parse_data_directive(line: usize, name: &str, args: &str, items: &mut Vec<Item>) -> Result<()> {
    match name {
        "word" | "half" => {
            let width = if name == "word" { 4 } else { 2 };
            items.push(Item::DataAlign { to: width });
            let mut bytes = Vec::new();
            for field in split_args(args) {
                let v = parse_value(line, &field)?;
                let n = match v {
                    Value::Num(n) => n,
                    Value::Sym(..) => {
                        // Symbols in .word are resolved in a later pass; to
                        // keep the assembler single-layout we disallow them in
                        // .half and handle .word via a placeholder rewrite.
                        return err(line, "symbol operands are not supported in data directives; build tables with `la` at runtime");
                    }
                };
                let lo = n as u64;
                for i in 0..width {
                    bytes.push((lo >> (8 * i)) as u8);
                }
            }
            items.push(Item::Data { bytes });
        }
        "byte" => {
            let mut bytes = Vec::new();
            for field in split_args(args) {
                match parse_value(line, &field)? {
                    Value::Num(n) => bytes.push(n as u8),
                    Value::Sym(..) => return err(line, "symbols not allowed in .byte"),
                }
            }
            items.push(Item::Data { bytes });
        }
        "space" => {
            let n = match parse_value(line, args.trim())? {
                Value::Num(n) if n >= 0 => n as usize,
                _ => return err(line, ".space needs a non-negative size"),
            };
            items.push(Item::Data {
                bytes: vec![0u8; n],
            });
        }
        "ascii" | "asciiz" => {
            let s = args.trim();
            if s.len() < 2 || !s.starts_with('"') || !s.ends_with('"') {
                return err(line, "string literal must be double-quoted");
            }
            let mut bytes = unescape(line, &s[1..s.len() - 1])?;
            if name == "asciiz" {
                bytes.push(0);
            }
            items.push(Item::Data { bytes });
        }
        "align" => {
            let n = match parse_value(line, args.trim())? {
                Value::Num(n) if n > 0 => n as usize,
                _ => return err(line, ".align needs a positive argument"),
            };
            items.push(Item::DataAlign { to: n });
        }
        _ => unreachable!("caller filters directive names"),
    }
    Ok(())
}

fn unescape(line: usize, s: &str) -> Result<Vec<u8>> {
    let mut out = Vec::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            let mut buf = [0u8; 4];
            out.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
            continue;
        }
        match chars.next() {
            Some('n') => out.push(b'\n'),
            Some('t') => out.push(b'\t'),
            Some('0') => out.push(0),
            Some('\\') => out.push(b'\\'),
            Some('"') => out.push(b'"'),
            other => return err(line, format!("unknown escape sequence \\{other:?}")),
        }
    }
    Ok(out)
}

fn layout(items: &[Item]) -> Result<(BTreeMap<String, u32>, usize, Vec<u8>)> {
    let mut symbols = BTreeMap::new();
    let mut text_len = 0usize;
    let mut data = Vec::new();
    for item in items {
        match item {
            Item::Code { stmt, .. } => text_len += stmt.size(),
            Item::Label {
                line,
                name,
                section,
            } => {
                let addr = match section {
                    Section::Text => TEXT_BASE + (text_len * 4) as u32,
                    Section::Data => DATA_BASE + data.len() as u32,
                };
                if symbols.insert(name.clone(), addr).is_some() {
                    return err(*line, format!("duplicate label `{name}`"));
                }
            }
            Item::Data { bytes } => data.extend_from_slice(bytes),
            Item::DataAlign { to } => {
                while data.len() % to != 0 {
                    data.push(0);
                }
            }
        }
    }
    Ok((symbols, text_len, data))
}

fn split_args(s: &str) -> Vec<String> {
    s.split(',')
        .map(|f| f.trim().to_string())
        .filter(|f| !f.is_empty())
        .collect()
}

fn parse_reg(line: usize, s: &str) -> Result<Reg> {
    let s = s.trim();
    match s {
        "zero" => return Ok(Reg::ZERO),
        "sp" => return Ok(Reg::SP),
        "ra" => return Ok(Reg::RA),
        _ => {}
    }
    if let Some(n) = s.strip_prefix('r') {
        if let Ok(i) = n.parse::<u8>() {
            if i < 16 {
                return Ok(Reg::new(i));
            }
        }
    }
    err(line, format!("unknown register `{s}`"))
}

fn parse_num(s: &str) -> Option<i64> {
    let s = s.replace('_', "");
    let (neg, s) = match s.strip_prefix('-') {
        Some(rest) => (true, rest.to_string()),
        None => (false, s),
    };
    let v = if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        i64::from_str_radix(hex, 16).ok()?
    } else {
        s.parse::<i64>().ok()?
    };
    Some(if neg { -v } else { v })
}

fn parse_value(line: usize, s: &str) -> Result<Value> {
    let s = s.trim();
    if s.is_empty() {
        return err(line, "empty operand");
    }
    if let Some(n) = parse_num(s) {
        return Ok(Value::Num(n));
    }
    // symbol, symbol+N, symbol-N
    let split_pos = s[1..].find(['+', '-']).map(|p| p + 1);
    let (name, off) = match split_pos {
        Some(p) => {
            let off = parse_num(&s[p..].replace(' ', "")).ok_or_else(|| AsmError {
                line,
                message: format!("bad offset in `{s}`"),
            })?;
            (&s[..p], off)
        }
        None => (s, 0),
    };
    let name = name.trim();
    if name.is_empty()
        || !name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
    {
        return err(line, format!("bad operand `{s}`"));
    }
    Ok(Value::Sym(name.to_string(), off))
}

fn parse_imm16(line: usize, s: &str) -> Result<u16> {
    match parse_value(line, s)? {
        Value::Num(n) if (-32768..=65535).contains(&n) => Ok(n as u16),
        Value::Num(n) => err(line, format!("immediate {n} out of 16-bit range")),
        Value::Sym(..) => err(line, "symbol not allowed here (use li/la)"),
    }
}

/// Parses `offset(base)` memory operands.
fn parse_mem_operand(line: usize, s: &str) -> Result<(i16, Reg)> {
    let s = s.trim();
    let open = s.find('(').ok_or_else(|| AsmError {
        line,
        message: format!("expected offset(base), got `{s}`"),
    })?;
    if !s.ends_with(')') {
        return err(line, format!("expected offset(base), got `{s}`"));
    }
    let off_str = s[..open].trim();
    let offset = if off_str.is_empty() {
        0
    } else {
        match parse_value(line, off_str)? {
            Value::Num(n) if (-32768..=32767).contains(&n) => n as i16,
            Value::Num(n) => return err(line, format!("offset {n} out of range")),
            Value::Sym(..) => return err(line, "symbolic offsets not supported"),
        }
    };
    let base = parse_reg(line, &s[open + 1..s.len() - 1])?;
    Ok((offset, base))
}

fn parse_instruction(line: usize, text: &str) -> Result<Stmt> {
    let (mnemonic, rest) = match text.find(char::is_whitespace) {
        Some(p) => (&text[..p], text[p..].trim()),
        None => (text, ""),
    };
    let args = split_args(rest);
    let nargs = args.len();
    let need = |n: usize| -> Result<()> {
        if nargs != n {
            err(
                line,
                format!("`{mnemonic}` expects {n} operands, got {nargs}"),
            )
        } else {
            Ok(())
        }
    };

    let alu3 = |op: AluOp, args: &[String]| -> Result<Stmt> {
        Ok(Stmt::Real(Instruction::Alu {
            op,
            rd: parse_reg(line, &args[0])?,
            rs: parse_reg(line, &args[1])?,
            rt: parse_reg(line, &args[2])?,
        }))
    };
    let alui = |op: AluImmOp, args: &[String]| -> Result<Stmt> {
        Ok(Stmt::Real(Instruction::AluImm {
            op,
            rd: parse_reg(line, &args[0])?,
            rs: parse_reg(line, &args[1])?,
            imm: parse_imm16(line, &args[2])?,
        }))
    };
    let load = |w: MemWidth, signed: bool, args: &[String]| -> Result<Stmt> {
        let (offset, rs) = parse_mem_operand(line, &args[1])?;
        Ok(Stmt::Real(Instruction::Load {
            width: w,
            signed,
            rd: parse_reg(line, &args[0])?,
            rs,
            offset,
        }))
    };
    let store = |w: MemWidth, args: &[String]| -> Result<Stmt> {
        let (offset, rs) = parse_mem_operand(line, &args[1])?;
        Ok(Stmt::Real(Instruction::Store {
            width: w,
            rt: parse_reg(line, &args[0])?,
            rs,
            offset,
        }))
    };
    let branch = |cond: BranchCond, swap: bool, args: &[String]| -> Result<Stmt> {
        let (a, b) = if swap { (1, 0) } else { (0, 1) };
        Ok(Stmt::Branch {
            cond,
            rs: parse_reg(line, &args[a])?,
            rt: parse_reg(line, &args[b])?,
            target: parse_value(line, &args[2])?,
        })
    };
    let branch_zero = |cond: BranchCond, args: &[String]| -> Result<Stmt> {
        Ok(Stmt::Branch {
            cond,
            rs: parse_reg(line, &args[0])?,
            rt: Reg::ZERO,
            target: parse_value(line, &args[1])?,
        })
    };

    match mnemonic {
        "nop" => {
            need(0)?;
            Ok(Stmt::Real(Instruction::Nop))
        }
        "add" => {
            need(3)?;
            alu3(AluOp::Add, &args)
        }
        "sub" => {
            need(3)?;
            alu3(AluOp::Sub, &args)
        }
        "mul" => {
            need(3)?;
            alu3(AluOp::Mul, &args)
        }
        "mulhu" => {
            need(3)?;
            alu3(AluOp::Mulhu, &args)
        }
        "div" => {
            need(3)?;
            alu3(AluOp::Div, &args)
        }
        "divu" => {
            need(3)?;
            alu3(AluOp::Divu, &args)
        }
        "rem" => {
            need(3)?;
            alu3(AluOp::Rem, &args)
        }
        "remu" => {
            need(3)?;
            alu3(AluOp::Remu, &args)
        }
        "and" => {
            need(3)?;
            alu3(AluOp::And, &args)
        }
        "or" => {
            need(3)?;
            alu3(AluOp::Or, &args)
        }
        "xor" => {
            need(3)?;
            alu3(AluOp::Xor, &args)
        }
        "nor" => {
            need(3)?;
            alu3(AluOp::Nor, &args)
        }
        "sll" => {
            need(3)?;
            alu3(AluOp::Sll, &args)
        }
        "srl" => {
            need(3)?;
            alu3(AluOp::Srl, &args)
        }
        "sra" => {
            need(3)?;
            alu3(AluOp::Sra, &args)
        }
        "slt" => {
            need(3)?;
            alu3(AluOp::Slt, &args)
        }
        "sltu" => {
            need(3)?;
            alu3(AluOp::Sltu, &args)
        }
        "addi" => {
            need(3)?;
            alui(AluImmOp::Addi, &args)
        }
        "andi" => {
            need(3)?;
            alui(AluImmOp::Andi, &args)
        }
        "ori" => {
            need(3)?;
            alui(AluImmOp::Ori, &args)
        }
        "xori" => {
            need(3)?;
            alui(AluImmOp::Xori, &args)
        }
        "slti" => {
            need(3)?;
            alui(AluImmOp::Slti, &args)
        }
        "sltiu" => {
            need(3)?;
            alui(AluImmOp::Sltiu, &args)
        }
        "slli" => {
            need(3)?;
            alui(AluImmOp::Slli, &args)
        }
        "srli" => {
            need(3)?;
            alui(AluImmOp::Srli, &args)
        }
        "srai" => {
            need(3)?;
            alui(AluImmOp::Srai, &args)
        }
        "lui" => {
            need(2)?;
            Ok(Stmt::Real(Instruction::Lui {
                rd: parse_reg(line, &args[0])?,
                imm: parse_imm16(line, &args[1])?,
            }))
        }
        "lw" => {
            need(2)?;
            load(MemWidth::Word, true, &args)
        }
        "lh" => {
            need(2)?;
            load(MemWidth::Half, true, &args)
        }
        "lhu" => {
            need(2)?;
            load(MemWidth::Half, false, &args)
        }
        "lb" => {
            need(2)?;
            load(MemWidth::Byte, true, &args)
        }
        "lbu" => {
            need(2)?;
            load(MemWidth::Byte, false, &args)
        }
        "sw" => {
            need(2)?;
            store(MemWidth::Word, &args)
        }
        "sh" => {
            need(2)?;
            store(MemWidth::Half, &args)
        }
        "sb" => {
            need(2)?;
            store(MemWidth::Byte, &args)
        }
        "beq" => {
            need(3)?;
            branch(BranchCond::Eq, false, &args)
        }
        "bne" => {
            need(3)?;
            branch(BranchCond::Ne, false, &args)
        }
        "blt" => {
            need(3)?;
            branch(BranchCond::Lt, false, &args)
        }
        "bge" => {
            need(3)?;
            branch(BranchCond::Ge, false, &args)
        }
        "bltu" => {
            need(3)?;
            branch(BranchCond::Ltu, false, &args)
        }
        "bgeu" => {
            need(3)?;
            branch(BranchCond::Geu, false, &args)
        }
        "bgt" => {
            need(3)?;
            branch(BranchCond::Lt, true, &args)
        }
        "ble" => {
            need(3)?;
            branch(BranchCond::Ge, true, &args)
        }
        "bgtu" => {
            need(3)?;
            branch(BranchCond::Ltu, true, &args)
        }
        "bleu" => {
            need(3)?;
            branch(BranchCond::Geu, true, &args)
        }
        "beqz" => {
            need(2)?;
            branch_zero(BranchCond::Eq, &args)
        }
        "bnez" => {
            need(2)?;
            branch_zero(BranchCond::Ne, &args)
        }
        "bltz" => {
            need(2)?;
            branch_zero(BranchCond::Lt, &args)
        }
        "bgez" => {
            need(2)?;
            branch_zero(BranchCond::Ge, &args)
        }
        "b" => {
            need(1)?;
            Ok(Stmt::Branch {
                cond: BranchCond::Eq,
                rs: Reg::ZERO,
                rt: Reg::ZERO,
                target: parse_value(line, &args[0])?,
            })
        }
        "j" => {
            need(1)?;
            Ok(Stmt::Jump {
                link: false,
                target: parse_value(line, &args[0])?,
            })
        }
        "jal" => {
            need(1)?;
            Ok(Stmt::Jump {
                link: true,
                target: parse_value(line, &args[0])?,
            })
        }
        "jr" => {
            need(1)?;
            Ok(Stmt::Real(Instruction::Jr {
                rs: parse_reg(line, &args[0])?,
            }))
        }
        "jalr" => {
            need(2)?;
            Ok(Stmt::Real(Instruction::Jalr {
                rd: parse_reg(line, &args[0])?,
                rs: parse_reg(line, &args[1])?,
            }))
        }
        "li" => {
            need(2)?;
            Ok(Stmt::LoadImm {
                rd: parse_reg(line, &args[0])?,
                value: parse_value(line, &args[1])?,
                force_wide: false,
            })
        }
        "la" => {
            need(2)?;
            Ok(Stmt::LoadImm {
                rd: parse_reg(line, &args[0])?,
                value: parse_value(line, &args[1])?,
                force_wide: true,
            })
        }
        "mv" => {
            need(2)?;
            Ok(Stmt::Real(Instruction::AluImm {
                op: AluImmOp::Addi,
                rd: parse_reg(line, &args[0])?,
                rs: parse_reg(line, &args[1])?,
                imm: 0,
            }))
        }
        "not" => {
            need(2)?;
            Ok(Stmt::Real(Instruction::Alu {
                op: AluOp::Nor,
                rd: parse_reg(line, &args[0])?,
                rs: parse_reg(line, &args[1])?,
                rt: Reg::ZERO,
            }))
        }
        "neg" => {
            need(2)?;
            Ok(Stmt::Real(Instruction::Alu {
                op: AluOp::Sub,
                rd: parse_reg(line, &args[0])?,
                rs: Reg::ZERO,
                rt: parse_reg(line, &args[1])?,
            }))
        }
        "syscall" => {
            need(0)?;
            Ok(Stmt::Real(Instruction::Syscall))
        }
        other => err(line, format!("unknown mnemonic `{other}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::decode;

    #[test]
    fn assembles_basic_program() {
        let p = assemble(
            r#"
            .text
            main:
                li   r1, 10
                la   r2, buf
                lw   r3, 0(r2)
                add  r3, r3, r1
                sw   r3, 4(r2)
                beqz r3, main
                syscall
            .data
            buf: .word 41, 0
            "#,
        )
        .unwrap();
        assert_eq!(p.entry, TEXT_BASE);
        assert_eq!(p.symbol("buf"), Some(DATA_BASE));
        assert_eq!(p.data, vec![41, 0, 0, 0, 0, 0, 0, 0]);
        // li(1) + la(2) + 5 real = 8 instructions.
        assert_eq!(p.text.len(), 8);
        for w in &p.text {
            decode(*w).expect("assembled word must decode");
        }
    }

    #[test]
    fn li_chooses_narrow_and_wide_forms() {
        let p = assemble(".text\nli r1, 5\nli r2, 0x12340000\nli r3, 0x12345678\n").unwrap();
        assert_eq!(p.text.len(), 1 + 1 + 2);
    }

    #[test]
    fn li_negative_value() {
        let p = assemble(".text\nli r1, -2\nsyscall\n").unwrap();
        match decode(p.text[0]).unwrap() {
            Instruction::AluImm {
                op: AluImmOp::Addi,
                imm,
                ..
            } => assert_eq!(imm as i16, -2),
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn branch_offsets_resolve_both_directions() {
        let p =
            assemble(".text\nstart:\nnop\nbeq r1, r2, fwd\nnop\nbne r1, r2, start\nfwd:\nnop\n")
                .unwrap();
        match decode(p.text[1]).unwrap() {
            Instruction::Branch { offset, .. } => assert_eq!(offset, 2),
            other => panic!("unexpected {other}"),
        }
        match decode(p.text[3]).unwrap() {
            Instruction::Branch { offset, .. } => assert_eq!(offset, -4),
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn undefined_label_reports_line() {
        let e = assemble(".text\nnop\nj nowhere\n").unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("nowhere"));
    }

    #[test]
    fn duplicate_label_rejected() {
        let e = assemble(".text\nx:\nnop\nx:\nnop\n").unwrap_err();
        assert!(e.message.contains("duplicate"));
    }

    #[test]
    fn data_directives_layout() {
        let p = assemble(
            ".data\na: .byte 1, 2\nb: .half 0x0304\nc: .word 0x05060708\nd: .space 3\ne: .ascii \"hi\"\n",
        )
        .unwrap();
        // a: 2 bytes, pad to 4? .half aligns to 2 -> b at offset 2.
        assert_eq!(p.symbol("a"), Some(DATA_BASE));
        assert_eq!(p.symbol("b"), Some(DATA_BASE + 2));
        assert_eq!(p.symbol("c"), Some(DATA_BASE + 4));
        assert_eq!(p.symbol("d"), Some(DATA_BASE + 8));
        assert_eq!(p.symbol("e"), Some(DATA_BASE + 11));
        assert_eq!(p.data, vec![1, 2, 4, 3, 8, 7, 6, 5, 0, 0, 0, b'h', b'i']);
    }

    #[test]
    fn symbol_plus_offset_operand() {
        let p = assemble(".text\nla r1, tab+8\n.data\ntab: .space 16\n").unwrap();
        // lui+ori; ori immediate should be low 16 bits of DATA_BASE+8.
        match decode(p.text[1]).unwrap() {
            Instruction::AluImm {
                op: AluImmOp::Ori,
                imm,
                ..
            } => {
                assert_eq!(imm as u32, (DATA_BASE + 8) & 0xFFFF);
            }
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn pseudo_branches_swap_operands() {
        let p = assemble(".text\nx: bgt r1, r2, x\n").unwrap();
        match decode(p.text[0]).unwrap() {
            Instruction::Branch {
                cond: BranchCond::Lt,
                rs,
                rt,
                ..
            } => {
                assert_eq!(rs, Reg::new(2));
                assert_eq!(rt, Reg::new(1));
            }
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn rejects_instruction_in_data_section() {
        let e = assemble(".data\nadd r1, r2, r3\n").unwrap_err();
        assert!(e.message.contains(".text"));
    }

    #[test]
    fn rejects_unknown_mnemonic_and_register() {
        assert!(assemble(".text\nfrobnicate r1\n").is_err());
        assert!(assemble(".text\nadd r1, r99, r3\n").is_err());
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let p = assemble("# header\n.text\n\n  ; note\nnop # trailing\n").unwrap();
        assert_eq!(p.text.len(), 1);
    }
}
