//! A compact 32-bit RISC instruction-set architecture used as the software
//! substrate of the `mbusim` reproduction.
//!
//! The paper runs ARMv7 MiBench binaries on gem5; this crate provides the
//! stand-in ISA: fixed-width 32-bit encodings, 16 architectural registers
//! (`r0` hardwired to zero), loads/stores with byte/half/word granularity,
//! compare-and-branch instructions, direct and indirect jumps, and a syscall
//! instruction used by the thin system layer for program output and exit.
//!
//! Components:
//!
//! * [`Instruction`] — the decoded instruction forms and their metadata
//!   (register reads/writes, classes used by the out-of-order core).
//! * [`encode`]/[`decode`] — binary instruction encoding. Bit flips in the
//!   instruction cache corrupt these 32-bit words; corrupt encodings either
//!   decode to *different valid* instructions (silent corruption paths) or
//!   fail to decode (undefined-instruction traps), exactly the failure modes
//!   the paper observes for the L1I cache.
//! * [`asm`] — a two-pass text assembler with labels, data directives and the
//!   usual pseudo-instructions (`li`, `la`, `mv`, `b`, …).
//! * [`program`] — the loaded-program image (text/data segments, symbols).
//! * [`interp`] — a simple architectural interpreter used as the golden model
//!   in differential tests against the cycle-level core.
//!
//! # Example
//!
//! ```
//! use mbu_isa::{asm::assemble, interp::ArchInterpreter};
//!
//! let program = assemble(
//!     r#"
//!     .text
//!     main:
//!         li   r1, 5
//!         li   r2, 0
//!     loop:
//!         add  r2, r2, r1
//!         addi r1, r1, -1
//!         bne  r1, zero, loop
//!         mv   r3, r2          # output 5+4+3+2+1 = 15
//!         li   r2, 1           # SYS_PUTC
//!         syscall
//!         li   r2, 0           # SYS_EXIT
//!         li   r3, 0
//!         syscall
//!     "#,
//! )?;
//! let run = ArchInterpreter::new(&program).run(100_000)?;
//! assert_eq!(run.output, vec![15]);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]

pub mod asm;
pub mod instr;
pub mod interp;
pub mod program;

pub use instr::{decode, encode, BranchCond, DecodeError, Instruction, Reg};
pub use program::{Program, DATA_BASE, STACK_TOP, TEXT_BASE};

/// Syscall numbers understood by the system layer (placed in `r2`).
pub mod sys {
    /// Exit the program; exit code in `r3`.
    pub const EXIT: u32 = 0;
    /// Write the low byte of `r3` to the program output stream.
    pub const PUTC: u32 = 1;
    /// Write `r3` to the output stream as 4 little-endian bytes.
    pub const PUTW: u32 = 2;
}
