//! A simple architectural interpreter — the golden model.
//!
//! The interpreter executes programs one instruction at a time against a flat
//! paged memory, with no caches, TLBs or pipelining. It defines the
//! *architectural* semantics that the cycle-level out-of-order core in
//! `mbu-cpu` must match exactly; differential tests between the two catch
//! modeling bugs in either.
//!
//! It is also used by the workload crate to compute golden outputs quickly.

use crate::instr::{decode, Instruction, Reg};
use crate::program::{Program, DATA_BASE, STACK_SIZE, STACK_TOP, TEXT_BASE};
use crate::sys;
use std::collections::BTreeMap;
use std::fmt;

/// An architectural trap: the reason a program was terminated abnormally.
///
/// Traps are "process crashes" in the paper's fault-effect taxonomy (§III.C):
/// the simulated program is abnormally terminated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Trap {
    /// Fetched word does not decode to a valid instruction.
    UndefinedInstruction { pc: u32, word: u32 },
    /// Load/store/fetch address has the wrong alignment.
    Misaligned { pc: u32, addr: u32 },
    /// Access to an unmapped virtual address or with wrong permissions.
    Segfault { pc: u32, addr: u32 },
    /// Integer division by zero.
    DivisionByZero { pc: u32 },
    /// Unknown syscall number.
    BadSyscall { pc: u32, number: u32 },
}

impl fmt::Display for Trap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Trap::UndefinedInstruction { pc, word } => {
                write!(f, "undefined instruction 0x{word:08x} at pc 0x{pc:08x}")
            }
            Trap::Misaligned { pc, addr } => {
                write!(f, "misaligned access to 0x{addr:08x} at pc 0x{pc:08x}")
            }
            Trap::Segfault { pc, addr } => {
                write!(f, "segmentation fault at 0x{addr:08x}, pc 0x{pc:08x}")
            }
            Trap::DivisionByZero { pc } => write!(f, "division by zero at pc 0x{pc:08x}"),
            Trap::BadSyscall { pc, number } => {
                write!(f, "unknown syscall {number} at pc 0x{pc:08x}")
            }
        }
    }
}

impl std::error::Error for Trap {}

/// Why an interpreter run stopped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StopReason {
    /// The program executed `SYS_EXIT`.
    Exited {
        /// Exit code passed in `r3`.
        code: u32,
    },
    /// The step limit was reached before the program exited.
    StepLimit,
}

/// Result of a completed interpreter run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunResult {
    /// Why execution stopped.
    pub stop: StopReason,
    /// Bytes the program wrote through `SYS_PUTC`/`SYS_PUTW`.
    pub output: Vec<u8>,
    /// Number of instructions executed.
    pub instructions: u64,
}

const PAGE_SIZE: u32 = 4096;

/// Flat paged byte memory with unmapped holes.
#[derive(Debug, Clone, Default)]
pub struct FlatMemory {
    pages: BTreeMap<u32, Box<[u8; PAGE_SIZE as usize]>>,
}

impl FlatMemory {
    /// Creates an empty memory (all addresses unmapped).
    pub fn new() -> Self {
        Self::default()
    }

    /// Maps the pages covering `[base, base+len)` (idempotent), zero-filled.
    pub fn map_range(&mut self, base: u32, len: u32) {
        if len == 0 {
            return;
        }
        let first = base / PAGE_SIZE;
        let last = (base + len - 1) / PAGE_SIZE;
        for vpn in first..=last {
            self.pages
                .entry(vpn)
                .or_insert_with(|| Box::new([0; PAGE_SIZE as usize]));
        }
    }

    /// Whether `addr` is mapped.
    pub fn is_mapped(&self, addr: u32) -> bool {
        self.pages.contains_key(&(addr / PAGE_SIZE))
    }

    /// Reads one byte; `None` if unmapped.
    pub fn read_u8(&self, addr: u32) -> Option<u8> {
        self.pages
            .get(&(addr / PAGE_SIZE))
            .map(|p| p[(addr % PAGE_SIZE) as usize])
    }

    /// Writes one byte; `false` if unmapped.
    pub fn write_u8(&mut self, addr: u32, value: u8) -> bool {
        match self.pages.get_mut(&(addr / PAGE_SIZE)) {
            Some(p) => {
                p[(addr % PAGE_SIZE) as usize] = value;
                true
            }
            None => false,
        }
    }

    /// Reads a little-endian value of `width` bytes; `None` if any byte is unmapped.
    pub fn read_le(&self, addr: u32, width: u32) -> Option<u32> {
        let mut v = 0u32;
        for i in 0..width {
            v |= (self.read_u8(addr + i)? as u32) << (8 * i);
        }
        Some(v)
    }

    /// Writes a little-endian value of `width` bytes; `false` if any byte is unmapped.
    pub fn write_le(&mut self, addr: u32, width: u32, value: u32) -> bool {
        for i in 0..width {
            if !self.write_u8(addr + i, (value >> (8 * i)) as u8) {
                return false;
            }
        }
        true
    }
}

/// The architectural interpreter.
///
/// # Example
///
/// ```
/// use mbu_isa::{asm::assemble, interp::ArchInterpreter};
/// let p = assemble(".text\nmain:\nli r2, 0\nli r3, 42\nsyscall\n")?;
/// let run = ArchInterpreter::new(&p).run(1000)?;
/// assert_eq!(run.stop, mbu_isa::interp::StopReason::Exited { code: 42 });
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct ArchInterpreter {
    regs: [u32; 16],
    pc: u32,
    mem: FlatMemory,
    output: Vec<u8>,
}

impl ArchInterpreter {
    /// Loads a program: text at [`TEXT_BASE`], data at [`DATA_BASE`] (plus a
    /// 64 KB heap margin), and a [`STACK_SIZE`] stack below [`STACK_TOP`].
    pub fn new(program: &Program) -> Self {
        let mut mem = FlatMemory::new();
        mem.map_range(TEXT_BASE, (program.text.len().max(1) * 4) as u32);
        let data_len = program.data.len() as u32 + 64 * 1024;
        mem.map_range(DATA_BASE, data_len);
        mem.map_range(STACK_TOP - STACK_SIZE, STACK_SIZE);
        for (i, word) in program.text.iter().enumerate() {
            mem.write_le(TEXT_BASE + (i * 4) as u32, 4, *word);
        }
        for (i, byte) in program.data.iter().enumerate() {
            mem.write_u8(DATA_BASE + i as u32, *byte);
        }
        let mut regs = [0u32; 16];
        regs[Reg::SP.index() as usize] = STACK_TOP;
        Self {
            regs,
            pc: program.entry,
            mem,
            output: Vec::new(),
        }
    }

    /// Current program counter.
    pub fn pc(&self) -> u32 {
        self.pc
    }

    /// Reads an architectural register.
    pub fn reg(&self, r: Reg) -> u32 {
        self.regs[r.index() as usize]
    }

    /// Writes an architectural register (writes to `r0` are discarded).
    pub fn set_reg(&mut self, r: Reg, value: u32) {
        if !r.is_zero() {
            self.regs[r.index() as usize] = value;
        }
    }

    /// Immutable access to the memory.
    pub fn memory(&self) -> &FlatMemory {
        &self.mem
    }

    /// Mutable access to the memory (for test setup).
    pub fn memory_mut(&mut self) -> &mut FlatMemory {
        &mut self.mem
    }

    /// Executes a single instruction.
    ///
    /// Returns `Ok(Some(code))` if the program exited with `code`, `Ok(None)`
    /// to continue.
    ///
    /// # Errors
    ///
    /// Returns a [`Trap`] on any architectural fault.
    pub fn step(&mut self) -> Result<Option<u32>, Trap> {
        let pc = self.pc;
        if !pc.is_multiple_of(4) {
            return Err(Trap::Misaligned { pc, addr: pc });
        }
        let word = self
            .mem
            .read_le(pc, 4)
            .ok_or(Trap::Segfault { pc, addr: pc })?;
        let instr = decode(word).map_err(|_| Trap::UndefinedInstruction { pc, word })?;
        let mut next = pc.wrapping_add(4);
        match instr {
            Instruction::Nop => {}
            Instruction::Alu { op, rd, rs, rt } => {
                let v = op
                    .apply(self.reg(rs), self.reg(rt))
                    .ok_or(Trap::DivisionByZero { pc })?;
                self.set_reg(rd, v);
            }
            Instruction::AluImm { op, rd, rs, imm } => {
                self.set_reg(rd, op.apply(self.reg(rs), imm));
            }
            Instruction::Lui { rd, imm } => self.set_reg(rd, (imm as u32) << 16),
            Instruction::Load {
                width,
                signed,
                rd,
                rs,
                offset,
            } => {
                let addr = self.reg(rs).wrapping_add(offset as i32 as u32);
                let bytes = width.bytes();
                if !addr.is_multiple_of(bytes) {
                    return Err(Trap::Misaligned { pc, addr });
                }
                let raw = self
                    .mem
                    .read_le(addr, bytes)
                    .ok_or(Trap::Segfault { pc, addr })?;
                let v = if signed {
                    match bytes {
                        1 => raw as u8 as i8 as i32 as u32,
                        2 => raw as u16 as i16 as i32 as u32,
                        _ => raw,
                    }
                } else {
                    raw
                };
                self.set_reg(rd, v);
            }
            Instruction::Store {
                width,
                rt,
                rs,
                offset,
            } => {
                let addr = self.reg(rs).wrapping_add(offset as i32 as u32);
                let bytes = width.bytes();
                if !addr.is_multiple_of(bytes) {
                    return Err(Trap::Misaligned { pc, addr });
                }
                if !self.mem.write_le(addr, bytes, self.reg(rt)) {
                    return Err(Trap::Segfault { pc, addr });
                }
            }
            Instruction::Branch {
                cond,
                rs,
                rt,
                offset,
            } => {
                if cond.eval(self.reg(rs), self.reg(rt)) {
                    next = pc
                        .wrapping_add(4)
                        .wrapping_add((offset as i32 as u32).wrapping_mul(4));
                }
            }
            Instruction::J { target } => next = target << 2,
            Instruction::Jal { target } => {
                self.set_reg(Reg::RA, pc.wrapping_add(4));
                next = target << 2;
            }
            Instruction::Jr { rs } => next = self.reg(rs),
            Instruction::Jalr { rd, rs } => {
                let t = self.reg(rs);
                self.set_reg(rd, pc.wrapping_add(4));
                next = t;
            }
            Instruction::Syscall => {
                let number = self.reg(Reg::new(2));
                let arg = self.reg(Reg::new(3));
                match number {
                    sys::EXIT => return Ok(Some(arg)),
                    sys::PUTC => self.output.push(arg as u8),
                    sys::PUTW => self.output.extend_from_slice(&arg.to_le_bytes()),
                    other => return Err(Trap::BadSyscall { pc, number: other }),
                }
            }
        }
        self.pc = next;
        Ok(None)
    }

    /// Runs until exit or `max_steps` instructions.
    ///
    /// # Errors
    ///
    /// Returns a [`Trap`] on any architectural fault.
    pub fn run(mut self, max_steps: u64) -> Result<RunResult, Trap> {
        let mut executed = 0u64;
        while executed < max_steps {
            executed += 1;
            if let Some(code) = self.step()? {
                return Ok(RunResult {
                    stop: StopReason::Exited { code },
                    output: self.output,
                    instructions: executed,
                });
            }
        }
        Ok(RunResult {
            stop: StopReason::StepLimit,
            output: self.output,
            instructions: executed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;

    fn run(src: &str) -> RunResult {
        let p = assemble(src).expect("assemble");
        ArchInterpreter::new(&p).run(1_000_000).expect("run")
    }

    fn run_trap(src: &str) -> Trap {
        let p = assemble(src).expect("assemble");
        ArchInterpreter::new(&p)
            .run(1_000_000)
            .expect_err("expected trap")
    }

    const EXIT0: &str = "li r2, 0\nli r3, 0\nsyscall\n";

    #[test]
    fn loop_sum_and_output() {
        let r = run(&format!(
            ".text\nmain:\nli r1, 10\nli r4, 0\nloop:\nadd r4, r4, r1\naddi r1, r1, -1\nbnez r1, loop\nli r2, 1\nmv r3, r4\nsyscall\n{EXIT0}"
        ));
        assert_eq!(r.stop, StopReason::Exited { code: 0 });
        assert_eq!(r.output, vec![55]);
    }

    #[test]
    fn memory_and_stack() {
        let r = run(&format!(
            ".text\nmain:\naddi sp, sp, -8\nli r1, 0x1234\nsw r1, 4(sp)\nlw r3, 4(sp)\nli r2, 2\nsyscall\n{EXIT0}"
        ));
        assert_eq!(r.output, vec![0x34, 0x12, 0, 0]);
    }

    #[test]
    fn data_segment_roundtrip() {
        let r = run(&format!(
            ".text\nmain:\nla r5, v\nlw r3, 0(r5)\nli r2, 2\nsyscall\n{EXIT0}\n.data\nv: .word 0xCAFE\n"
        ));
        assert_eq!(r.output, vec![0xFE, 0xCA, 0, 0]);
    }

    #[test]
    fn function_call_via_jal() {
        let r = run(&format!(
            ".text\nmain:\nli r1, 20\njal double\nmv r3, r1\nli r2, 1\nsyscall\n{EXIT0}\ndouble:\nadd r1, r1, r1\njr ra\n"
        ));
        assert_eq!(r.output, vec![40]);
    }

    #[test]
    fn byte_and_half_memory_ops() {
        let r = run(&format!(
            ".text\nmain:\nla r5, b\nlb r3, 0(r5)\nli r2, 1\nsyscall\nlbu r3, 0(r5)\nsyscall\nlh r3, 2(r5)\nli r2, 2\nsyscall\n{EXIT0}\n.data\nb: .byte 0xFF, 0\n.half 0x8000\n"
        ));
        // lb sign-extends 0xFF -> output byte 0xFF; lbu -> 0xFF;
        // lh sign-extends 0x8000 -> 0xFFFF8000 as LE word.
        assert_eq!(r.output, vec![0xFF, 0xFF, 0x00, 0x80, 0xFF, 0xFF]);
    }

    #[test]
    fn segfault_on_unmapped() {
        match run_trap(".text\nmain:\nli r1, 0x2000\nlw r3, 0(r1)\n") {
            Trap::Segfault { addr, .. } => assert_eq!(addr, 0x2000),
            other => panic!("unexpected trap {other}"),
        }
    }

    #[test]
    fn misaligned_word_access() {
        match run_trap(".text\nmain:\nla r1, v\nlw r3, 1(r1)\n.data\nv: .word 1, 2\n") {
            Trap::Misaligned { .. } => {}
            other => panic!("unexpected trap {other}"),
        }
    }

    #[test]
    fn div_by_zero_traps() {
        match run_trap(".text\nmain:\nli r1, 3\nli r4, 0\ndiv r5, r1, r4\n") {
            Trap::DivisionByZero { .. } => {}
            other => panic!("unexpected trap {other}"),
        }
    }

    #[test]
    fn jr_to_garbage_faults() {
        match run_trap(".text\nmain:\nli r1, 0x0\njr r1\n") {
            Trap::Segfault { .. } => {}
            other => panic!("unexpected trap {other}"),
        }
    }

    #[test]
    fn step_limit_reported() {
        let p = assemble(".text\nmain:\nb main\n").unwrap();
        let r = ArchInterpreter::new(&p).run(100).unwrap();
        assert_eq!(r.stop, StopReason::StepLimit);
        assert_eq!(r.instructions, 100);
    }

    #[test]
    fn writes_to_r0_discarded() {
        let r = run(&format!(
            ".text\nmain:\nli r1, 7\nadd zero, r1, r1\nmv r3, zero\nli r2, 1\nsyscall\n{EXIT0}"
        ));
        assert_eq!(r.output, vec![0]);
    }
}
