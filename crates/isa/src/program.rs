//! Loaded-program images: text/data segments, entry point and symbol table.

use std::collections::BTreeMap;
use std::fmt;

/// Base virtual address of the text (code) segment.
pub const TEXT_BASE: u32 = 0x0040_0000;
/// Base virtual address of the data segment.
pub const DATA_BASE: u32 = 0x1000_0000;
/// Initial stack pointer (stack grows downwards). The top page of the 1 GB
/// virtual address space is reserved so wild positive offsets off `sp` fault.
pub const STACK_TOP: u32 = 0x3FFF_F000;
/// Default stack reservation in bytes.
pub const STACK_SIZE: u32 = 64 * 1024;

/// An assembled program image ready to be loaded by a simulator.
///
/// # Example
///
/// ```
/// use mbu_isa::asm::assemble;
/// let p = assemble(".text\nmain: syscall\n.data\nx: .word 7\n")?;
/// assert_eq!(p.text.len(), 1);
/// assert_eq!(p.symbol("x"), Some(mbu_isa::DATA_BASE));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    /// Encoded instructions, loaded at [`TEXT_BASE`].
    pub text: Vec<u32>,
    /// Initialized data bytes, loaded at [`DATA_BASE`].
    pub data: Vec<u8>,
    /// Entry point virtual address (the `main` label if present, else
    /// [`TEXT_BASE`]).
    pub entry: u32,
    /// Label → virtual address.
    pub symbols: BTreeMap<String, u32>,
}

impl Program {
    /// Creates a program from raw segments.
    pub fn new(text: Vec<u32>, data: Vec<u8>, entry: u32) -> Self {
        Self {
            text,
            data,
            entry,
            symbols: BTreeMap::new(),
        }
    }

    /// Looks up a label address.
    pub fn symbol(&self, name: &str) -> Option<u32> {
        self.symbols.get(name).copied()
    }

    /// Size of the text segment in bytes.
    pub fn text_size(&self) -> u32 {
        (self.text.len() * 4) as u32
    }

    /// Size of the initialized data segment in bytes.
    pub fn data_size(&self) -> u32 {
        self.data.len() as u32
    }

    /// Overwrites `len` bytes of the data segment at `offset` from `bytes`,
    /// used by workload builders to splice in generated inputs at a label.
    ///
    /// # Panics
    ///
    /// Panics if the range is outside the data segment.
    pub fn patch_data(&mut self, offset: usize, bytes: &[u8]) {
        assert!(
            offset + bytes.len() <= self.data.len(),
            "data patch out of range: {}..{} > {}",
            offset,
            offset + bytes.len(),
            self.data.len()
        );
        self.data[offset..offset + bytes.len()].copy_from_slice(bytes);
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "program: {} instructions, {} data bytes, entry 0x{:08x}",
            self.text.len(),
            self.data.len(),
            self.entry
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn patch_data_replaces_range() {
        let mut p = Program::new(vec![], vec![0; 8], TEXT_BASE);
        p.patch_data(2, &[1, 2, 3]);
        assert_eq!(p.data, vec![0, 0, 1, 2, 3, 0, 0, 0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn patch_data_oob_panics() {
        let mut p = Program::new(vec![], vec![0; 4], TEXT_BASE);
        p.patch_data(2, &[1, 2, 3]);
    }

    #[test]
    fn segment_sizes() {
        let p = Program::new(vec![0, 0, 0], vec![1, 2], TEXT_BASE);
        assert_eq!(p.text_size(), 12);
        assert_eq!(p.data_size(), 2);
    }
}
