//! Instruction forms, binary encoding and decoding.
//!
//! Encoding layout (bit 31 is the most significant):
//!
//! | Format | \[31:24\] | \[23:20\] | \[19:16\] | \[15:12\] | \[15:0\] / \[23:0\] |
//! |--------|-----------|-----------|-----------|-----------|---------------------|
//! | R      | opcode    | rd        | rs        | rt        | bits \[11:0\] ignored |
//! | I      | opcode    | rd        | rs        | —         | imm16               |
//! | Branch | opcode    | rs        | rt        | —         | offset16 (signed, in instructions) |
//! | Store  | opcode    | rt (src)  | rs (base) | —         | offset16 (signed bytes) |
//! | J      | opcode    | target24 (word address) |||        |
//!
//! Unknown opcodes fail to decode ([`DecodeError::UndefinedOpcode`]); this is
//! the "illegal instruction" trap path taken when an instruction-cache bit
//! flip lands in the opcode field and produces an unassigned value.

use std::fmt;

/// An architectural register, `r0`–`r15`.
///
/// `r0` ("zero") is hardwired to zero: reads return 0 and writes are
/// discarded. By convention `r14` is the stack pointer (`sp`) and `r15` the
/// link register (`ra`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg(u8);

impl Reg {
    /// The hardwired-zero register `r0`.
    pub const ZERO: Reg = Reg(0);
    /// The stack pointer alias, `r14`.
    pub const SP: Reg = Reg(14);
    /// The link register alias, `r15`.
    pub const RA: Reg = Reg(15);

    /// Creates a register from its index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 16`.
    pub fn new(index: u8) -> Self {
        assert!(index < 16, "register index must be < 16");
        Reg(index)
    }

    /// The register index, 0–15.
    pub fn index(self) -> u8 {
        self.0
    }

    /// Whether this is the hardwired-zero register.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            0 => write!(f, "zero"),
            14 => write!(f, "sp"),
            15 => write!(f, "ra"),
            n => write!(f, "r{n}"),
        }
    }
}

/// Branch comparison condition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BranchCond {
    /// `rs == rt`
    Eq,
    /// `rs != rt`
    Ne,
    /// `rs < rt` (signed)
    Lt,
    /// `rs >= rt` (signed)
    Ge,
    /// `rs < rt` (unsigned)
    Ltu,
    /// `rs >= rt` (unsigned)
    Geu,
}

impl BranchCond {
    /// Evaluates the condition on two register values.
    pub fn eval(self, a: u32, b: u32) -> bool {
        match self {
            BranchCond::Eq => a == b,
            BranchCond::Ne => a != b,
            BranchCond::Lt => (a as i32) < (b as i32),
            BranchCond::Ge => (a as i32) >= (b as i32),
            BranchCond::Ltu => a < b,
            BranchCond::Geu => a >= b,
        }
    }
}

/// Width of a memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemWidth {
    /// One byte.
    Byte,
    /// Two bytes (halfword), address must be 2-aligned.
    Half,
    /// Four bytes (word), address must be 4-aligned.
    Word,
}

impl MemWidth {
    /// Access size in bytes.
    pub fn bytes(self) -> u32 {
        match self {
            MemWidth::Byte => 1,
            MemWidth::Half => 2,
            MemWidth::Word => 4,
        }
    }
}

/// Two-operand ALU operation kind (register-register form).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Low 32 bits of the product.
    Mul,
    /// High 32 bits of the unsigned 64-bit product.
    Mulhu,
    /// Signed division; division by zero traps.
    Div,
    /// Unsigned division; division by zero traps.
    Divu,
    /// Signed remainder; division by zero traps.
    Rem,
    /// Unsigned remainder; division by zero traps.
    Remu,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Bitwise NOR.
    Nor,
    /// Logical left shift by `rt & 31`.
    Sll,
    /// Logical right shift by `rt & 31`.
    Srl,
    /// Arithmetic right shift by `rt & 31`.
    Sra,
    /// Set-less-than, signed.
    Slt,
    /// Set-less-than, unsigned.
    Sltu,
}

impl AluOp {
    /// Applies the operation; `None` means an arithmetic trap (division by zero).
    pub fn apply(self, a: u32, b: u32) -> Option<u32> {
        Some(match self {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::Mul => a.wrapping_mul(b),
            AluOp::Mulhu => ((a as u64 * b as u64) >> 32) as u32,
            AluOp::Div => {
                if b == 0 {
                    return None;
                }
                (a as i32).wrapping_div(b as i32) as u32
            }
            AluOp::Divu => {
                if b == 0 {
                    return None;
                }
                a / b
            }
            AluOp::Rem => {
                if b == 0 {
                    return None;
                }
                (a as i32).wrapping_rem(b as i32) as u32
            }
            AluOp::Remu => {
                if b == 0 {
                    return None;
                }
                a % b
            }
            AluOp::And => a & b,
            AluOp::Or => a | b,
            AluOp::Xor => a ^ b,
            AluOp::Nor => !(a | b),
            AluOp::Sll => a.wrapping_shl(b & 31),
            AluOp::Srl => a.wrapping_shr(b & 31),
            AluOp::Sra => ((a as i32).wrapping_shr(b & 31)) as u32,
            AluOp::Slt => ((a as i32) < (b as i32)) as u32,
            AluOp::Sltu => (a < b) as u32,
        })
    }

    /// Execution latency in cycles on the modeled core.
    pub fn latency(self) -> u32 {
        match self {
            AluOp::Mul | AluOp::Mulhu => 3,
            AluOp::Div | AluOp::Divu | AluOp::Rem | AluOp::Remu => 12,
            _ => 1,
        }
    }
}

/// Immediate-operand ALU operation kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluImmOp {
    /// Add sign-extended immediate.
    Addi,
    /// AND zero-extended immediate.
    Andi,
    /// OR zero-extended immediate.
    Ori,
    /// XOR zero-extended immediate.
    Xori,
    /// Set-less-than sign-extended immediate, signed compare.
    Slti,
    /// Set-less-than sign-extended immediate, unsigned compare.
    Sltiu,
    /// Logical left shift by `imm & 31`.
    Slli,
    /// Logical right shift by `imm & 31`.
    Srli,
    /// Arithmetic right shift by `imm & 31`.
    Srai,
}

impl AluImmOp {
    /// Applies the operation to a register value and the raw 16-bit immediate.
    pub fn apply(self, a: u32, imm: u16) -> u32 {
        let sext = imm as i16 as i32 as u32;
        let zext = imm as u32;
        match self {
            AluImmOp::Addi => a.wrapping_add(sext),
            AluImmOp::Andi => a & zext,
            AluImmOp::Ori => a | zext,
            AluImmOp::Xori => a ^ zext,
            AluImmOp::Slti => ((a as i32) < (sext as i32)) as u32,
            AluImmOp::Sltiu => (a < sext) as u32,
            AluImmOp::Slli => a.wrapping_shl(zext & 31),
            AluImmOp::Srli => a.wrapping_shr(zext & 31),
            AluImmOp::Srai => ((a as i32).wrapping_shr(zext & 31)) as u32,
        }
    }
}

/// A decoded instruction.
///
/// The enum is the single source of truth for instruction semantics metadata:
/// [`Instruction::dest`], [`Instruction::sources`], and the classification
/// predicates drive the rename/issue logic of the out-of-order core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Instruction {
    /// No operation (the all-zero encoding).
    Nop,
    /// Register-register ALU operation: `rd = op(rs, rt)`.
    Alu {
        op: AluOp,
        rd: Reg,
        rs: Reg,
        rt: Reg,
    },
    /// Register-immediate ALU operation: `rd = op(rs, imm)`.
    AluImm {
        op: AluImmOp,
        rd: Reg,
        rs: Reg,
        imm: u16,
    },
    /// Load upper immediate: `rd = imm << 16`.
    Lui { rd: Reg, imm: u16 },
    /// Load: `rd = mem[rs + offset]` with optional sign extension.
    Load {
        width: MemWidth,
        signed: bool,
        rd: Reg,
        rs: Reg,
        offset: i16,
    },
    /// Store: `mem[rs + offset] = rt`.
    Store {
        width: MemWidth,
        rt: Reg,
        rs: Reg,
        offset: i16,
    },
    /// Conditional branch to `pc + 4 + offset*4`.
    Branch {
        cond: BranchCond,
        rs: Reg,
        rt: Reg,
        offset: i16,
    },
    /// Direct jump to word address `target` (byte address `target << 2`).
    J { target: u32 },
    /// Direct jump-and-link: `ra = pc + 4`, jump to `target << 2`.
    Jal { target: u32 },
    /// Indirect jump to the address in `rs`.
    Jr { rs: Reg },
    /// Indirect jump-and-link: `rd = pc + 4`, jump to address in `rs`.
    Jalr { rd: Reg, rs: Reg },
    /// System call; the system layer reads `r2` (number) and `r3` (argument).
    Syscall,
}

/// Error returned when a 32-bit word does not decode to a valid instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The opcode field holds an unassigned value.
    UndefinedOpcode(u8),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::UndefinedOpcode(op) => {
                write!(f, "undefined opcode 0x{op:02x}")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

mod opcodes {
    pub const NOP: u8 = 0x00;
    pub const J: u8 = 0x02;
    pub const JAL: u8 = 0x03;
    pub const BEQ: u8 = 0x04;
    pub const BNE: u8 = 0x05;
    pub const BLT: u8 = 0x06;
    pub const BGE: u8 = 0x07;
    pub const ADDI: u8 = 0x08;
    pub const SLTI: u8 = 0x0A;
    pub const SLTIU: u8 = 0x0B;
    pub const ANDI: u8 = 0x0C;
    pub const ORI: u8 = 0x0D;
    pub const XORI: u8 = 0x0E;
    pub const LUI: u8 = 0x0F;
    pub const SLL: u8 = 0x10;
    pub const SRL: u8 = 0x12;
    pub const SRA: u8 = 0x13;
    pub const MUL: u8 = 0x18;
    pub const MULHU: u8 = 0x19;
    pub const DIV: u8 = 0x1A;
    pub const DIVU: u8 = 0x1B;
    pub const REM: u8 = 0x1C;
    pub const REMU: u8 = 0x1D;
    pub const ADD: u8 = 0x20;
    pub const SUB: u8 = 0x22;
    pub const AND: u8 = 0x24;
    pub const OR: u8 = 0x25;
    pub const XOR: u8 = 0x26;
    pub const NOR: u8 = 0x27;
    pub const SLT: u8 = 0x2A;
    pub const SLTU: u8 = 0x2B;
    pub const BLTU: u8 = 0x44;
    pub const BGEU: u8 = 0x45;
    pub const JR: u8 = 0x48;
    pub const JALR: u8 = 0x49;
    pub const SLLI: u8 = 0x50;
    pub const SRLI: u8 = 0x52;
    pub const SRAI: u8 = 0x53;
    pub const LB: u8 = 0x80;
    pub const LH: u8 = 0x84;
    pub const LW: u8 = 0x8C;
    pub const LBU: u8 = 0x90;
    pub const LHU: u8 = 0x94;
    pub const SB: u8 = 0xA0;
    pub const SH: u8 = 0xA4;
    pub const SW: u8 = 0xAC;
    pub const SYSCALL: u8 = 0xFC;
}

fn r_type(op: u8, rd: Reg, rs: Reg, rt: Reg) -> u32 {
    ((op as u32) << 24)
        | ((rd.index() as u32) << 20)
        | ((rs.index() as u32) << 16)
        | ((rt.index() as u32) << 12)
}

fn i_type(op: u8, rd: Reg, rs: Reg, imm: u16) -> u32 {
    ((op as u32) << 24) | ((rd.index() as u32) << 20) | ((rs.index() as u32) << 16) | imm as u32
}

/// Encodes an instruction to its 32-bit binary form.
///
/// # Example
///
/// ```
/// use mbu_isa::{encode, decode, Instruction};
/// let word = encode(Instruction::Syscall);
/// assert_eq!(decode(word)?, Instruction::Syscall);
/// # Ok::<(), mbu_isa::DecodeError>(())
/// ```
pub fn encode(instr: Instruction) -> u32 {
    use opcodes::*;
    match instr {
        Instruction::Nop => 0,
        Instruction::Alu { op, rd, rs, rt } => {
            let opc = match op {
                AluOp::Add => ADD,
                AluOp::Sub => SUB,
                AluOp::Mul => MUL,
                AluOp::Mulhu => MULHU,
                AluOp::Div => DIV,
                AluOp::Divu => DIVU,
                AluOp::Rem => REM,
                AluOp::Remu => REMU,
                AluOp::And => AND,
                AluOp::Or => OR,
                AluOp::Xor => XOR,
                AluOp::Nor => NOR,
                AluOp::Sll => SLL,
                AluOp::Srl => SRL,
                AluOp::Sra => SRA,
                AluOp::Slt => SLT,
                AluOp::Sltu => SLTU,
            };
            r_type(opc, rd, rs, rt)
        }
        Instruction::AluImm { op, rd, rs, imm } => {
            let opc = match op {
                AluImmOp::Addi => ADDI,
                AluImmOp::Andi => ANDI,
                AluImmOp::Ori => ORI,
                AluImmOp::Xori => XORI,
                AluImmOp::Slti => SLTI,
                AluImmOp::Sltiu => SLTIU,
                AluImmOp::Slli => SLLI,
                AluImmOp::Srli => SRLI,
                AluImmOp::Srai => SRAI,
            };
            i_type(opc, rd, rs, imm)
        }
        Instruction::Lui { rd, imm } => i_type(LUI, rd, Reg::ZERO, imm),
        Instruction::Load {
            width,
            signed,
            rd,
            rs,
            offset,
        } => {
            let opc = match (width, signed) {
                (MemWidth::Byte, true) => LB,
                (MemWidth::Byte, false) => LBU,
                (MemWidth::Half, true) => LH,
                (MemWidth::Half, false) => LHU,
                (MemWidth::Word, _) => LW,
            };
            i_type(opc, rd, rs, offset as u16)
        }
        Instruction::Store {
            width,
            rt,
            rs,
            offset,
        } => {
            let opc = match width {
                MemWidth::Byte => SB,
                MemWidth::Half => SH,
                MemWidth::Word => SW,
            };
            i_type(opc, rt, rs, offset as u16)
        }
        Instruction::Branch {
            cond,
            rs,
            rt,
            offset,
        } => {
            let opc = match cond {
                BranchCond::Eq => BEQ,
                BranchCond::Ne => BNE,
                BranchCond::Lt => BLT,
                BranchCond::Ge => BGE,
                BranchCond::Ltu => BLTU,
                BranchCond::Geu => BGEU,
            };
            i_type(opc, rs, rt, offset as u16)
        }
        Instruction::J { target } => ((J as u32) << 24) | (target & 0x00FF_FFFF),
        Instruction::Jal { target } => ((JAL as u32) << 24) | (target & 0x00FF_FFFF),
        Instruction::Jr { rs } => r_type(JR, Reg::ZERO, rs, Reg::ZERO),
        Instruction::Jalr { rd, rs } => r_type(JALR, rd, rs, Reg::ZERO),
        Instruction::Syscall => (SYSCALL as u32) << 24,
    }
}

/// Decodes a 32-bit word into an instruction.
///
/// Bits that a format does not use are ignored, mirroring real ISAs where
/// "should-be-zero" fields are frequently not checked; this keeps the
/// silent-corruption path (a bit flip producing a *different valid*
/// instruction) realistically common.
///
/// # Errors
///
/// Returns [`DecodeError::UndefinedOpcode`] if the opcode byte holds an
/// unassigned value — the undefined-instruction trap path.
pub fn decode(word: u32) -> Result<Instruction, DecodeError> {
    use opcodes::*;
    let op = (word >> 24) as u8;
    let rd = Reg::new(((word >> 20) & 0xF) as u8);
    let rs = Reg::new(((word >> 16) & 0xF) as u8);
    let rt = Reg::new(((word >> 12) & 0xF) as u8);
    let imm = (word & 0xFFFF) as u16;

    let alu = |o: AluOp| Instruction::Alu { op: o, rd, rs, rt };
    let alui = |o: AluImmOp| Instruction::AluImm { op: o, rd, rs, imm };
    let load = |w: MemWidth, s: bool| Instruction::Load {
        width: w,
        signed: s,
        rd,
        rs,
        offset: imm as i16,
    };
    let store = |w: MemWidth| Instruction::Store {
        width: w,
        rt: rd,
        rs,
        offset: imm as i16,
    };
    let branch = |c: BranchCond| Instruction::Branch {
        cond: c,
        rs: rd,
        rt: rs,
        offset: imm as i16,
    };

    Ok(match op {
        NOP => Instruction::Nop,
        ADD => alu(AluOp::Add),
        SUB => alu(AluOp::Sub),
        MUL => alu(AluOp::Mul),
        MULHU => alu(AluOp::Mulhu),
        DIV => alu(AluOp::Div),
        DIVU => alu(AluOp::Divu),
        REM => alu(AluOp::Rem),
        REMU => alu(AluOp::Remu),
        AND => alu(AluOp::And),
        OR => alu(AluOp::Or),
        XOR => alu(AluOp::Xor),
        NOR => alu(AluOp::Nor),
        SLL => alu(AluOp::Sll),
        SRL => alu(AluOp::Srl),
        SRA => alu(AluOp::Sra),
        SLT => alu(AluOp::Slt),
        SLTU => alu(AluOp::Sltu),
        ADDI => alui(AluImmOp::Addi),
        ANDI => alui(AluImmOp::Andi),
        ORI => alui(AluImmOp::Ori),
        XORI => alui(AluImmOp::Xori),
        SLTI => alui(AluImmOp::Slti),
        SLTIU => alui(AluImmOp::Sltiu),
        SLLI => alui(AluImmOp::Slli),
        SRLI => alui(AluImmOp::Srli),
        SRAI => alui(AluImmOp::Srai),
        LUI => Instruction::Lui { rd, imm },
        LB => load(MemWidth::Byte, true),
        LBU => load(MemWidth::Byte, false),
        LH => load(MemWidth::Half, true),
        LHU => load(MemWidth::Half, false),
        LW => load(MemWidth::Word, true),
        SB => store(MemWidth::Byte),
        SH => store(MemWidth::Half),
        SW => store(MemWidth::Word),
        BEQ => branch(BranchCond::Eq),
        BNE => branch(BranchCond::Ne),
        BLT => branch(BranchCond::Lt),
        BGE => branch(BranchCond::Ge),
        BLTU => branch(BranchCond::Ltu),
        BGEU => branch(BranchCond::Geu),
        J => Instruction::J {
            target: word & 0x00FF_FFFF,
        },
        JAL => Instruction::Jal {
            target: word & 0x00FF_FFFF,
        },
        JR => Instruction::Jr { rs },
        JALR => Instruction::Jalr { rd, rs },
        SYSCALL => Instruction::Syscall,
        other => return Err(DecodeError::UndefinedOpcode(other)),
    })
}

impl Instruction {
    /// The destination register written by this instruction, if any.
    ///
    /// Writes to `r0` are reported as `None` (they are architecturally
    /// discarded).
    pub fn dest(&self) -> Option<Reg> {
        let rd = match *self {
            Instruction::Alu { rd, .. }
            | Instruction::AluImm { rd, .. }
            | Instruction::Lui { rd, .. }
            | Instruction::Load { rd, .. }
            | Instruction::Jalr { rd, .. } => rd,
            Instruction::Jal { .. } => Reg::RA,
            _ => return None,
        };
        if rd.is_zero() {
            None
        } else {
            Some(rd)
        }
    }

    /// The source registers read by this instruction (up to 3, deduplicated
    /// reads of `r0` are retained — `r0` is always ready).
    pub fn sources(&self) -> Vec<Reg> {
        match *self {
            Instruction::Alu { rs, rt, .. } => vec![rs, rt],
            Instruction::AluImm { rs, .. } => vec![rs],
            Instruction::Load { rs, .. } => vec![rs],
            Instruction::Store { rt, rs, .. } => vec![rs, rt],
            Instruction::Branch { rs, rt, .. } => vec![rs, rt],
            Instruction::Jr { rs } | Instruction::Jalr { rs, .. } => vec![rs],
            // The system layer reads r2/r3 architecturally at commit.
            Instruction::Syscall => vec![Reg::new(2), Reg::new(3)],
            _ => vec![],
        }
    }

    /// Whether the instruction redirects control flow.
    pub fn is_control(&self) -> bool {
        matches!(
            self,
            Instruction::Branch { .. }
                | Instruction::J { .. }
                | Instruction::Jal { .. }
                | Instruction::Jr { .. }
                | Instruction::Jalr { .. }
        )
    }

    /// Whether the control transfer target is known at decode time.
    pub fn is_direct_jump(&self) -> bool {
        matches!(self, Instruction::J { .. } | Instruction::Jal { .. })
    }

    /// Whether this is a memory load.
    pub fn is_load(&self) -> bool {
        matches!(self, Instruction::Load { .. })
    }

    /// Whether this is a memory store.
    pub fn is_store(&self) -> bool {
        matches!(self, Instruction::Store { .. })
    }

    /// Execution latency in cycles (memory latency excluded for loads/stores).
    pub fn latency(&self) -> u32 {
        match self {
            Instruction::Alu { op, .. } => op.latency(),
            _ => 1,
        }
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Instruction::Nop => write!(f, "nop"),
            Instruction::Alu { op, rd, rs, rt } => {
                write!(f, "{} {rd}, {rs}, {rt}", format!("{op:?}").to_lowercase())
            }
            Instruction::AluImm { op, rd, rs, imm } => {
                write!(
                    f,
                    "{} {rd}, {rs}, {}",
                    format!("{op:?}").to_lowercase(),
                    imm as i16
                )
            }
            Instruction::Lui { rd, imm } => write!(f, "lui {rd}, 0x{imm:x}"),
            Instruction::Load {
                width,
                signed,
                rd,
                rs,
                offset,
            } => {
                let m = match (width, signed) {
                    (MemWidth::Byte, true) => "lb",
                    (MemWidth::Byte, false) => "lbu",
                    (MemWidth::Half, true) => "lh",
                    (MemWidth::Half, false) => "lhu",
                    (MemWidth::Word, _) => "lw",
                };
                write!(f, "{m} {rd}, {offset}({rs})")
            }
            Instruction::Store {
                width,
                rt,
                rs,
                offset,
            } => {
                let m = match width {
                    MemWidth::Byte => "sb",
                    MemWidth::Half => "sh",
                    MemWidth::Word => "sw",
                };
                write!(f, "{m} {rt}, {offset}({rs})")
            }
            Instruction::Branch {
                cond,
                rs,
                rt,
                offset,
            } => {
                let m = match cond {
                    BranchCond::Eq => "beq",
                    BranchCond::Ne => "bne",
                    BranchCond::Lt => "blt",
                    BranchCond::Ge => "bge",
                    BranchCond::Ltu => "bltu",
                    BranchCond::Geu => "bgeu",
                };
                write!(f, "{m} {rs}, {rt}, {offset}")
            }
            Instruction::J { target } => write!(f, "j 0x{:x}", target << 2),
            Instruction::Jal { target } => write!(f, "jal 0x{:x}", target << 2),
            Instruction::Jr { rs } => write!(f, "jr {rs}"),
            Instruction::Jalr { rd, rs } => write!(f, "jalr {rd}, {rs}"),
            Instruction::Syscall => write!(f, "syscall"),
        }
    }
}

pub use self::{AluImmOp as ImmOp, AluOp as RegOp};

#[cfg(test)]
mod tests {
    use super::*;

    fn all_sample_instructions() -> Vec<Instruction> {
        let r1 = Reg::new(1);
        let r2 = Reg::new(2);
        let r3 = Reg::new(3);
        let mut v = vec![
            Instruction::Nop,
            Instruction::Lui {
                rd: r1,
                imm: 0xBEEF,
            },
            Instruction::Load {
                width: MemWidth::Word,
                signed: true,
                rd: r1,
                rs: r2,
                offset: -8,
            },
            Instruction::Load {
                width: MemWidth::Byte,
                signed: false,
                rd: r1,
                rs: r2,
                offset: 127,
            },
            Instruction::Load {
                width: MemWidth::Half,
                signed: true,
                rd: r3,
                rs: r2,
                offset: 2,
            },
            Instruction::Store {
                width: MemWidth::Word,
                rt: r3,
                rs: r2,
                offset: 4,
            },
            Instruction::Store {
                width: MemWidth::Byte,
                rt: r3,
                rs: r2,
                offset: -1,
            },
            Instruction::Store {
                width: MemWidth::Half,
                rt: r3,
                rs: r2,
                offset: 6,
            },
            Instruction::J { target: 0x123456 },
            Instruction::Jal { target: 0x1 },
            Instruction::Jr { rs: r2 },
            Instruction::Jalr { rd: r1, rs: r2 },
            Instruction::Syscall,
        ];
        for op in [
            AluOp::Add,
            AluOp::Sub,
            AluOp::Mul,
            AluOp::Mulhu,
            AluOp::Div,
            AluOp::Divu,
            AluOp::Rem,
            AluOp::Remu,
            AluOp::And,
            AluOp::Or,
            AluOp::Xor,
            AluOp::Nor,
            AluOp::Sll,
            AluOp::Srl,
            AluOp::Sra,
            AluOp::Slt,
            AluOp::Sltu,
        ] {
            v.push(Instruction::Alu {
                op,
                rd: r1,
                rs: r2,
                rt: r3,
            });
        }
        for op in [
            AluImmOp::Addi,
            AluImmOp::Andi,
            AluImmOp::Ori,
            AluImmOp::Xori,
            AluImmOp::Slti,
            AluImmOp::Sltiu,
            AluImmOp::Slli,
            AluImmOp::Srli,
            AluImmOp::Srai,
        ] {
            v.push(Instruction::AluImm {
                op,
                rd: r1,
                rs: r2,
                imm: 0x7FFF,
            });
        }
        for cond in [
            BranchCond::Eq,
            BranchCond::Ne,
            BranchCond::Lt,
            BranchCond::Ge,
            BranchCond::Ltu,
            BranchCond::Geu,
        ] {
            v.push(Instruction::Branch {
                cond,
                rs: r1,
                rt: r2,
                offset: -4,
            });
        }
        v
    }

    #[test]
    fn encode_decode_roundtrip() {
        for instr in all_sample_instructions() {
            let word = encode(instr);
            assert_eq!(decode(word), Ok(instr), "roundtrip failed for {instr}");
        }
    }

    #[test]
    fn all_zero_word_is_nop() {
        assert_eq!(decode(0), Ok(Instruction::Nop));
    }

    #[test]
    fn undefined_opcode_errors() {
        // 0xFF is unassigned.
        assert_eq!(decode(0xFF00_0000), Err(DecodeError::UndefinedOpcode(0xFF)));
    }

    #[test]
    fn division_by_zero_traps() {
        assert_eq!(AluOp::Div.apply(5, 0), None);
        assert_eq!(AluOp::Divu.apply(5, 0), None);
        assert_eq!(AluOp::Rem.apply(5, 0), None);
        assert_eq!(AluOp::Remu.apply(5, 0), None);
    }

    #[test]
    fn signed_division_semantics() {
        assert_eq!(AluOp::Div.apply((-7i32) as u32, 2), Some((-3i32) as u32));
        assert_eq!(AluOp::Rem.apply((-7i32) as u32, 2), Some((-1i32) as u32));
        assert_eq!(AluOp::Sra.apply(0x8000_0000, 31), Some(0xFFFF_FFFF));
    }

    #[test]
    fn dest_hides_writes_to_zero() {
        let i = Instruction::AluImm {
            op: AluImmOp::Addi,
            rd: Reg::ZERO,
            rs: Reg::new(1),
            imm: 1,
        };
        assert_eq!(i.dest(), None);
        assert_eq!(Instruction::Jal { target: 0 }.dest(), Some(Reg::RA));
    }

    #[test]
    fn branch_cond_eval() {
        assert!(BranchCond::Lt.eval((-1i32) as u32, 0));
        assert!(!BranchCond::Ltu.eval((-1i32) as u32, 0));
        assert!(BranchCond::Geu.eval((-1i32) as u32, 0));
        assert!(BranchCond::Eq.eval(7, 7));
        assert!(BranchCond::Ne.eval(7, 8));
        assert!(BranchCond::Ge.eval(0, 0));
    }

    #[test]
    fn store_decode_maps_fields() {
        // sw r3, 4(r2): value register in rd slot, base in rs slot.
        let w = encode(Instruction::Store {
            width: MemWidth::Word,
            rt: Reg::new(3),
            rs: Reg::new(2),
            offset: 4,
        });
        match decode(w).unwrap() {
            Instruction::Store { rt, rs, offset, .. } => {
                assert_eq!(rt, Reg::new(3));
                assert_eq!(rs, Reg::new(2));
                assert_eq!(offset, 4);
            }
            other => panic!("expected store, got {other}"),
        }
    }
}

/// Disassembles a sequence of encoded words, one instruction per line, with
/// addresses starting at `base`. Undecodable words render as `.word`.
///
/// # Example
///
/// ```
/// use mbu_isa::{encode, Instruction};
/// let text = [encode(Instruction::Syscall), 0xFF00_0000];
/// let asm = mbu_isa::instr::disassemble(&text, 0x0040_0000);
/// assert!(asm.contains("syscall"));
/// assert!(asm.contains(".word 0xff000000"));
/// ```
pub fn disassemble(words: &[u32], base: u32) -> String {
    let mut out = String::new();
    for (i, &w) in words.iter().enumerate() {
        let addr = base + (i as u32) * 4;
        match decode(w) {
            Ok(instr) => out.push_str(&format!("{addr:08x}:  {instr}\n")),
            Err(_) => out.push_str(&format!("{addr:08x}:  .word 0x{w:08x}\n")),
        }
    }
    out
}

#[cfg(test)]
mod disasm_tests {
    use super::*;

    #[test]
    fn disassembles_mixed_stream() {
        let words = [
            encode(Instruction::AluImm {
                op: AluImmOp::Addi,
                rd: Reg::new(1),
                rs: Reg::ZERO,
                imm: 5,
            }),
            encode(Instruction::Jal { target: 0x100 }),
            0xDEAD_BEEF,
        ];
        let s = disassemble(&words, 0x400000);
        assert_eq!(s.lines().count(), 3);
        assert!(s.contains("addi r1, zero, 5"));
        assert!(s.contains("jal 0x400"));
        assert!(s.contains(".word 0xdeadbeef"));
        assert!(s.starts_with("00400000:"));
    }
}
