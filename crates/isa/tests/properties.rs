//! Property-based tests for the ISA: encoding is a bijection on valid
//! instructions, decoding is total (never panics), and the interpreter
//! respects architectural invariants on arbitrary straight-line programs.

use mbu_isa::instr::{AluImmOp, AluOp, BranchCond, Instruction, MemWidth, Reg};
use mbu_isa::interp::{ArchInterpreter, StopReason};
use mbu_isa::{decode, encode, Program, DATA_BASE, TEXT_BASE};
use proptest::prelude::*;

fn reg_strategy() -> impl Strategy<Value = Reg> {
    (0u8..16).prop_map(Reg::new)
}

fn alu_op() -> impl Strategy<Value = AluOp> {
    prop_oneof![
        Just(AluOp::Add),
        Just(AluOp::Sub),
        Just(AluOp::Mul),
        Just(AluOp::Mulhu),
        Just(AluOp::Div),
        Just(AluOp::Divu),
        Just(AluOp::Rem),
        Just(AluOp::Remu),
        Just(AluOp::And),
        Just(AluOp::Or),
        Just(AluOp::Xor),
        Just(AluOp::Nor),
        Just(AluOp::Sll),
        Just(AluOp::Srl),
        Just(AluOp::Sra),
        Just(AluOp::Slt),
        Just(AluOp::Sltu),
    ]
}

fn alu_imm_op() -> impl Strategy<Value = AluImmOp> {
    prop_oneof![
        Just(AluImmOp::Addi),
        Just(AluImmOp::Andi),
        Just(AluImmOp::Ori),
        Just(AluImmOp::Xori),
        Just(AluImmOp::Slti),
        Just(AluImmOp::Sltiu),
        Just(AluImmOp::Slli),
        Just(AluImmOp::Srli),
        Just(AluImmOp::Srai),
    ]
}

fn mem_width() -> impl Strategy<Value = MemWidth> {
    prop_oneof![
        Just(MemWidth::Byte),
        Just(MemWidth::Half),
        Just(MemWidth::Word)
    ]
}

fn branch_cond() -> impl Strategy<Value = BranchCond> {
    prop_oneof![
        Just(BranchCond::Eq),
        Just(BranchCond::Ne),
        Just(BranchCond::Lt),
        Just(BranchCond::Ge),
        Just(BranchCond::Ltu),
        Just(BranchCond::Geu),
    ]
}

fn instruction_strategy() -> impl Strategy<Value = Instruction> {
    prop_oneof![
        Just(Instruction::Nop),
        Just(Instruction::Syscall),
        (alu_op(), reg_strategy(), reg_strategy(), reg_strategy())
            .prop_map(|(op, rd, rs, rt)| Instruction::Alu { op, rd, rs, rt }),
        (alu_imm_op(), reg_strategy(), reg_strategy(), any::<u16>())
            .prop_map(|(op, rd, rs, imm)| Instruction::AluImm { op, rd, rs, imm }),
        (reg_strategy(), any::<u16>()).prop_map(|(rd, imm)| Instruction::Lui { rd, imm }),
        (
            mem_width(),
            any::<bool>(),
            reg_strategy(),
            reg_strategy(),
            any::<i16>()
        )
            .prop_map(|(width, signed, rd, rs, offset)| {
                // LW ignores the signed flag in the encoding.
                let signed = if width == MemWidth::Word {
                    true
                } else {
                    signed
                };
                Instruction::Load {
                    width,
                    signed,
                    rd,
                    rs,
                    offset,
                }
            }),
        (mem_width(), reg_strategy(), reg_strategy(), any::<i16>()).prop_map(
            |(width, rt, rs, offset)| Instruction::Store {
                width,
                rt,
                rs,
                offset
            }
        ),
        (branch_cond(), reg_strategy(), reg_strategy(), any::<i16>()).prop_map(
            |(cond, rs, rt, offset)| Instruction::Branch {
                cond,
                rs,
                rt,
                offset
            }
        ),
        (0u32..0x0100_0000).prop_map(|target| Instruction::J { target }),
        (0u32..0x0100_0000).prop_map(|target| Instruction::Jal { target }),
        reg_strategy().prop_map(|rs| Instruction::Jr { rs }),
        (reg_strategy(), reg_strategy()).prop_map(|(rd, rs)| Instruction::Jalr { rd, rs }),
    ]
}

proptest! {
    /// decode ∘ encode = identity on all valid instructions.
    #[test]
    fn encode_decode_roundtrip(instr in instruction_strategy()) {
        prop_assert_eq!(decode(encode(instr)), Ok(instr));
    }

    /// The decoder is total: any 32-bit word either decodes or returns a
    /// clean error — it never panics. Successfully decoded words re-encode
    /// to a word that decodes identically (canonicalization is stable).
    #[test]
    fn decode_never_panics_and_reencode_is_stable(word in any::<u32>()) {
        if let Ok(instr) = decode(word) {
            let canon = encode(instr);
            prop_assert_eq!(decode(canon), Ok(instr));
        }
    }

    /// Arbitrary straight-line ALU programs never fault, and r0 stays zero.
    #[test]
    fn straight_line_alu_programs_run_clean(
        ops in proptest::collection::vec(
            (alu_imm_op(), 1u8..16, 1u8..16, any::<u16>()), 1..40
        )
    ) {
        let mut text: Vec<u32> = ops
            .iter()
            .map(|&(op, rd, rs, imm)| {
                encode(Instruction::AluImm { op, rd: Reg::new(rd), rs: Reg::new(rs), imm })
            })
            .collect();
        // exit(0): r2 = 0, r3 = 0, syscall.
        text.push(encode(Instruction::AluImm { op: AluImmOp::Andi, rd: Reg::new(2), rs: Reg::ZERO, imm: 0 }));
        text.push(encode(Instruction::AluImm { op: AluImmOp::Andi, rd: Reg::new(3), rs: Reg::ZERO, imm: 0 }));
        text.push(encode(Instruction::Syscall));
        let program = Program::new(text, vec![], TEXT_BASE);
        let run = ArchInterpreter::new(&program).run(10_000).expect("ALU ops cannot fault");
        prop_assert_eq!(run.stop, StopReason::Exited { code: 0 });
    }

    /// Memory round-trips through the interpreter: storing then loading any
    /// word at any aligned data address returns the stored value.
    #[test]
    fn interpreter_memory_roundtrip(value in any::<u32>(), slot in 0u32..4096) {
        let addr = DATA_BASE + slot * 4;
        let program = Program::new(vec![encode(Instruction::Nop)], vec![], TEXT_BASE);
        let mut interp = ArchInterpreter::new(&program);
        interp.memory_mut().map_range(addr, 4);
        prop_assert!(interp.memory_mut().write_le(addr, 4, value));
        prop_assert_eq!(interp.memory().read_le(addr, 4), Some(value));
    }

    /// `AluOp::apply` matches the host semantics for the easy cases.
    #[test]
    fn alu_semantics_match_host(a in any::<u32>(), b in any::<u32>()) {
        prop_assert_eq!(AluOp::Add.apply(a, b), Some(a.wrapping_add(b)));
        prop_assert_eq!(AluOp::Xor.apply(a, b), Some(a ^ b));
        prop_assert_eq!(AluOp::Sltu.apply(a, b), Some((a < b) as u32));
        prop_assert_eq!(AluOp::Sll.apply(a, b), Some(a.wrapping_shl(b & 31)));
        if b != 0 {
            prop_assert_eq!(AluOp::Divu.apply(a, b), Some(a / b));
            prop_assert_eq!(AluOp::Remu.apply(a, b), Some(a % b));
        } else {
            prop_assert_eq!(AluOp::Divu.apply(a, b), None);
        }
    }
}
