//! Property tests: for *arbitrary* probe event streams the compiled
//! partition is exact — disjoint, total, weights reconciling to the
//! population — and class lookup / representative picking are coherent.

use mbu_ace::{FieldMap, ResidencyRecorder};
use mbu_equiv::Partition;
use mbu_sram::LivenessProbe;
use proptest::prelude::*;

const ROWS: usize = 3;
const COLS: usize = 12;
const CYCLES: u64 = 64;

/// (cycle, op, row, col, width): op 0 = write, 1 = read, 2 = invalidate.
/// Cycles up to `CYCLES + 8` deliberately exercise the past-run-end clamp;
/// rows/cols/widths overflow the geometry to exercise range guards.
fn event_strategy() -> impl Strategy<Value = Vec<(u64, u8, usize, usize, usize)>> {
    proptest::collection::vec(
        (
            0..(CYCLES + 8),
            0..3u8,
            0..(ROWS + 1),
            0..COLS,
            1..(COLS + 2),
        ),
        0..40,
    )
}

fn build(events: &[(u64, u8, usize, usize, usize)]) -> Partition {
    let mut rec =
        ResidencyRecorder::with_segments(ROWS, FieldMap::Ranges(vec![0..5, 5..11, 11..12]));
    // Feed in cycle order, as a monotonic simulator would.
    let mut sorted = events.to_vec();
    sorted.sort_by_key(|e| e.0);
    for &(cycle, op, row, col, width) in &sorted {
        match op {
            0 => rec.on_write(cycle, row, col, width),
            1 => rec.on_read(cycle, row, col, width),
            _ => rec.on_invalidate(cycle, row, col, width),
        }
    }
    Partition::from_residency(&rec.finish(CYCLES)).expect("segments recorded, cycles > 0")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn partition_is_disjoint_and_total(events in event_strategy()) {
        let p = build(&events);
        let cov = p.coverage();
        prop_assert_eq!(cov.holes, 0);
        prop_assert_eq!(cov.overlaps, 0);
        prop_assert!(cov.exact());
        prop_assert_eq!(cov.population, (ROWS * COLS) as u64 * CYCLES);
        prop_assert_eq!(cov.live_weight + cov.dead_weight, cov.population);
        prop_assert_eq!(cov.classes, p.class_count());
    }

    #[test]
    fn every_fault_site_maps_to_exactly_one_class(events in event_strategy()) {
        let p = build(&events);
        // Per-bit weights must sum to the run length, and each probed
        // (bit, cycle) must land inside the class that claims it.
        for row in 0..ROWS {
            for col in 0..COLS {
                let mut covered = 0u64;
                let mut cycle = 0u64;
                while cycle < CYCLES {
                    let c = p.class_of(row, col, cycle).expect("total partition");
                    prop_assert!(c.start <= cycle && cycle <= c.end);
                    prop_assert_eq!((c.row, c.col), (row, col));
                    covered += c.weight();
                    cycle = c.end + 1; // classes tile the timeline exactly
                }
                prop_assert_eq!(covered, CYCLES);
            }
        }
    }

    #[test]
    fn class_ids_roundtrip_and_representatives_are_members(
        events in event_strategy(),
        seed in any::<u64>(),
    ) {
        let p = build(&events);
        for c in p.classes() {
            prop_assert_eq!(p.class(c.id), Some(c));
            let rep = c.representative(seed);
            prop_assert!(rep >= c.start && rep <= c.end);
            prop_assert_eq!(p.class_of(c.row, c.col, rep).map(|k| k.id), Some(c.id));
        }
    }

    #[test]
    fn boundary_members_share_their_class_outcome_kind(events in event_strategy()) {
        // The flip at the exact terminating-event cycle belongs to the
        // segment that event closes (observed-by-first-event-at-or-after
        // convention): the first and last member of every class agree on
        // kind, and adjacent classes of one bit never merge silently.
        let p = build(&events);
        for c in p.classes() {
            let first = p.class_of(c.row, c.col, c.start).unwrap();
            let last = p.class_of(c.row, c.col, c.end).unwrap();
            prop_assert_eq!(first.id, c.id);
            prop_assert_eq!(last.id, c.id);
            prop_assert_eq!(first.kind, last.kind);
            if c.end + 1 < CYCLES {
                let next = p.class_of(c.row, c.col, c.end + 1).unwrap();
                prop_assert_eq!(next.start, c.end + 1, "no gap between classes");
                prop_assert!(next.id != c.id);
            }
        }
    }

    #[test]
    fn live_index_is_consistent_with_coverage(events in event_strategy()) {
        let p = build(&events);
        let cov = p.coverage();
        let idx = p.live_index();
        prop_assert_eq!(idx.len() as u64, cov.live_classes);
        prop_assert_eq!(idx.total_weight(), cov.live_weight);
        if idx.total_weight() > 0 {
            // Every sampled ticket resolves to a live class containing it.
            for ticket in [0, idx.total_weight() / 2, idx.total_weight() - 1] {
                let id = idx.pick(ticket).expect("in-range ticket");
                let c = p.class(id).expect("valid id");
                prop_assert!(!c.kind.is_dead());
            }
            prop_assert_eq!(idx.pick(idx.total_weight()), None);
        }
    }
}
