//! Fault-equivalence partition of the (bit, cycle) injection space.
//!
//! A single-bit fault campaign samples from the population `bits ×
//! fault-free-cycles`. Most of those faults are provably equivalent: two
//! flips of the same bit whose injection cycles fall between the same pair
//! of consecutive access events share one outcome — the flipped bit is not
//! consulted until the next event, so both runs reach that event in
//! bit-identical states and stay identical from there (the pre-injection
//! prefix is golden either way). This crate turns the per-field
//! access-event boundaries captured by `mbu-ace`
//! ([`StructureResidency::slot_events`]) into an **exact partition** of the
//! fault space:
//!
//! * every (bit, cycle) pair belongs to exactly one [`FaultClass`];
//! * each class carries its *weight* (member count in cycles) and a
//!   [`ClassKind`] saying whether the class is provably `Masked` without
//!   simulation (dead tail / terminated by a full overwrite) or needs one
//!   representative run;
//! * [`Partition::coverage`] proves the partition is disjoint and total
//!   (no holes, no overlaps, weights sum to the population).
//!
//! Consumers: the exhaustive campaign mode in `mbu-gefin` simulates one
//! representative per live class and weight-multiplies the outcome
//! (provable 100% coverage, margin 0), and the class-weighted stratified
//! sampler draws proportionally to live-interval mass via [`LiveIndex`].

#![forbid(unsafe_code)]

use mbu_ace::{SegmentEvent, SegmentKind, StructureResidency};
use mbu_sram::BitCoord;
use std::fmt;
use std::ops::Range;

/// Why a partition could not be built.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PartitionError {
    /// The residency was captured without segment boundaries
    /// (use `ResidencyRecorder::with_segments` /
    /// `LivenessOracle::build_with_segments`).
    NoSegments,
    /// The recorded run spans zero cycles — the fault space is empty.
    ZeroCycles,
}

impl fmt::Display for PartitionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PartitionError::NoSegments => {
                write!(f, "residency captured without segment boundaries")
            }
            PartitionError::ZeroCycles => write!(f, "zero-cycle run has no fault space"),
        }
    }
}

impl std::error::Error for PartitionError {}

/// How a class's outcome is known.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ClassKind {
    /// No event ever touches the field after the segment starts: the flip
    /// is never observed — provably `Masked`, no simulation needed.
    DeadTail,
    /// The segment is terminated by a full overwrite: the flip is erased
    /// before any observation — provably `Masked`, no simulation needed.
    DeadOverwritten,
    /// The segment is terminated by an observation (read or partial
    /// write): one representative must be simulated.
    LiveObserved,
    /// The segment is terminated by an invalidation barrier: the bits may
    /// interact with unprobed metadata, so one representative must be
    /// simulated (never pruned).
    LiveBarrier,
}

impl ClassKind {
    /// Whether the class is provably `Masked` without simulation.
    pub fn is_dead(self) -> bool {
        matches!(self, ClassKind::DeadTail | ClassKind::DeadOverwritten)
    }
}

/// One cycle segment of a field slot's timeline (shared by all bits of the
/// field; each bit of the field gets its own [`FaultClass`] over it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Segment {
    /// First member cycle (inclusive).
    start: u64,
    /// Last member cycle (inclusive). An injection at exactly the
    /// terminating event's cycle is observed by that event (the flip at
    /// cycle `c` is seen by the first event at cycle `>= c`).
    end: u64,
    kind: ClassKind,
}

/// Per-slot compiled segment list.
#[derive(Debug, Clone)]
struct SlotPartition {
    row: usize,
    /// Logical bit columns of the field.
    field: Range<usize>,
    segments: Vec<Segment>,
}

/// One equivalence class: a single logical bit over a cycle segment.
///
/// Every member (bit, cycle) with `cycle ∈ [start, end]` provably shares
/// one outcome — effect classification *and* run-length — so simulating
/// any one member decides the whole class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultClass {
    /// Dense id, `0 .. partition.class_count()`.
    pub id: u64,
    /// Logical row of the bit.
    pub row: usize,
    /// Logical bit column.
    pub col: usize,
    /// First member cycle (inclusive).
    pub start: u64,
    /// Last member cycle (inclusive).
    pub end: u64,
    /// How the class's outcome is known.
    pub kind: ClassKind,
}

impl FaultClass {
    /// Member count of the class, in cycles.
    pub fn weight(&self) -> u64 {
        self.end - self.start + 1
    }

    /// Deterministic representative injection cycle. `seed == 0` picks the
    /// segment midpoint; any other seed picks a seed-and-id-derived member.
    /// Either way the choice is a class member, and by class invariance
    /// every member yields the identical outcome — differential tests vary
    /// the seed to prove exactly that.
    pub fn representative(&self, seed: u64) -> u64 {
        let w = self.weight();
        let offset = if seed == 0 {
            w / 2
        } else {
            mix(seed, self.id) % w
        };
        self.start + offset
    }
}

/// splitmix64-style finalizer over (seed, class id); only used to spread
/// representative picks across a class, never for statistics.
fn mix(seed: u64, id: u64) -> u64 {
    let mut z = seed ^ id.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Proof that the partition is exact: disjoint (no overlaps) and total
/// (no holes), with class weights reconciling against the population.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoverageReport {
    /// Fault-free cycles of the captured run.
    pub total_cycles: u64,
    /// Bits of the structure (`rows × cols`).
    pub total_bits: u64,
    /// Fault population `total_bits × total_cycles` (saturating).
    pub population: u64,
    /// Total classes in the partition.
    pub classes: u64,
    /// Classes requiring simulation ([`ClassKind::is_dead`] is false).
    pub live_classes: u64,
    /// Provably-`Masked` classes.
    pub dead_classes: u64,
    /// Summed weight of live classes.
    pub live_weight: u64,
    /// Summed weight of dead classes.
    pub dead_weight: u64,
    /// Cycles covered by no class (must be 0 for an exact partition).
    pub holes: u64,
    /// Cycles covered by more than one class (must be 0).
    pub overlaps: u64,
}

impl CoverageReport {
    /// Whether the partition provably covers 100% of the fault space:
    /// no holes, no overlaps, and weights summing to the population.
    pub fn exact(&self) -> bool {
        self.holes == 0
            && self.overlaps == 0
            && self.live_weight.saturating_add(self.dead_weight) == self.population
    }

    /// Fraction of the population in live (must-simulate) classes.
    pub fn live_fraction(&self) -> f64 {
        if self.population == 0 {
            return 0.0;
        }
        self.live_weight as f64 / self.population as f64
    }
}

/// Exact equivalence partition of one structure's (bit, cycle) fault
/// space, in the structure's *logical* geometry (see [`physical_coord`]
/// for the injector-facing physical mapping).
#[derive(Debug, Clone)]
pub struct Partition {
    total_cycles: u64,
    rows: usize,
    cols: usize,
    fields_per_row: usize,
    slots: Vec<SlotPartition>,
    /// `class_base[s]` = first class id of slot `s`; one extra entry
    /// holding the total class count. Within a slot, ids are bit-major:
    /// `base + bit_offset × segments + segment_index`.
    class_base: Vec<u64>,
}

impl Partition {
    /// Compiles the partition from a residency captured with segment
    /// boundaries.
    ///
    /// # Errors
    ///
    /// [`PartitionError::NoSegments`] when the residency has no recorded
    /// boundaries; [`PartitionError::ZeroCycles`] when the run is empty.
    pub fn from_residency(res: &StructureResidency) -> Result<Self, PartitionError> {
        if !res.has_segments() {
            return Err(PartitionError::NoSegments);
        }
        let total_cycles = res.total_cycles();
        if total_cycles == 0 {
            return Err(PartitionError::ZeroCycles);
        }
        let map = res.field_map();
        let fields_per_row = map.fields_per_row();
        let mut slots = Vec::with_capacity(res.slot_count());
        let mut class_base = Vec::with_capacity(res.slot_count() + 1);
        let mut next_id = 0u64;
        for slot in 0..res.slot_count() {
            let row = slot / fields_per_row;
            let field = map.field_range(slot % fields_per_row);
            let events = res.slot_events(slot).expect("has_segments checked");
            let segments = compile_segments(events, total_cycles);
            class_base.push(next_id);
            next_id += segments.len() as u64 * field.len() as u64;
            slots.push(SlotPartition {
                row,
                field,
                segments,
            });
        }
        class_base.push(next_id);
        Ok(Self {
            total_cycles,
            rows: res.rows(),
            cols: res.cols(),
            fields_per_row,
            slots,
            class_base,
        })
    }

    /// Fault-free cycles of the captured run.
    pub fn total_cycles(&self) -> u64 {
        self.total_cycles
    }

    /// Logical rows of the structure.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Logical bit columns per row.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total classes in the partition.
    pub fn class_count(&self) -> u64 {
        *self.class_base.last().unwrap_or(&0)
    }

    /// The class with dense id `id`, or `None` past the end.
    pub fn class(&self, id: u64) -> Option<FaultClass> {
        if id >= self.class_count() {
            return None;
        }
        // Last slot whose base is <= id.
        let slot_idx = self.class_base.partition_point(|&b| b <= id) - 1;
        let slot = &self.slots[slot_idx];
        let local = id - self.class_base[slot_idx];
        let nsegs = slot.segments.len() as u64;
        let bit = (local / nsegs) as usize;
        let seg = slot.segments[(local % nsegs) as usize];
        Some(FaultClass {
            id,
            row: slot.row,
            col: slot.field.start + bit,
            start: seg.start,
            end: seg.end,
            kind: seg.kind,
        })
    }

    /// The unique class containing logical (row, col) at `cycle`, or
    /// `None` for out-of-range coordinates or cycles.
    pub fn class_of(&self, row: usize, col: usize, cycle: u64) -> Option<FaultClass> {
        if row >= self.rows || col >= self.cols || cycle >= self.total_cycles {
            return None;
        }
        let (slot_idx, bit) = self.locate(row, col)?;
        let slot = &self.slots[slot_idx];
        // Last segment starting at or before `cycle`; totality guarantees
        // it contains `cycle`.
        let seg_idx = slot.segments.partition_point(|s| s.start <= cycle) - 1;
        let seg = slot.segments[seg_idx];
        debug_assert!(seg.start <= cycle && cycle <= seg.end);
        let nsegs = slot.segments.len() as u64;
        let id = self.class_base[slot_idx] + bit as u64 * nsegs + seg_idx as u64;
        Some(FaultClass {
            id,
            row,
            col,
            start: seg.start,
            end: seg.end,
            kind: seg.kind,
        })
    }

    fn locate(&self, row: usize, col: usize) -> Option<(usize, usize)> {
        let base = row * self.fields_per_row;
        // Fields within a row are ordered by bit range; scan the row's few
        // fields for the one containing `col`.
        for (i, slot) in self.slots[base..base + self.fields_per_row]
            .iter()
            .enumerate()
        {
            if slot.field.contains(&col) {
                return Some((base + i, col - slot.field.start));
            }
        }
        None
    }

    /// Iterates every class in dense-id order.
    pub fn classes(&self) -> impl Iterator<Item = FaultClass> + '_ {
        self.slots.iter().enumerate().flat_map(move |(s, slot)| {
            let base = self.class_base[s];
            let nsegs = slot.segments.len() as u64;
            (0..slot.field.len()).flat_map(move |bit| {
                slot.segments
                    .iter()
                    .enumerate()
                    .map(move |(j, seg)| FaultClass {
                        id: base + bit as u64 * nsegs + j as u64,
                        row: slot.row,
                        col: slot.field.start + bit,
                        start: seg.start,
                        end: seg.end,
                        kind: seg.kind,
                    })
            })
        })
    }

    /// Iterates only the classes requiring simulation.
    pub fn live_classes(&self) -> impl Iterator<Item = FaultClass> + '_ {
        self.classes().filter(|c| !c.kind.is_dead())
    }

    /// Walks every slot's segment list and tallies the exactness proof.
    pub fn coverage(&self) -> CoverageReport {
        let total_bits = (self.rows * self.cols) as u64;
        let population = total_bits.saturating_mul(self.total_cycles);
        let mut live_classes = 0u64;
        let mut dead_classes = 0u64;
        let mut live_weight = 0u64;
        let mut dead_weight = 0u64;
        let mut holes = 0u64;
        let mut overlaps = 0u64;
        for slot in &self.slots {
            let bits = slot.field.len() as u64;
            let mut expect = 0u64; // next uncovered cycle
            for seg in &slot.segments {
                if seg.start > expect {
                    holes += (seg.start - expect) * bits;
                } else if seg.start < expect {
                    overlaps += (expect - seg.start) * bits;
                }
                let w = seg.end - seg.start + 1;
                if seg.kind.is_dead() {
                    dead_classes += bits;
                    dead_weight += w * bits;
                } else {
                    live_classes += bits;
                    live_weight += w * bits;
                }
                expect = seg.end + 1;
            }
            if expect < self.total_cycles {
                holes += (self.total_cycles - expect) * bits;
            }
        }
        CoverageReport {
            total_cycles: self.total_cycles,
            total_bits,
            population,
            classes: live_classes + dead_classes,
            live_classes,
            dead_classes,
            live_weight,
            dead_weight,
            holes,
            overlaps,
        }
    }

    /// Builds the live-mass prefix-sum index for weight-proportional
    /// class selection (the stratified sampler's draw table).
    pub fn live_index(&self) -> LiveIndex {
        let mut ids = Vec::new();
        let mut cum = Vec::new();
        let mut total = 0u64;
        for c in self.live_classes() {
            total += c.weight();
            ids.push(c.id);
            cum.push(total);
        }
        LiveIndex { ids, cum }
    }
}

/// Translates each per-slot event list into contiguous segments:
/// `seg_0 = [0, e_0]`, `seg_j = [e_{j-1}+1, e_j]`, plus a dead tail
/// `[e_last+1, T-1]` when events stop before run end (an event-free slot
/// is one whole dead tail). Events at or past `T` terminate the final
/// in-range span with their kind and contribute no further segments.
fn compile_segments(events: &[SegmentEvent], total_cycles: u64) -> Vec<Segment> {
    let mut segs = Vec::with_capacity(events.len() + 1);
    let mut next_start = 0u64;
    for ev in events {
        let end = ev.cycle.min(total_cycles - 1);
        if ev.cycle >= total_cycles && next_start > end {
            break; // span already closed by an earlier event
        }
        let kind = match ev.kind {
            SegmentKind::Overwritten => ClassKind::DeadOverwritten,
            SegmentKind::Barrier => ClassKind::LiveBarrier,
            SegmentKind::Observed => ClassKind::LiveObserved,
        };
        segs.push(Segment {
            start: next_start,
            end,
            kind,
        });
        next_start = end + 1;
        if next_start >= total_cycles {
            break;
        }
    }
    if next_start < total_cycles {
        segs.push(Segment {
            start: next_start,
            end: total_cycles - 1,
            kind: ClassKind::DeadTail,
        });
    }
    segs
}

/// Prefix-sum index over a partition's live classes, for O(log n)
/// weight-proportional selection.
#[derive(Debug, Clone)]
pub struct LiveIndex {
    ids: Vec<u64>,
    /// `cum[i]` = summed weight of live classes `0..=i`.
    cum: Vec<u64>,
}

impl LiveIndex {
    /// Number of live classes.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether there are no live classes.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Summed weight of all live classes.
    pub fn total_weight(&self) -> u64 {
        *self.cum.last().unwrap_or(&0)
    }

    /// The live class id owning weight-ticket `ticket ∈
    /// [0, total_weight)`; classes win tickets proportionally to weight.
    pub fn pick(&self, ticket: u64) -> Option<u64> {
        if ticket >= self.total_weight() {
            return None;
        }
        let i = self.cum.partition_point(|&c| c <= ticket);
        Some(self.ids[i])
    }

    /// The live class ids in dense order.
    pub fn ids(&self) -> &[u64] {
        &self.ids
    }

    /// Summed weight of the dense live-index range `range` — O(1) from
    /// the cumulative prefix sums. This is the population mass one
    /// class-range work unit of a distributed exhaustive sweep covers,
    /// letting a planner budget units by weight without walking classes.
    ///
    /// # Panics
    ///
    /// Panics if `range.end > len()` (as slice indexing would).
    pub fn range_weight(&self, range: std::ops::Range<usize>) -> u64 {
        assert!(range.end <= self.ids.len(), "range beyond live index");
        if range.start >= range.end {
            return 0;
        }
        let below = if range.start == 0 {
            0
        } else {
            self.cum[range.start - 1]
        };
        self.cum[range.end - 1] - below
    }
}

/// Forward map from a partition's logical `(row, col)` to the physical
/// [`BitCoord`] the injector flips, under a column interleave factor `I`
/// (`LivenessOracle::interleave`): `phys.row = row / I`,
/// `phys.col = col·I + row mod I`. With `I == 1` (register file, TLBs)
/// the coordinates coincide.
pub fn physical_coord(row: usize, col: usize, interleave: usize) -> BitCoord {
    let i = interleave.max(1);
    BitCoord::new(row / i, col * i + row % i)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbu_ace::{FieldMap, ResidencyRecorder};
    use mbu_sram::LivenessProbe;

    /// 2 rows × one 8-bit field; row 0: overwrite@10, read@20, tail.
    fn small() -> Partition {
        let mut r = ResidencyRecorder::with_segments(2, FieldMap::Row { cols: 8 });
        r.on_write(10, 0, 0, 8);
        r.on_read(20, 0, 0, 8);
        Partition::from_residency(&r.finish(100)).unwrap()
    }

    #[test]
    fn segments_split_at_every_event_and_tail_is_dead() {
        let p = small();
        // Row 0: [0,10] DeadOverwritten, [11,20] LiveObserved, [21,99]
        // DeadTail — 3 segments × 8 bits; row 1: 1 dead tail × 8 bits.
        assert_eq!(p.class_count(), 3 * 8 + 8);
        let c = p.class_of(0, 3, 15).unwrap();
        assert_eq!((c.start, c.end), (11, 20));
        assert_eq!(c.kind, ClassKind::LiveObserved);
        assert_eq!(c.weight(), 10);
        let c = p.class_of(0, 3, 10).unwrap();
        assert_eq!(
            c.kind,
            ClassKind::DeadOverwritten,
            "flip at the overwrite cycle is erased by it"
        );
        assert_eq!((c.start, c.end), (0, 10));
        let c = p.class_of(0, 3, 21).unwrap();
        assert_eq!(c.kind, ClassKind::DeadTail);
        assert_eq!((c.start, c.end), (21, 99));
        let c = p.class_of(1, 0, 50).unwrap();
        assert_eq!((c.start, c.end, c.kind), (0, 99, ClassKind::DeadTail));
    }

    #[test]
    fn class_lookup_roundtrips_and_ids_are_dense() {
        let p = small();
        let mut seen = vec![false; p.class_count() as usize];
        for c in p.classes() {
            assert!(!seen[c.id as usize], "duplicate id {}", c.id);
            seen[c.id as usize] = true;
            assert_eq!(p.class(c.id), Some(c), "id lookup roundtrip");
            assert_eq!(
                p.class_of(c.row, c.col, c.start),
                Some(c),
                "start member maps back"
            );
            assert_eq!(
                p.class_of(c.row, c.col, c.end),
                Some(c),
                "end member maps back"
            );
        }
        assert!(seen.iter().all(|&s| s), "ids are dense 0..count");
        assert_eq!(p.class(p.class_count()), None);
        assert_eq!(p.class_of(0, 0, 100), None, "cycle past run end");
        assert_eq!(p.class_of(2, 0, 0), None, "row out of range");
        assert_eq!(p.class_of(0, 8, 0), None, "col out of range");
    }

    #[test]
    fn coverage_is_exact_and_partitions_the_population() {
        let p = small();
        let cov = p.coverage();
        assert!(cov.exact());
        assert_eq!(cov.holes, 0);
        assert_eq!(cov.overlaps, 0);
        assert_eq!(cov.population, 2 * 8 * 100);
        assert_eq!(cov.live_weight, 8 * 10, "row 0's [11,20] × 8 bits");
        assert_eq!(cov.dead_weight, cov.population - 80);
        assert_eq!(cov.classes, cov.live_classes + cov.dead_classes);
        assert_eq!(cov.live_classes, 8);
    }

    #[test]
    fn representative_is_a_member_and_seed_zero_is_midpoint() {
        let p = small();
        for c in p.classes() {
            let mid = c.representative(0);
            assert_eq!(mid, c.start + c.weight() / 2);
            for seed in [1u64, 2, 0xDEAD_BEEF, u64::MAX] {
                let rep = c.representative(seed);
                assert!(rep >= c.start && rep <= c.end, "member for any seed");
                assert_eq!(rep, c.representative(seed), "deterministic");
                assert_eq!(
                    p.class_of(c.row, c.col, rep).unwrap().id,
                    c.id,
                    "representative maps back to its class"
                );
            }
        }
    }

    #[test]
    fn barrier_segments_are_live() {
        let mut r = ResidencyRecorder::with_segments(1, FieldMap::Row { cols: 4 });
        r.on_write(10, 0, 0, 4);
        r.on_invalidate(30, 0, 0, 4);
        let p = Partition::from_residency(&r.finish(50)).unwrap();
        let c = p.class_of(0, 0, 20).unwrap();
        assert_eq!(c.kind, ClassKind::LiveBarrier);
        assert_eq!((c.start, c.end), (11, 30));
        assert!(!c.kind.is_dead());
    }

    #[test]
    fn live_index_picks_proportionally_to_weight() {
        let p = small();
        let idx = p.live_index();
        assert_eq!(idx.len(), 8, "one live class per bit of row 0's field");
        assert_eq!(idx.total_weight(), 80);
        // Tickets 0..9 land in the first live class, 10..19 the second, ...
        let first = idx.pick(0).unwrap();
        assert_eq!(idx.pick(9).unwrap(), first);
        assert_ne!(idx.pick(10).unwrap(), first);
        assert_eq!(idx.pick(80), None, "ticket past total weight");
        for t in [0u64, 13, 79] {
            let id = idx.pick(t).unwrap();
            let c = p.class(id).unwrap();
            assert!(!c.kind.is_dead());
        }
    }

    #[test]
    fn range_weight_matches_prefix_sums_over_every_subrange() {
        let p = small();
        let idx = p.live_index();
        // 8 live classes, 10 cycles each.
        assert_eq!(idx.range_weight(0..idx.len()), idx.total_weight());
        assert_eq!(idx.range_weight(0..0), 0);
        assert_eq!(idx.range_weight(3..3), 0);
        for start in 0..=idx.len() {
            for end in start..=idx.len() {
                assert_eq!(
                    idx.range_weight(start..end),
                    (end - start) as u64 * 10,
                    "uniform-weight range [{start}, {end})"
                );
            }
        }
        // Disjoint splits always sum to the whole.
        for mid in 0..=idx.len() {
            assert_eq!(
                idx.range_weight(0..mid) + idx.range_weight(mid..idx.len()),
                idx.total_weight()
            );
        }
    }

    #[test]
    fn event_free_partition_is_one_dead_tail_per_slot() {
        let r = ResidencyRecorder::with_segments(3, FieldMap::Chunks { chunk: 4, cols: 8 });
        let p = Partition::from_residency(&r.finish(40)).unwrap();
        assert_eq!(p.class_count(), 3 * 2 * 4, "slots × field bits");
        let cov = p.coverage();
        assert!(cov.exact());
        assert_eq!(cov.live_classes, 0);
        assert_eq!(cov.dead_weight, cov.population);
        assert!(p.live_index().is_empty());
    }

    #[test]
    fn event_at_cycle_zero_and_run_end_edge_cases() {
        let mut r = ResidencyRecorder::with_segments(1, FieldMap::Row { cols: 2 });
        r.on_write(0, 0, 0, 2); // event at cycle 0: seg [0,0]
        r.on_read(9, 0, 0, 2); // event at last cycle: no tail
        let p = Partition::from_residency(&r.finish(10)).unwrap();
        let cov = p.coverage();
        assert!(cov.exact());
        let c = p.class_of(0, 0, 0).unwrap();
        assert_eq!((c.start, c.end, c.weight()), (0, 0, 1));
        assert_eq!(c.kind, ClassKind::DeadOverwritten);
        let c = p.class_of(0, 0, 9).unwrap();
        assert_eq!((c.start, c.end), (1, 9));
        assert_eq!(c.kind, ClassKind::LiveObserved);
        assert_eq!(p.class_count(), 2 * 2);
    }

    #[test]
    fn events_past_run_end_are_clamped() {
        let mut r = ResidencyRecorder::with_segments(1, FieldMap::Row { cols: 1 });
        r.on_write(5, 0, 0, 1);
        r.on_read(99, 0, 0, 1); // past finish(20): clamps to [6,19]
        let p = Partition::from_residency(&r.finish(20)).unwrap();
        let cov = p.coverage();
        assert!(cov.exact());
        let c = p.class_of(0, 0, 15).unwrap();
        assert_eq!((c.start, c.end), (6, 19));
        assert_eq!(c.kind, ClassKind::LiveObserved, "clamped event keeps kind");
    }

    #[test]
    fn errors_for_segmentless_or_empty_runs() {
        let r = ResidencyRecorder::new(1, FieldMap::Row { cols: 4 });
        assert_eq!(
            Partition::from_residency(&r.finish(10)).err(),
            Some(PartitionError::NoSegments)
        );
        let r = ResidencyRecorder::with_segments(1, FieldMap::Row { cols: 4 });
        assert_eq!(
            Partition::from_residency(&r.finish(0)).err(),
            Some(PartitionError::ZeroCycles)
        );
    }

    #[test]
    fn physical_coord_matches_oracle_inverse() {
        // I = 2: logical (row 3, bit 1) → phys row 1, col 1·2 + 3%2 = 3.
        let c = physical_coord(3, 1, 2);
        assert_eq!((c.row, c.col), (1, 3));
        // Inverse (oracle::logical): row = 1·2 + 3%2 = 3, bit = 3/2 = 1. ✓
        let c = physical_coord(5, 7, 1);
        assert_eq!((c.row, c.col), (5, 7), "identity at I = 1");
        let c = physical_coord(5, 7, 0);
        assert_eq!((c.row, c.col), (5, 7), "I = 0 treated as 1");
    }
}
