//! Prints the fault-equivalence class census for the small structures —
//! the tractability data behind the exhaustive campaign mode's defaults.
//!
//! ```text
//! cargo run --release -p mbu-equiv --example classes
//! ```

use mbu_ace::LivenessOracle;
use mbu_cpu::{CoreConfig, HwComponent};
use mbu_equiv::Partition;
use mbu_workloads::Workload;

fn main() {
    let components = [HwComponent::ITlb, HwComponent::DTlb, HwComponent::RegFile];
    let workloads = [
        Workload::Crc32,
        Workload::Qsort,
        Workload::Sha,
        Workload::Stringsearch,
    ];
    println!(
        "{:<14} {:<9} {:>9} {:>9} {:>8} {:>8} {:>11} {:>7}",
        "workload", "component", "pop", "classes", "live", "dead", "live_mass", "live%"
    );
    for wl in workloads {
        for comp in components {
            let oracle =
                LivenessOracle::build_with_segments(CoreConfig::default(), &wl.program(), comp)
                    .expect("golden capture");
            let p = Partition::from_residency(oracle.residency()).expect("segments");
            let cov = p.coverage();
            assert!(cov.exact(), "partition must be exact");
            println!(
                "{:<14} {:<9} {:>9} {:>9} {:>8} {:>8} {:>11} {:>6.2}%",
                wl.name(),
                format!("{comp:?}"),
                cov.population,
                cov.classes,
                cov.live_classes,
                cov.dead_classes,
                cov.live_weight,
                100.0 * cov.live_fraction(),
            );
        }
    }
}
