//! End-to-end pipeline tests: campaigns → weighted AVF (Eq. 2) →
//! technology aggregation (Eq. 3) → FIT (Eq. 4), plus validation of the
//! analysis stage against the paper's own published numbers.

use mbu_cpu::HwComponent;
use mbu_gefin::avf::{weighted_avf, ComponentAvf};
use mbu_gefin::campaign::{Campaign, CampaignConfig};
use mbu_gefin::fit::{component_fit, cpu_fit};
use mbu_gefin::paper;
use mbu_gefin::tech::{assessment_gap, node_avf, TechNode};
use mbu_workloads::Workload;
use std::collections::BTreeMap;

/// A miniature end-to-end run of the entire paper pipeline on one
/// component and two workloads, with small campaigns.
#[test]
fn mini_pipeline_produces_consistent_artifacts() {
    let workloads = [Workload::Stringsearch, Workload::SusanC];
    let component = HwComponent::RegFile;
    let mut per_card = Vec::new();
    for faults in 1..=3 {
        let samples: Vec<(f64, u64)> = workloads
            .iter()
            .map(|&w| {
                let r = Campaign::new(CampaignConfig::new(w, component, faults).runs(40).seed(13))
                    .run();
                (r.avf(), r.fault_free_cycles)
            })
            .collect();
        per_card.push(weighted_avf(&samples));
    }
    let avf = ComponentAvf::new(per_card[0], per_card[1], per_card[2]);

    // Eq. 3 aggregation stays within the per-cardinality bounds.
    for node in TechNode::ALL {
        let v = node_avf(&avf, node);
        let lo = per_card.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = per_card.iter().cloned().fold(0.0f64, f64::max);
        assert!(
            v >= lo - 1e-12 && v <= hi + 1e-12,
            "{node}: {v} outside [{lo}, {hi}]"
        );
    }

    // Eq. 4: FIT scales linearly with raw FIT per bit across nodes.
    let f130 = component_fit(node_avf(&avf, TechNode::N130), TechNode::N130, component);
    let f22 = component_fit(node_avf(&avf, TechNode::N22), TechNode::N22, component);
    if avf.single > 0.0 {
        assert!(f130 > f22, "130 nm has ~4.6x the raw FIT of 22 nm");
    }
}

/// Multi-bit AVFs dominate single-bit AVFs for a vulnerable component —
/// the paper's central observation, measured end to end.
#[test]
fn multi_bit_avf_exceeds_single_bit() {
    let mut avfs = Vec::new();
    for faults in [1, 3] {
        let r = Campaign::new(
            CampaignConfig::new(Workload::Sha, HwComponent::RegFile, faults)
                .runs(150)
                .seed(21),
        )
        .run();
        avfs.push(r.avf());
    }
    assert!(
        avfs[1] > avfs[0],
        "3-bit AVF ({:.3}) must exceed 1-bit AVF ({:.3})",
        avfs[1],
        avfs[0]
    );
}

/// The analysis stage reproduces the paper's derived headline numbers
/// exactly from the paper's published Table V inputs:
/// Fig. 7's 35 % register-file gap and Fig. 8's 21 % MBU FIT share at 22 nm.
#[test]
fn analysis_reproduces_paper_headlines_from_table5() {
    let avfs = paper::table5_avfs();
    // Fig. 7 headline: gaps at 22 nm range from ~11 % (DTLB) to ~35 % (RF).
    let rf_gap = assessment_gap(&avfs[&HwComponent::RegFile], TechNode::N22);
    assert!((rf_gap - 0.355).abs() < 0.015, "rf gap {rf_gap}");
    let dtlb_gap = assessment_gap(&avfs[&HwComponent::DTlb], TechNode::N22);
    assert!((dtlb_gap - 0.11).abs() < 0.02, "dtlb gap {dtlb_gap}");
    // Fig. 8 headline: MBU share of CPU FIT reaches ~21 % at 22 nm.
    let share = cpu_fit(&avfs, TechNode::N22).mbu_contribution_pct();
    assert!((15.0..23.0).contains(&share), "MBU share {share}%");
    // And it is identically zero at 250 nm.
    assert_eq!(cpu_fit(&avfs, TechNode::N250).mbu_contribution_pct(), 0.0);
}

/// The FIT trend across nodes follows Table VII's rise-then-fall shape for
/// any AVF profile (AVF is node-independent in the model).
#[test]
fn fit_trend_is_rise_then_fall_for_any_profile() {
    for (s, d, t) in [(0.05, 0.1, 0.2), (0.5, 0.6, 0.7), (0.2, 0.2, 0.2)] {
        let mut avfs = BTreeMap::new();
        for c in HwComponent::ALL {
            avfs.insert(c, ComponentAvf::new(s, d, t));
        }
        let series: Vec<f64> = TechNode::ALL
            .iter()
            .map(|&n| cpu_fit(&avfs, n).total)
            .collect();
        let peak = series.iter().cloned().fold(0.0f64, f64::max);
        assert_eq!(series[2], peak, "peak at 130 nm");
        assert!(series[7] < series[0], "22 nm below 250 nm");
    }
}

/// Campaign determinism end to end: identical configurations give
/// identical AVFs and class counts.
#[test]
fn full_campaign_determinism() {
    let mk = || {
        Campaign::new(
            CampaignConfig::new(Workload::Stringsearch, HwComponent::DTlb, 2)
                .runs(25)
                .seed(4242),
        )
        .run()
    };
    let a = mk();
    let b = mk();
    assert_eq!(a, b);
}
