//! Cross-crate integration tests: ISA → memory hierarchy → OoO core →
//! fault injector, exercised together.

use mbu_cpu::{CoreConfig, HwComponent, RunEnd, Simulator};
use mbu_gefin::campaign::{Campaign, CampaignConfig};
use mbu_gefin::classify::FaultEffect;
use mbu_gefin::mask::{ClusterSpec, MaskGenerator};
use mbu_isa::asm::assemble;
use mbu_workloads::Workload;

/// Every component accepts masks anywhere in its advertised geometry.
#[test]
fn masks_are_always_in_bounds_for_every_component() {
    let p = Workload::Stringsearch.program();
    let sim = Simulator::new(CoreConfig::cortex_a9_like(), &p);
    for c in HwComponent::ALL {
        let g = sim.component_geometry(c);
        let mut gen = MaskGenerator::seeded(11, ClusterSpec::DEFAULT);
        for faults in 1..=3 {
            for _ in 0..200 {
                let m = gen.generate(g, faults);
                for coord in &m.coords {
                    assert!(g.contains(coord.row, coord.col), "{c}: {coord} outside {g}");
                }
            }
        }
    }
}

/// Injection into every component completes without panicking and
/// classifies into the five paper classes.
#[test]
fn every_component_campaign_classifies_cleanly() {
    for c in HwComponent::ALL {
        let r = Campaign::new(
            CampaignConfig::new(Workload::Stringsearch, c, 3)
                .runs(12)
                .seed(5),
        )
        .run();
        assert_eq!(r.counts.total(), 12, "{c}");
    }
}

/// An injected fault can never change the golden (pre-injection) prefix of
/// the output: the run either matches the golden output entirely (masked)
/// or is classified as a failure.
#[test]
fn masked_runs_have_bit_identical_output() {
    let workload = Workload::SusanC;
    let p = workload.program();
    let core = CoreConfig::cortex_a9_like();
    let golden = Simulator::new(core, &p).run(u64::MAX / 8);
    let mut masked_seen = 0;
    for i in 0..40 {
        let mut gen = MaskGenerator::seeded(i, ClusterSpec::DEFAULT);
        let mut sim = Simulator::new(core, &p);
        let at = gen.injection_cycle(golden.cycles);
        let mask = gen.generate(sim.component_geometry(HwComponent::L2), 1);
        sim.run_until_cycle(at);
        sim.inject_flips(HwComponent::L2, &mask.coords);
        if let Some(RunEnd::Exited { code: 0 }) = sim.run_until_cycle(golden.cycles * 4) {
            if sim.output() == golden.output.as_slice() {
                masked_seen += 1;
                // Masked runs of a deterministic machine may still have a
                // different cycle count only if the flip perturbed timing
                // (e.g. a corrupted-but-refetched line); the architectural
                // output must be identical.
                assert_eq!(sim.output(), golden.output.as_slice());
            }
        }
    }
    assert!(
        masked_seen > 0,
        "L2 single-bit faults should frequently mask"
    );
}

/// A flip injected after the program's last use of the data is masked:
/// inject into the L1D at the very end of execution.
#[test]
fn late_injection_is_masked() {
    let p = Workload::Crc32.program();
    let core = CoreConfig::cortex_a9_like();
    let golden = Simulator::new(core, &p).run(u64::MAX / 8);
    let mut sim = Simulator::new(core, &p);
    sim.run_until_cycle(golden.cycles - 2);
    // Flip a whole cluster of data-array bits; nothing will read them.
    let mut gen = MaskGenerator::seeded(3, ClusterSpec::DEFAULT);
    let mask = gen.generate(sim.component_geometry(HwComponent::L1D), 3);
    sim.inject_flips(HwComponent::L1D, &mask.coords);
    let end = sim.run_until_cycle(golden.cycles * 4);
    assert_eq!(end, Some(RunEnd::Exited { code: 0 }));
    assert_eq!(sim.output(), golden.output.as_slice());
}

/// Flipping a bit and flipping it back before it is consumed is fully
/// transparent (flip is an involution end to end).
#[test]
fn double_flip_is_transparent() {
    let p = Workload::Stringsearch.program();
    let core = CoreConfig::cortex_a9_like();
    let golden = Simulator::new(core, &p).run(u64::MAX / 8);
    let mut sim = Simulator::new(core, &p);
    sim.run_until_cycle(100);
    let coords = [mbu_sram::BitCoord::new(0, 0), mbu_sram::BitCoord::new(1, 5)];
    sim.inject_flips(HwComponent::RegFile, &coords);
    sim.inject_flips(HwComponent::RegFile, &coords);
    let end = sim.run_until_cycle(golden.cycles * 4);
    assert_eq!(end, Some(RunEnd::Exited { code: 0 }));
    assert_eq!(sim.output(), golden.output.as_slice());
}

/// The ITLB path produces crashes/timeouts but essentially never SDC
/// (paper §IV.F: "faults in ITLBs cannot really result in SDCs").
#[test]
fn itlb_faults_do_not_silently_corrupt_output() {
    let mut sdc = 0;
    let mut vulnerable = 0;
    for (i, w) in [Workload::Dijkstra, Workload::Qsort, Workload::SusanE]
        .iter()
        .enumerate()
    {
        let r = Campaign::new(
            CampaignConfig::new(*w, HwComponent::ITlb, 3)
                .runs(60)
                .seed(i as u64),
        )
        .run();
        sdc += r.counts.sdc;
        vulnerable += r.counts.total() - r.counts.masked;
    }
    assert!(
        sdc * 5 <= vulnerable.max(1),
        "ITLB failures should be crash/timeout-dominated (sdc {sdc} of {vulnerable})"
    );
}

/// A deliberately corrupted instruction encoding in memory crashes with an
/// undefined-instruction trap when reached through the full hierarchy.
#[test]
fn undefined_encoding_through_hierarchy_crashes() {
    // 0x7A is an unassigned opcode.
    let p = assemble(".text\nmain:\nnop\nnop\n.data\nx: .word 1\n").unwrap();
    let mut text = p.text.clone();
    text[1] = 0x7A00_0000;
    let p2 = mbu_isa::Program { text, ..p };
    let r = Simulator::new(CoreConfig::cortex_a9_like(), &p2).run(100_000);
    match r.end {
        RunEnd::Crashed(mbu_isa::interp::Trap::UndefinedInstruction { word, .. }) => {
            assert_eq!(word, 0x7A00_0000);
        }
        other => panic!("expected undefined-instruction crash, got {other:?}"),
    }
}

/// Class fractions always form a probability distribution.
#[test]
fn class_fractions_sum_to_one_for_real_campaigns() {
    let r = Campaign::new(
        CampaignConfig::new(Workload::SusanS, HwComponent::RegFile, 2)
            .runs(30)
            .seed(77),
    )
    .run();
    let total: f64 = FaultEffect::ALL.iter().map(|&e| r.counts.fraction(e)).sum();
    assert!((total - 1.0).abs() < 1e-12);
    assert!(r.avf() >= 0.0 && r.avf() <= 1.0);
}
