//! Differential validation of the liveness-oracle fast path: campaigns with
//! the oracle enabled must produce *bit-identical* classifications to full
//! simulation — the oracle may only change wall-clock, never results — and
//! a provably-dead flipped bit must never change program output.

use mbu_ace::LivenessOracle;
use mbu_cpu::{CoreConfig, HwComponent, RunEnd, Simulator};
use mbu_gefin::campaign::{Campaign, CampaignConfig};
use mbu_sram::BitCoord;
use mbu_workloads::Workload;
use proptest::prelude::*;
use std::sync::OnceLock;

/// Seeded sweep over (component × workload × cardinality): with and without
/// the oracle the counts, per-run details, and anomaly logs are identical,
/// and across the sweep the oracle skips a nonzero number of runs.
#[test]
fn oracle_prefilter_is_bit_identical_across_components_and_workloads() {
    let workloads = [Workload::Stringsearch, Workload::Sha, Workload::Qsort];
    let mut total_skips = 0u64;
    let mut total_runs = 0u64;
    for component in HwComponent::ALL {
        for (w, &workload) in workloads.iter().enumerate() {
            for faults in [1usize, 2] {
                let base = CampaignConfig::new(workload, component, faults)
                    .runs(6)
                    .seed(0xACE0 + w as u64)
                    .collect_details(true);
                let plain = Campaign::new(base.clone()).run();
                let fast = Campaign::new(base.use_liveness_oracle(true)).run();
                assert_eq!(
                    plain.counts, fast.counts,
                    "{component}/{workload}/{faults}-bit: counts diverged"
                );
                assert_eq!(
                    plain.details, fast.details,
                    "{component}/{workload}/{faults}-bit: per-run details diverged"
                );
                assert_eq!(plain.anomalies, fast.anomalies);
                assert_eq!(plain.oracle_skips, 0, "oracle off must never skip");
                total_skips += fast.oracle_skips;
                total_runs += fast.counts.total();
            }
        }
    }
    assert!(
        total_skips > 0,
        "oracle never skipped any of {total_runs} runs across the sweep"
    );
    assert!(total_skips < total_runs, "oracle cannot skip everything");
}

struct DeadBitFixture {
    core: CoreConfig,
    oracle: LivenessOracle,
    golden_output: Vec<u8>,
    golden_cycles: u64,
}

fn fixture() -> &'static DeadBitFixture {
    static FIX: OnceLock<DeadBitFixture> = OnceLock::new();
    FIX.get_or_init(|| {
        let core = CoreConfig::cortex_a9_like();
        let program = Workload::Stringsearch.program();
        let oracle = LivenessOracle::build(core, &program, HwComponent::L2).expect("oracle");
        let golden = Simulator::new(core, &program).run(u64::MAX / 8);
        assert!(matches!(golden.end, RunEnd::Exited { code: 0 }));
        DeadBitFixture {
            core,
            oracle,
            golden_output: golden.output,
            golden_cycles: golden.cycles,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any bit the oracle calls dead at a random injection cycle really is
    /// masked: flipping it leaves output, exit code, and cycle count of the
    /// simulated run bit-identical to the golden run.
    #[test]
    fn provably_dead_flips_never_change_output(
        row_sel in any::<prop::sample::Index>(),
        col_sel in any::<prop::sample::Index>(),
        cycle_sel in any::<prop::sample::Index>()
    ) {
        let fix = fixture();
        let program = Workload::Stringsearch.program();
        let g = Simulator::new(fix.core, &program).component_geometry(HwComponent::L2);
        let coord = BitCoord::new(row_sel.index(g.rows()), col_sel.index(g.cols()));
        let at = cycle_sel.index(fix.golden_cycles as usize) as u64;
        prop_assume!(fix.oracle.provably_masked(&[coord], at));
        let mut sim = Simulator::new(fix.core, &program);
        prop_assert!(sim.run_until_cycle(at).is_none());
        sim.inject_flips(HwComponent::L2, &[coord]);
        let end = sim.run_until_cycle(fix.golden_cycles * 4);
        prop_assert_eq!(end, Some(RunEnd::Exited { code: 0 }));
        prop_assert_eq!(sim.output(), &fix.golden_output[..]);
        prop_assert_eq!(sim.cycle(), fix.golden_cycles, "dead flip must not perturb timing");
    }
}
